//! Loop folding (paper §5.2).

use std::collections::BTreeSet;

use crate::node::{LoopId, NodeKind};
use crate::transform::Rebuilder;
use crate::{Dfg, DfgError};

/// What [`fold_loop`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopFoldReport {
    /// The folded loop.
    pub loop_id: LoopId,
    /// Name of the super-node representing the folded loop.
    pub super_node: String,
    /// Names of the absorbed operations.
    pub absorbed: Vec<String>,
}

/// Folds the loop region `id` into a single multi-cycle super-node.
///
/// The paper: "the operations of the inner most loop are scheduled and
/// allocated first, relative to the local time constraint. When this is
/// done, the entire loop is treated as a single operation with an
/// execution time that is equal to the loop's local time constraint."
///
/// The super-node
///
/// * occupies [`crate::LoopRegion::time_constraint`] consecutive
///   control steps,
/// * depends on every out-of-loop signal the body consumed, and
/// * produces one output signal; consumers of any body-produced signal
///   are rewired to it. (Merging the loop's outputs is a deliberate
///   simplification — the folded node models *timing and ordering* for
///   the outer schedule; the inner data path was already synthesised by
///   the recursive inner run.)
///
/// The loop must be *innermost-resolved*: any nested loop inside it must
/// have been folded first (its super-node then belongs to `id` and is
/// absorbed like an ordinary member). [`fold_all_loops`] drives this
/// bottom-up order automatically.
///
/// # Errors
///
/// [`DfgError::EmptyLoop`] if the region has no member nodes.
pub fn fold_loop(dfg: &Dfg, id: LoopId) -> Result<(Dfg, LoopFoldReport), DfgError> {
    let region = dfg.loop_region(id).ok_or(DfgError::EmptyLoop(id))?.clone();
    let members: BTreeSet<_> = dfg.loop_members(id).into_iter().collect();
    if members.is_empty() {
        return Err(DfgError::EmptyLoop(id));
    }
    // Check the loop is innermost-resolved: no other region claims it as
    // parent while still having members.
    for other in dfg.loop_regions() {
        if other.parent() == Some(id) && !dfg.loop_members(other.id()).is_empty() {
            return Err(DfgError::EmptyLoop(other.id()));
        }
    }

    // External inputs consumed by the body.
    let mut external_inputs = Vec::new();
    let mut seen = BTreeSet::new();
    for &m in &members {
        for &s in dfg.node(m).inputs() {
            let produced_inside = dfg
                .signal(s)
                .source()
                .node()
                .is_some_and(|p| members.contains(&p));
            if !produced_inside && seen.insert(s) {
                external_inputs.push(s);
            }
        }
    }

    let mut report = LoopFoldReport {
        loop_id: id,
        super_node: region.name().to_string(),
        absorbed: members
            .iter()
            .map(|&m| dfg.node(m).name().to_string())
            .collect(),
    };
    report.absorbed.sort();

    let mut rb = Rebuilder::new(dfg);
    let mut super_out = None;
    let mut emitted = false;
    for &nid in dfg.topo_order() {
        if members.contains(&nid) {
            if !emitted {
                emitted = true;
                let inputs: Vec<_> = external_inputs.iter().map(|&s| rb.map(s)).collect();
                let (_, out) = rb.add_node(
                    region.name().to_string(),
                    NodeKind::LoopBody {
                        loop_id: id,
                        cycles: region.time_constraint(),
                    },
                    inputs,
                    dfg.node(nid).branch().clone(),
                    region.parent(),
                );
                super_out = Some(out);
            }
            // All body outputs read the super-node's output.
            rb.redirect(dfg.node(nid).output(), super_out.expect("emitted"));
        } else {
            rb.copy_node(dfg, nid);
        }
    }
    // Wait: nodes *after* the first member in topo order but *before*
    // later members may consume later members' outputs — impossible, as
    // that would violate topological order. Consumers of any member
    // output appear after that member, and our single super-node is
    // emitted at the first member, so every member output is redirected
    // before any outside consumer is copied... except consumers between
    // two members that read the *first* member. Those are fine: the
    // redirect is already in place. Consumers of a *later* member that
    // appear after it are fine too. The only hazard would be an outside
    // consumer of a later member appearing before that member in topo
    // order, which topological order forbids.
    let loops = dfg.loops.iter().filter(|l| l.id() != id).cloned().collect();
    let out = rb.finish(dfg.name().to_string(), loops)?;
    Ok((out, report))
}

/// Folds every loop region, innermost first, until the graph is
/// loop-free. Returns the folded graph and one report per folded loop in
/// fold order.
///
/// ```
/// use hls_celllib::OpKind;
/// use hls_dfg::{transform::fold_all_loops, DfgBuilder, NodeKind};
///
/// # fn main() -> Result<(), hls_dfg::DfgError> {
/// let mut b = DfgBuilder::new("g");
/// let x = b.input("x");
/// b.begin_loop("body", 3);
/// let t = b.op("t", OpKind::Mul, &[x, x])?;
/// let _u = b.op("u", OpKind::Add, &[t, x])?;
/// b.end_loop();
/// let _done = b.op("done", OpKind::Inc, &[_u])?;
/// let (folded, reports) = fold_all_loops(&b.finish()?)?;
/// assert_eq!(reports.len(), 1);
/// assert_eq!(folded.node_count(), 2); // super-node + done
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates [`fold_loop`] errors (e.g. an empty region).
pub fn fold_all_loops(dfg: &Dfg) -> Result<(Dfg, Vec<LoopFoldReport>), DfgError> {
    let mut current = dfg.clone();
    let mut reports = Vec::new();
    loop {
        // Depth of each region.
        let deepest = current
            .loop_regions()
            .iter()
            .filter(|r| !current.loop_members(r.id()).is_empty())
            .max_by_key(|r| {
                let mut depth = 0;
                let mut cur = r.parent();
                while let Some(p) = cur {
                    depth += 1;
                    cur = current.loop_region(p).and_then(|r| r.parent());
                }
                depth
            })
            .map(|r| r.id());
        match deepest {
            None => return Ok((current, reports)),
            Some(id) => {
                let (next, report) = fold_loop(&current, id)?;
                current = next;
                reports.push(report);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, FuClass};
    use hls_celllib::{OpKind, TimingSpec};

    #[test]
    fn folded_loop_becomes_multicycle_node() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let lp = b.begin_loop("body", 4);
        let t = b.op("t", OpKind::Mul, &[x, x]).unwrap();
        let u = b.op("u", OpKind::Add, &[t, x]).unwrap();
        b.end_loop();
        b.op("after", OpKind::Inc, &[u]).unwrap();
        let g = b.finish().unwrap();
        let (folded, report) = fold_loop(&g, lp).unwrap();
        assert_eq!(report.absorbed, vec!["t".to_string(), "u".to_string()]);
        assert_eq!(folded.node_count(), 2);
        let sup = folded.node_by_name("body").unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        assert_eq!(folded.node(sup).kind().cycles(&spec), 4);
        assert_eq!(folded.node(sup).kind().fu_class(), FuClass::Loop(lp));
        // `after` depends on the super-node.
        let after = folded.node_by_name("after").unwrap();
        assert_eq!(folded.preds(after), &[sup]);
    }

    #[test]
    fn nested_loops_fold_innermost_first() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let _outer = b.begin_loop("outer", 9);
        let t = b.op("t", OpKind::Add, &[x, x]).unwrap();
        let _inner = b.begin_loop("inner", 3);
        let v = b.op("v", OpKind::Mul, &[t, t]).unwrap();
        b.end_loop();
        b.op("w", OpKind::Sub, &[v, t]).unwrap();
        b.end_loop();
        let g = b.finish().unwrap();
        let (folded, reports) = fold_all_loops(&g).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].super_node, "inner");
        assert_eq!(reports[1].super_node, "outer");
        // Inner's super-node was absorbed by outer's fold.
        assert!(reports[1].absorbed.contains(&"inner".to_string()));
        assert_eq!(folded.node_count(), 1);
        assert_eq!(folded.loop_regions().len(), 0);
        // The remaining node is the outer super-node with 9 cycles.
        let spec = TimingSpec::uniform_single_cycle();
        let (_, only) = folded.nodes().next().unwrap();
        assert_eq!(only.kind().cycles(&spec), 9);
        assert_eq!(only.name(), "outer");
    }

    #[test]
    fn folding_outer_before_inner_is_rejected() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let outer = b.begin_loop("outer", 9);
        let t = b.op("t", OpKind::Add, &[x, x]).unwrap();
        b.begin_loop("inner", 3);
        b.op("v", OpKind::Mul, &[t, t]).unwrap();
        b.end_loop();
        b.end_loop();
        let g = b.finish().unwrap();
        assert!(matches!(fold_loop(&g, outer), Err(DfgError::EmptyLoop(_))));
    }

    #[test]
    fn graph_without_loops_is_unchanged() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("t", OpKind::Inc, &[x]).unwrap();
        let g = b.finish().unwrap();
        let (folded, reports) = fold_all_loops(&g).unwrap();
        assert!(reports.is_empty());
        assert_eq!(folded.node_count(), 1);
    }

    #[test]
    fn unknown_loop_is_an_error() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("t", OpKind::Inc, &[x]).unwrap();
        let g = b.finish().unwrap();
        assert!(fold_loop(&g, LoopId::new(7)).is_err());
    }
}
