//! Instance duplication for functional pipelining (paper §5.5.2, step 1).

use std::collections::BTreeMap;

use crate::signal::SignalSource;
use crate::transform::Rebuilder;
use crate::{Dfg, DfgError, NodeId};

/// The node names of one duplicated instance, paired with the new graph's
/// node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceCopy {
    /// 1-based instance number (1 = the original).
    pub instance: u32,
    /// New-graph node ids belonging to this instance, in topological
    /// order of the original graph.
    pub nodes: Vec<NodeId>,
}

/// Builds `DFG_double` (or triple, …): `copies` independent instances of
/// the behaviour, each with its own primary inputs, sharing constants.
///
/// This is step 1 of the paper's functional-pipelining procedure:
/// "consider a new DFG consisting of two instances with delay of `L`
/// cycles in between". The *delay* is a scheduling-time constraint (the
/// second instance's frame is offset by the latency `L`); the graph
/// itself just contains the two disjoint instance subgraphs, which this
/// function produces together with the instance↔node mapping the
/// scheduler needs.
///
/// Instance `i ≥ 2` gets nodes and inputs renamed with an `@i` suffix.
///
/// ```
/// use hls_celllib::OpKind;
/// use hls_dfg::{transform::duplicate_instances, DfgBuilder};
///
/// # fn main() -> Result<(), hls_dfg::DfgError> {
/// let mut b = DfgBuilder::new("body");
/// let x = b.input("x");
/// let t = b.op("t", OpKind::Mul, &[x, x])?;
/// let _u = b.op("u", OpKind::Add, &[t, x])?;
/// let (doubled, instances) = duplicate_instances(&b.finish()?, 2)?;
/// assert_eq!(doubled.node_count(), 4);
/// assert_eq!(instances.len(), 2);
/// assert!(doubled.node_by_name("t@2").is_some());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates graph-reconstruction errors; none are expected for valid
/// inputs.
///
/// # Panics
///
/// Panics if `copies` is zero.
pub fn duplicate_instances(dfg: &Dfg, copies: u32) -> Result<(Dfg, Vec<InstanceCopy>), DfgError> {
    assert!(copies >= 1, "at least one instance is required");
    let mut rb = Rebuilder::new(dfg);
    let mut instances = Vec::with_capacity(copies as usize);

    // Instance 1: verbatim copy.
    let mut first = InstanceCopy {
        instance: 1,
        nodes: Vec::new(),
    };
    for &id in dfg.topo_order() {
        let (new_id, _) = rb.copy_node(dfg, id);
        first.nodes.push(new_id);
    }
    instances.push(first);

    for inst in 2..=copies {
        // Fresh primary inputs for this initiation; constants shared.
        let mut local: BTreeMap<crate::SignalId, crate::SignalId> = BTreeMap::new();
        for (sid, sig) in dfg.signals() {
            match sig.source() {
                SignalSource::PrimaryInput => {
                    let new = rb
                        .add_external(format!("{}@{inst}", sig.name()), SignalSource::PrimaryInput);
                    local.insert(sid, new);
                }
                SignalSource::Constant(_) => {
                    local.insert(sid, rb.map(sid));
                }
                SignalSource::Node(_) => {}
            }
        }
        let mut copy = InstanceCopy {
            instance: inst,
            nodes: Vec::new(),
        };
        for &id in dfg.topo_order() {
            let node = dfg.node(id);
            let inputs: Vec<_> = node
                .inputs()
                .iter()
                .map(|s| {
                    *local
                        .get(s)
                        .expect("topological order maps producers first")
                })
                .collect();
            let (new_id, out) = rb.add_node(
                format!("{}@{inst}", node.name()),
                node.kind(),
                inputs,
                node.branch().clone(),
                node.loop_id(),
            );
            local.insert(node.output(), out);
            copy.nodes.push(new_id);
        }
        instances.push(copy);
    }

    let name = format!("{}x{copies}", dfg.name());
    let out = rb.finish(name, dfg.loops.clone())?;
    Ok((out, instances))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;
    use hls_celllib::OpKind;

    fn body() -> Dfg {
        let mut b = DfgBuilder::new("body");
        let x = b.input("x");
        let k = b.constant("k", 5);
        let t = b.op("t", OpKind::Mul, &[x, k]).unwrap();
        b.op("u", OpKind::Add, &[t, x]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn instances_are_disjoint_subgraphs() {
        let (g, instances) = duplicate_instances(&body(), 2).unwrap();
        assert_eq!(g.node_count(), 4);
        let (a, b) = (&instances[0].nodes, &instances[1].nodes);
        // No dependency edges between instances.
        for &n in a {
            for &p in g.preds(n) {
                assert!(a.contains(&p));
            }
        }
        for &n in b {
            for &p in g.preds(n) {
                assert!(b.contains(&p));
            }
        }
    }

    #[test]
    fn constants_are_shared_inputs_are_not() {
        let (g, _) = duplicate_instances(&body(), 2).unwrap();
        assert!(g.signal_by_name("x@2").is_some());
        assert!(g.signal_by_name("k@2").is_none());
        // Both multiplies consume the same constant signal.
        let k = g.signal_by_name("k").unwrap();
        assert_eq!(g.consumers(k).len(), 2);
    }

    #[test]
    fn single_copy_is_identity_sized() {
        let orig = body();
        let (g, instances) = duplicate_instances(&orig, 1).unwrap();
        assert_eq!(g.node_count(), orig.node_count());
        assert_eq!(instances.len(), 1);
    }

    #[test]
    fn triple_copy() {
        let (g, instances) = duplicate_instances(&body(), 3).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(instances[2].instance, 3);
        assert!(g.node_by_name("u@3").is_some());
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_copies_panics() {
        let _ = duplicate_instances(&body(), 0);
    }
}
