//! The paper's §5 preprocessing transformations.
//!
//! All transformations are pure: they consume a [`crate::Dfg`] by
//! reference and return a fresh, re-validated graph plus a report of what
//! changed. Node and signal ids are *not* stable across a transformation;
//! use names to correlate.

mod branches;
mod instances;
mod loops;
mod stages;

pub use branches::{prune_shared_branch_ops, BranchPruneReport};
pub use instances::{duplicate_instances, InstanceCopy};
pub use loops::{fold_all_loops, fold_loop, LoopFoldReport};
pub use stages::{expand_structural_stages, StageExpansion};

use std::collections::BTreeMap;

use crate::graph::LoopRegion;
use crate::memory::MemoryDecls;
use crate::node::LoopId;
use crate::node::{Node, NodeId, NodeKind};
use crate::signal::{BranchPath, Signal, SignalId, SignalSource};
use crate::{Dfg, DfgError};

/// Shared machinery for rebuilding a graph with remapped ids.
pub(crate) struct Rebuilder {
    nodes: Vec<Node>,
    signals: Vec<Signal>,
    /// old signal id -> new signal id
    sig_map: BTreeMap<SignalId, SignalId>,
    /// Memory declarations carry over unchanged: transformations remap
    /// nodes and signals, never banks or arrays.
    memory: MemoryDecls,
}

impl Rebuilder {
    /// Starts a rebuild, copying every external (input/constant) signal
    /// so their ids can be remapped uniformly.
    pub(crate) fn new(dfg: &Dfg) -> Self {
        let mut rb = Rebuilder {
            nodes: Vec::new(),
            signals: Vec::new(),
            sig_map: BTreeMap::new(),
            memory: dfg.memory().clone(),
        };
        for (sid, sig) in dfg.signals() {
            if sig.is_external() {
                let new_id = SignalId(rb.signals.len() as u32);
                rb.signals.push(sig.clone());
                rb.sig_map.insert(sid, new_id);
            }
        }
        rb
    }

    /// New-space id for an old signal.
    ///
    /// # Panics
    ///
    /// Panics if the old signal has not been copied or redirected yet;
    /// transformations visit nodes in topological order so producers are
    /// always mapped before consumers.
    pub(crate) fn map(&self, old: SignalId) -> SignalId {
        *self
            .sig_map
            .get(&old)
            .unwrap_or_else(|| panic!("signal {old} not yet mapped"))
    }

    /// Declares that consumers of old signal `old` should read `new`
    /// (new-space) instead.
    pub(crate) fn redirect(&mut self, old: SignalId, new: SignalId) {
        self.sig_map.insert(old, new);
    }

    /// Adds a fresh external signal (used by instance duplication).
    pub(crate) fn add_external(&mut self, name: String, source: SignalSource) -> SignalId {
        debug_assert!(!matches!(source, SignalSource::Node(_)));
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(Signal { name, source });
        id
    }

    /// Adds a node whose inputs are already in the new id space; returns
    /// the new node id and its output signal.
    pub(crate) fn add_node(
        &mut self,
        name: String,
        kind: NodeKind,
        inputs: Vec<SignalId>,
        branch: BranchPath,
        loop_id: Option<LoopId>,
    ) -> (NodeId, SignalId) {
        let node_id = NodeId(self.nodes.len() as u32);
        let output = SignalId(self.signals.len() as u32);
        self.signals.push(Signal {
            name: name.clone(),
            source: SignalSource::Node(node_id),
        });
        self.nodes.push(Node {
            name,
            kind,
            inputs,
            output,
            branch,
            loop_id,
        });
        (node_id, output)
    }

    /// Copies `node` verbatim, remapping its inputs, and records the
    /// output mapping.
    pub(crate) fn copy_node(&mut self, dfg: &Dfg, id: NodeId) -> (NodeId, SignalId) {
        let node = dfg.node(id);
        let inputs = node.inputs().iter().map(|&s| self.map(s)).collect();
        let (new_id, out) = self.add_node(
            node.name().to_string(),
            node.kind(),
            inputs,
            node.branch().clone(),
            node.loop_id(),
        );
        self.redirect(node.output(), out);
        (new_id, out)
    }

    /// Validates and assembles the rebuilt graph.
    pub(crate) fn finish(self, name: String, loops: Vec<LoopRegion>) -> Result<Dfg, DfgError> {
        Dfg::from_parts(name, self.nodes, self.signals, loops, self.memory)
    }
}
