//! Mutual-exclusion preprocessing (paper §5.1).

use std::collections::BTreeMap;

use crate::signal::{BranchArm, BranchPath};
use crate::transform::Rebuilder;
use crate::{Dfg, DfgError, NodeId};

/// What [`prune_shared_branch_ops`] did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BranchPruneReport {
    /// `(kept, removed)` node-name pairs: each removed operation was a
    /// duplicate of the kept one in a sibling branch arm.
    pub merged: Vec<(String, String)>,
}

impl BranchPruneReport {
    /// Number of removed duplicate operations.
    pub fn removed_count(&self) -> usize {
        self.merged.len()
    }
}

fn common_prefix(a: &BranchPath, b: &BranchPath) -> Vec<BranchArm> {
    a.arms()
        .iter()
        .zip(b.arms())
        .take_while(|(x, y)| x == y)
        .map(|(x, _)| *x)
        .collect()
}

/// Removes operations duplicated across mutually exclusive branch arms,
/// keeping one representative hoisted to the arms' common branch prefix.
///
/// The paper: "we remove all of the operations which are shared between
/// branches except one of them. Obviously, those shared operations can be
/// executed by the same FU." Two operations are *shared* when they have
/// the same kind and the same input signals and live in mutually
/// exclusive branch arms.
///
/// ```
/// use hls_celllib::OpKind;
/// use hls_dfg::{transform::prune_shared_branch_ops, DfgBuilder};
///
/// # fn main() -> Result<(), hls_dfg::DfgError> {
/// let mut b = DfgBuilder::new("ite");
/// let x = b.input("x");
/// let y = b.input("y");
/// let branch = b.begin_branch();
/// b.enter_arm(branch, 0);
/// let t = b.op("t", OpKind::Add, &[x, y])?;   // then-arm: x + y
/// let _t2 = b.op("t2", OpKind::Mul, &[t, x])?;
/// b.exit_arm();
/// b.enter_arm(branch, 1);
/// let e = b.op("e", OpKind::Add, &[x, y])?;   // else-arm: x + y again
/// let _e2 = b.op("e2", OpKind::Sub, &[e, y])?;
/// b.exit_arm();
/// let dfg = b.finish()?;
/// let (pruned, report) = prune_shared_branch_ops(&dfg)?;
/// assert_eq!(report.removed_count(), 1);
/// assert_eq!(pruned.node_count(), 3);
/// // The survivor is hoisted out of the conditional:
/// let kept = pruned.node_by_name("t").unwrap();
/// assert!(pruned.node(kept).branch().is_top_level());
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates graph-reconstruction errors; none are expected for valid
/// inputs.
pub fn prune_shared_branch_ops(dfg: &Dfg) -> Result<(Dfg, BranchPruneReport), DfgError> {
    let mut report = BranchPruneReport::default();
    // representative[id] = id of the node that replaces it (itself if kept).
    let mut representative: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    // The (possibly hoisted) branch path of each representative.
    let mut hoisted: BTreeMap<NodeId, BranchPath> = BTreeMap::new();

    // Process in topological order so that input signals of later nodes
    // can be compared *after* canonicalising through earlier merges.
    // key: (kind, canonical inputs) -> representative node.
    let mut seen: BTreeMap<(String, Vec<u32>), NodeId> = BTreeMap::new();
    // Canonical output signal of each original node after merging.
    let mut canon_out: BTreeMap<u32, u32> = BTreeMap::new();

    for &id in dfg.topo_order() {
        let node = dfg.node(id);
        let canon_inputs: Vec<u32> = node
            .inputs()
            .iter()
            .map(|s| {
                canon_out
                    .get(&(s.index() as u32))
                    .copied()
                    .unwrap_or(s.index() as u32)
            })
            .collect();
        let key = (format!("{}", node.kind()), canon_inputs);
        match seen.get(&key) {
            Some(&rep_id) if dfg.mutually_exclusive(rep_id, id) => {
                // A shared duplicate in a sibling arm: merge into rep.
                representative.insert(id, rep_id);
                canon_out.insert(
                    node.output().index() as u32,
                    dfg.node(rep_id).output().index() as u32,
                );
                let prefix = common_prefix(
                    hoisted
                        .get(&rep_id)
                        .unwrap_or_else(|| dfg.node(rep_id).branch()),
                    node.branch(),
                );
                hoisted.insert(rep_id, BranchPath::from_arms(prefix));
                report
                    .merged
                    .push((dfg.node(rep_id).name().to_string(), node.name().to_string()));
            }
            _ => {
                seen.insert(key, id);
                representative.insert(id, id);
            }
        }
    }

    let mut rb = Rebuilder::new(dfg);
    for &id in dfg.topo_order() {
        if representative[&id] != id {
            // Dropped: its output reads the representative's new output.
            continue;
        }
        let node = dfg.node(id);
        let inputs: Vec<_> = node
            .inputs()
            .iter()
            .map(|&s| {
                // Canonicalise through merges first (old-space), then map.
                let canon = canon_out
                    .get(&(s.index() as u32))
                    .map(|&i| crate::SignalId(i))
                    .unwrap_or(s);
                rb.map(canon)
            })
            .collect();
        let branch = hoisted
            .get(&id)
            .cloned()
            .unwrap_or_else(|| node.branch().clone());
        let (_, out) = rb.add_node(
            node.name().to_string(),
            node.kind(),
            inputs,
            branch,
            node.loop_id(),
        );
        rb.redirect(node.output(), out);
    }
    // Redirect removed nodes' outputs to their representatives' new outputs.
    for (&removed, &rep) in &representative {
        if removed != rep {
            let rep_new = rb.map(dfg.node(rep).output());
            rb.redirect(dfg.node(removed).output(), rep_new);
        }
    }
    // Nothing actually consumes those stale redirects (consumers were
    // canonicalised before mapping), but they keep `map` total.
    let out = rb.finish(dfg.name().to_string(), dfg.loops.clone())?;
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;
    use hls_celllib::OpKind;

    #[test]
    fn non_exclusive_duplicates_are_kept() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        b.op("a", OpKind::Add, &[x, y]).unwrap();
        b.op("b", OpKind::Add, &[x, y]).unwrap();
        let g = b.finish().unwrap();
        let (pruned, report) = prune_shared_branch_ops(&g).unwrap();
        assert_eq!(report.removed_count(), 0);
        assert_eq!(pruned.node_count(), 2);
    }

    #[test]
    fn consumers_are_rewired_to_the_survivor() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let branch = b.begin_branch();
        b.enter_arm(branch, 0);
        let t = b.op("t", OpKind::Mul, &[x, y]).unwrap();
        let tu = b.op("tu", OpKind::Inc, &[t]).unwrap();
        b.exit_arm();
        b.enter_arm(branch, 1);
        let e = b.op("e", OpKind::Mul, &[x, y]).unwrap();
        let eu = b.op("eu", OpKind::Dec, &[e]).unwrap();
        b.exit_arm();
        b.op("join", OpKind::Or, &[tu, eu]).unwrap();
        let g = b.finish().unwrap();
        let (pruned, report) = prune_shared_branch_ops(&g).unwrap();
        assert_eq!(report.removed_count(), 1);
        assert_eq!(pruned.node_count(), 4);
        // `eu` must now read the kept multiply's output.
        let kept = pruned.node_by_name("t").unwrap();
        let eu = pruned.node_by_name("eu").unwrap();
        assert_eq!(pruned.preds(eu), &[kept]);
    }

    #[test]
    fn cascading_duplicates_merge_transitively() {
        // Both arms compute p = x*y, then q = p+x: both levels merge.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let branch = b.begin_branch();
        b.enter_arm(branch, 0);
        let p0 = b.op("p0", OpKind::Mul, &[x, y]).unwrap();
        b.op("q0", OpKind::Add, &[p0, x]).unwrap();
        b.exit_arm();
        b.enter_arm(branch, 1);
        let p1 = b.op("p1", OpKind::Mul, &[x, y]).unwrap();
        b.op("q1", OpKind::Add, &[p1, x]).unwrap();
        b.exit_arm();
        let g = b.finish().unwrap();
        let (pruned, report) = prune_shared_branch_ops(&g).unwrap();
        assert_eq!(report.removed_count(), 2);
        assert_eq!(pruned.node_count(), 2);
    }

    #[test]
    fn different_inputs_are_not_shared() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let branch = b.begin_branch();
        b.enter_arm(branch, 0);
        b.op("t", OpKind::Add, &[x, y]).unwrap();
        b.exit_arm();
        b.enter_arm(branch, 1);
        b.op("e", OpKind::Add, &[x, z]).unwrap();
        b.exit_arm();
        let g = b.finish().unwrap();
        let (_, report) = prune_shared_branch_ops(&g).unwrap();
        assert_eq!(report.removed_count(), 0);
    }

    #[test]
    fn three_way_case_keeps_one() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let branch = b.begin_branch();
        for arm in 0..3 {
            b.enter_arm(branch, arm);
            b.op(&format!("t{arm}"), OpKind::Add, &[x, y]).unwrap();
            b.exit_arm();
        }
        let g = b.finish().unwrap();
        let (pruned, report) = prune_shared_branch_ops(&g).unwrap();
        assert_eq!(report.removed_count(), 2);
        assert_eq!(pruned.node_count(), 1);
    }
}
