//! Structural-pipelining stage expansion (paper §5.5.1).

use std::collections::BTreeSet;

use hls_celllib::{OpKind, TimingSpec};

use crate::node::NodeKind;
use crate::transform::Rebuilder;
use crate::{Dfg, DfgError};

/// What [`expand_structural_stages`] did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageExpansion {
    /// `(original op name, stage count)` for every expanded operation.
    pub expanded: Vec<(String, u8)>,
}

impl StageExpansion {
    /// Number of expanded operations.
    pub fn count(&self) -> usize {
        self.expanded.len()
    }
}

/// Converts every multi-cycle operation whose kind appears in
/// `pipelined` into a chain of single-cycle *stage* nodes, one per cycle.
///
/// The paper: "Change multi-cycle operations (for which pipelined FU's
/// are available) to single-cycle operations of different types. After
/// this modification, different operations represent different stages of
/// a multi-stage pipelined functional unit." A k-cycle `Mul` becomes
/// `Mul#1 → Mul#2 → … → Mul#k` with each stage a distinct
/// [`crate::FuClass`]; the scheduler keeps stages in consecutive control
/// steps while letting stage `i` of one operation overlap stage `j ≠ i`
/// of another — exactly the overlap a pipelined multiplier provides.
///
/// Operations whose kind is not in `pipelined`, or that are single-cycle
/// under `spec`, are copied unchanged.
///
/// ```
/// use hls_celllib::{OpKind, TimingSpec};
/// use hls_dfg::{transform::expand_structural_stages, DfgBuilder, NodeKind};
///
/// # fn main() -> Result<(), hls_dfg::DfgError> {
/// let mut b = DfgBuilder::new("g");
/// let x = b.input("x");
/// let y = b.input("y");
/// let m = b.op("m", OpKind::Mul, &[x, y])?;
/// let _a = b.op("a", OpKind::Add, &[m, x])?;
/// let dfg = b.finish()?;
/// let spec = TimingSpec::two_cycle_multiply();
/// let (expanded, report) =
///     expand_structural_stages(&dfg, &spec, &[OpKind::Mul].into_iter().collect())?;
/// assert_eq!(report.count(), 1);
/// assert_eq!(expanded.node_count(), 3); // m.s1, m.s2, a
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Propagates graph-reconstruction errors; none are expected for valid
/// inputs.
pub fn expand_structural_stages(
    dfg: &Dfg,
    spec: &TimingSpec,
    pipelined: &BTreeSet<OpKind>,
) -> Result<(Dfg, StageExpansion), DfgError> {
    let mut report = StageExpansion::default();
    let mut rb = Rebuilder::new(dfg);
    for &id in dfg.topo_order() {
        let node = dfg.node(id);
        let expand = match node.kind() {
            NodeKind::Op(k) => {
                let cycles = spec.cycles(k);
                (cycles > 1 && pipelined.contains(&k)).then_some((k, cycles))
            }
            _ => None,
        };
        match expand {
            None => {
                rb.copy_node(dfg, id);
            }
            Some((kind, cycles)) => {
                report.expanded.push((node.name().to_string(), cycles));
                let mut prev = None;
                for stage in 0..cycles {
                    let inputs = match prev {
                        // Stage 1 consumes the original operands.
                        None => node.inputs().iter().map(|&s| rb.map(s)).collect(),
                        // Later stages consume the previous stage.
                        Some(sig) => vec![sig],
                    };
                    let (_, out) = rb.add_node(
                        format!("{}.s{}", node.name(), stage + 1),
                        NodeKind::Stage {
                            base: kind,
                            index: stage,
                            of: cycles,
                        },
                        inputs,
                        node.branch().clone(),
                        node.loop_id(),
                    );
                    prev = Some(out);
                }
                // Consumers of the original output read the last stage.
                rb.redirect(node.output(), prev.expect("cycles >= 1"));
            }
        }
    }
    let out = rb.finish(dfg.name().to_string(), dfg.loops.clone())?;
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, FuClass};

    fn two_muls_one_add() -> Dfg {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let m1 = b.op("m1", OpKind::Mul, &[x, y]).unwrap();
        let m2 = b.op("m2", OpKind::Mul, &[y, x]).unwrap();
        b.op("a", OpKind::Add, &[m1, m2]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn stages_form_a_chain() {
        let g = two_muls_one_add();
        let spec = TimingSpec::two_cycle_multiply();
        let (e, report) =
            expand_structural_stages(&g, &spec, &[OpKind::Mul].into_iter().collect()).unwrap();
        assert_eq!(report.count(), 2);
        assert_eq!(e.node_count(), 5);
        let s1 = e.node_by_name("m1.s1").unwrap();
        let s2 = e.node_by_name("m1.s2").unwrap();
        assert_eq!(e.preds(s2), &[s1]);
        let a = e.node_by_name("a").unwrap();
        assert!(e.preds(a).contains(&s2));
    }

    #[test]
    fn stage_classes_are_distinct_per_stage() {
        let g = two_muls_one_add();
        let spec = TimingSpec::two_cycle_multiply();
        let (e, _) =
            expand_structural_stages(&g, &spec, &[OpKind::Mul].into_iter().collect()).unwrap();
        let counts = e.class_counts();
        assert_eq!(
            counts[&FuClass::Stage {
                base: OpKind::Mul,
                index: 0
            }],
            2
        );
        assert_eq!(
            counts[&FuClass::Stage {
                base: OpKind::Mul,
                index: 1
            }],
            2
        );
        assert_eq!(counts[&FuClass::Op(OpKind::Add)], 1);
    }

    #[test]
    fn non_pipelined_multicycle_ops_are_untouched() {
        let g = two_muls_one_add();
        let spec = TimingSpec::two_cycle_multiply();
        let (e, report) = expand_structural_stages(&g, &spec, &BTreeSet::new()).unwrap();
        assert_eq!(report.count(), 0);
        assert_eq!(e.node_count(), g.node_count());
    }

    #[test]
    fn single_cycle_ops_are_never_expanded() {
        let g = two_muls_one_add();
        let spec = TimingSpec::uniform_single_cycle();
        let (e, report) =
            expand_structural_stages(&g, &spec, &[OpKind::Mul].into_iter().collect()).unwrap();
        assert_eq!(report.count(), 0);
        assert_eq!(e.node_count(), g.node_count());
    }

    #[test]
    fn three_stage_expansion() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let m = b.op("m", OpKind::Div, &[x, x]).unwrap();
        b.op("o", OpKind::Inc, &[m]).unwrap();
        let g = b.finish().unwrap();
        let mut spec = TimingSpec::uniform_single_cycle();
        spec.set(
            OpKind::Div,
            hls_celllib::OpTiming::multi_cycle(3, hls_celllib::Delay::ZERO),
        );
        let (e, report) =
            expand_structural_stages(&g, &spec, &[OpKind::Div].into_iter().collect()).unwrap();
        assert_eq!(report.expanded, vec![("m".to_string(), 3)]);
        assert_eq!(e.node_count(), 4);
        assert!(e.node_by_name("m.s3").is_some());
    }
}
