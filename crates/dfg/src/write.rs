//! Serialisation back to the textual DFG format (the inverse of
//! [`crate::parse_dfg`]).

use std::fmt::Write as _;

use crate::signal::SignalSource;
use crate::{Dfg, NodeId, NodeKind, SignalId};

impl Dfg {
    /// Renders the graph in the textual format accepted by
    /// [`crate::parse_dfg`]. Round-trips exactly for graphs expressible
    /// in the format (no loop regions, no stage/loop-body nodes).
    ///
    /// # Errors
    ///
    /// Returns `None` when the graph contains constructs the text
    /// format cannot express (loop regions, stage nodes, folded loops).
    ///
    /// ```
    /// use hls_dfg::parse_dfg;
    ///
    /// let text = "dfg demo
    ///     input a, b
    ///     const k = 3
    ///     op p = mul(a, b)
    ///     op q = add(p, k)";
    /// let dfg = parse_dfg(text)?;
    /// let emitted = dfg.to_text().expect("expressible");
    /// let reparsed = parse_dfg(&emitted)?;
    /// assert_eq!(dfg, reparsed);
    /// # Ok::<(), hls_dfg::DfgError>(())
    /// ```
    pub fn to_text(&self) -> Option<String> {
        if !self.loops.is_empty() {
            return None;
        }
        // Index constants the parser materialises inline next to each
        // access (named `<node>.idx…`, consumed only by that node, and
        // allocated immediately before the node's output): emitting the
        // literal inside the access keeps signal ids stable across a
        // round trip.
        let inline_idx: std::collections::BTreeSet<SignalId> = self
            .nodes()
            .filter_map(|(id, node)| self.inline_index_const(id, node.inputs().first().copied()?))
            .collect();
        let mut out = String::new();
        let _ = writeln!(out, "dfg {}", self.name());
        let inputs: Vec<&str> = self
            .signals()
            .filter(|(_, s)| matches!(s.source(), SignalSource::PrimaryInput))
            .map(|(_, s)| s.name())
            .collect();
        if !inputs.is_empty() {
            let _ = writeln!(out, "input {}", inputs.join(", "));
        }
        for (id, sig) in self.signals() {
            if let SignalSource::Constant(v) = sig.source() {
                if !inline_idx.contains(&id) {
                    let _ = writeln!(out, "const {} = {v}", sig.name());
                }
            }
        }
        for bank in self.memory.banks() {
            let _ = writeln!(out, "bank {}(ports={})", bank.name(), bank.ports());
        }
        for array in self.memory.arrays() {
            let bank = self.memory.bank(array.bank())?;
            let _ = writeln!(
                out,
                "array {}[{}] @ {}",
                array.name(),
                array.size(),
                bank.name()
            );
        }
        // Node-id order is topological for any graph assembled through
        // the builder or parser (operands must exist before use), and —
        // unlike `topo_order()` — it is preserved by a parse round
        // trip, keeping `parse(to_text(g)) == g` id-exact.
        for (id, node) in self.nodes() {
            match node.kind() {
                NodeKind::Op(kind) => {
                    let args: Vec<&str> = node
                        .inputs()
                        .iter()
                        .map(|&s| self.signal(s).name())
                        .collect();
                    let _ = write!(
                        out,
                        "op {} = {}({})",
                        node.name(),
                        kind.name(),
                        args.join(", ")
                    );
                    if !node.branch().is_top_level() {
                        let arms: Vec<String> = node
                            .branch()
                            .arms()
                            .iter()
                            .map(|a| format!("{}.{}", a.branch.get(), a.arm))
                            .collect();
                        let _ = write!(out, " @branch({})", arms.join("/"));
                    }
                    out.push('\n');
                }
                NodeKind::Load { array, .. } => {
                    // Memory accesses under a branch are not expressible.
                    if !node.branch().is_top_level() {
                        return None;
                    }
                    let array = self.memory.array(array)?;
                    let idx = self.index_repr(id, node.inputs()[0], &inline_idx);
                    let _ = writeln!(out, "load {} = {}[{idx}]", node.name(), array.name());
                }
                NodeKind::Store { array, .. } => {
                    if !node.branch().is_top_level() {
                        return None;
                    }
                    let array = self.memory.array(array)?;
                    let idx = self.index_repr(id, node.inputs()[0], &inline_idx);
                    let value = self.signal(node.inputs()[1]).name();
                    let _ = writeln!(
                        out,
                        "store {} = {}[{idx}], {value}",
                        node.name(),
                        array.name()
                    );
                }
                _ => return None,
            }
        }
        Some(out)
    }

    /// The index signal of a memory access, when it is an inline
    /// parser-materialised constant (see [`Dfg::to_text`]).
    fn inline_index_const(&self, node: NodeId, index: SignalId) -> Option<SignalId> {
        let n = self.node(node);
        if !n.kind().is_mem_access() {
            return None;
        }
        let sig = self.signal(index);
        if !matches!(sig.source(), SignalSource::Constant(_)) {
            return None;
        }
        let prefix = format!("{}.idx", n.name());
        if !sig.name().starts_with(&prefix) {
            return None;
        }
        // Allocated immediately before the node's output, consumed only
        // by this node — exactly what a re-parse reproduces.
        if index.index() + 1 != n.output().index() {
            return None;
        }
        if self.consumers(index) != vec![node] {
            return None;
        }
        Some(index)
    }

    /// Renders an access index: the literal for inline constants, the
    /// signal name otherwise.
    fn index_repr(
        &self,
        node: NodeId,
        index: SignalId,
        inline_idx: &std::collections::BTreeSet<SignalId>,
    ) -> String {
        if inline_idx.contains(&index) && self.inline_index_const(node, index) == Some(index) {
            if let SignalSource::Constant(v) = self.signal(index).source() {
                return v.to_string();
            }
        }
        self.signal(index).name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse_dfg, DfgBuilder};
    use hls_celllib::OpKind;

    #[test]
    fn round_trips_a_branchy_graph() {
        let text = "dfg cond
            input a, b
            op t = add(a, b) @branch(0.0)
            op e = sub(a, b) @branch(0.1)
            op m = or(t, e)";
        let dfg = parse_dfg(text).unwrap();
        let emitted = dfg.to_text().unwrap();
        let reparsed = parse_dfg(&emitted).unwrap();
        assert_eq!(dfg, reparsed);
    }

    #[test]
    fn round_trips_nested_branches() {
        let text = "input a
            op t = inc(a) @branch(0.0/1.0)
            op u = dec(a) @branch(0.0/1.1)";
        let dfg = parse_dfg(text).unwrap();
        let reparsed = parse_dfg(&dfg.to_text().unwrap()).unwrap();
        assert_eq!(dfg, reparsed);
    }

    #[test]
    fn loops_are_not_expressible() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.begin_loop("l", 2);
        b.op("t", OpKind::Inc, &[x]).unwrap();
        b.end_loop();
        let g = b.finish().unwrap();
        assert!(g.to_text().is_none());
    }

    #[test]
    fn stage_nodes_are_not_expressible() {
        use crate::transform::expand_structural_stages;
        use hls_celllib::TimingSpec;
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("m", OpKind::Mul, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let (e, _) =
            expand_structural_stages(&g, &spec, &[OpKind::Mul].into_iter().collect()).unwrap();
        assert!(e.to_text().is_none());
    }

    #[test]
    fn round_trips_a_memory_graph_id_exact() {
        let text = "dfg mem
            input i, v
            bank ram(ports=2)
            array a[16] @ ram
            load x = a[i]
            store a[i] = v
            load y = a[3]
            store s1 = a[7], y";
        let dfg = parse_dfg(text).unwrap();
        let emitted = dfg.to_text().unwrap();
        let reparsed = parse_dfg(&emitted).unwrap();
        assert_eq!(dfg, reparsed);
        // Literal indices stay literals across the round trip.
        assert!(emitted.contains("load y = a[3]"));
        assert!(emitted.contains("store s1 = a[7], y"));
    }

    #[test]
    fn unused_constants_survive() {
        let text = "input a\nconst k = -7\nop t = inc(a)";
        let dfg = parse_dfg(text).unwrap();
        let emitted = dfg.to_text().unwrap();
        assert!(emitted.contains("const k = -7"));
        assert_eq!(parse_dfg(&emitted).unwrap(), dfg);
    }
}
