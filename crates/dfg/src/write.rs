//! Serialisation back to the textual DFG format (the inverse of
//! [`crate::parse_dfg`]).

use std::fmt::Write as _;

use crate::signal::SignalSource;
use crate::{Dfg, NodeKind};

impl Dfg {
    /// Renders the graph in the textual format accepted by
    /// [`crate::parse_dfg`]. Round-trips exactly for graphs expressible
    /// in the format (no loop regions, no stage/loop-body nodes).
    ///
    /// # Errors
    ///
    /// Returns `None` when the graph contains constructs the text
    /// format cannot express (loop regions, stage nodes, folded loops).
    ///
    /// ```
    /// use hls_dfg::parse_dfg;
    ///
    /// let text = "dfg demo
    ///     input a, b
    ///     const k = 3
    ///     op p = mul(a, b)
    ///     op q = add(p, k)";
    /// let dfg = parse_dfg(text)?;
    /// let emitted = dfg.to_text().expect("expressible");
    /// let reparsed = parse_dfg(&emitted)?;
    /// assert_eq!(dfg, reparsed);
    /// # Ok::<(), hls_dfg::DfgError>(())
    /// ```
    pub fn to_text(&self) -> Option<String> {
        if !self.loops.is_empty() {
            return None;
        }
        let mut out = String::new();
        let _ = writeln!(out, "dfg {}", self.name());
        let inputs: Vec<&str> = self
            .signals()
            .filter(|(_, s)| matches!(s.source(), SignalSource::PrimaryInput))
            .map(|(_, s)| s.name())
            .collect();
        if !inputs.is_empty() {
            let _ = writeln!(out, "input {}", inputs.join(", "));
        }
        for (_, sig) in self.signals() {
            if let SignalSource::Constant(v) = sig.source() {
                let _ = writeln!(out, "const {} = {v}", sig.name());
            }
        }
        // Node-id order is topological for any graph assembled through
        // the builder or parser (operands must exist before use), and —
        // unlike `topo_order()` — it is preserved by a parse round
        // trip, keeping `parse(to_text(g)) == g` id-exact.
        for (_, node) in self.nodes() {
            let kind = match node.kind() {
                NodeKind::Op(k) => k,
                _ => return None,
            };
            let args: Vec<&str> = node
                .inputs()
                .iter()
                .map(|&s| self.signal(s).name())
                .collect();
            let _ = write!(
                out,
                "op {} = {}({})",
                node.name(),
                kind.name(),
                args.join(", ")
            );
            if !node.branch().is_top_level() {
                let arms: Vec<String> = node
                    .branch()
                    .arms()
                    .iter()
                    .map(|a| format!("{}.{}", a.branch.get(), a.arm))
                    .collect();
                let _ = write!(out, " @branch({})", arms.join("/"));
            }
            out.push('\n');
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse_dfg, DfgBuilder};
    use hls_celllib::OpKind;

    #[test]
    fn round_trips_a_branchy_graph() {
        let text = "dfg cond
            input a, b
            op t = add(a, b) @branch(0.0)
            op e = sub(a, b) @branch(0.1)
            op m = or(t, e)";
        let dfg = parse_dfg(text).unwrap();
        let emitted = dfg.to_text().unwrap();
        let reparsed = parse_dfg(&emitted).unwrap();
        assert_eq!(dfg, reparsed);
    }

    #[test]
    fn round_trips_nested_branches() {
        let text = "input a
            op t = inc(a) @branch(0.0/1.0)
            op u = dec(a) @branch(0.0/1.1)";
        let dfg = parse_dfg(text).unwrap();
        let reparsed = parse_dfg(&dfg.to_text().unwrap()).unwrap();
        assert_eq!(dfg, reparsed);
    }

    #[test]
    fn loops_are_not_expressible() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.begin_loop("l", 2);
        b.op("t", OpKind::Inc, &[x]).unwrap();
        b.end_loop();
        let g = b.finish().unwrap();
        assert!(g.to_text().is_none());
    }

    #[test]
    fn stage_nodes_are_not_expressible() {
        use crate::transform::expand_structural_stages;
        use hls_celllib::TimingSpec;
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("m", OpKind::Mul, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let (e, _) =
            expand_structural_stages(&g, &spec, &[OpKind::Mul].into_iter().collect()).unwrap();
        assert!(e.to_text().is_none());
    }

    #[test]
    fn unused_constants_survive() {
        let text = "input a\nconst k = -7\nop t = inc(a)";
        let dfg = parse_dfg(text).unwrap();
        let emitted = dfg.to_text().unwrap();
        assert!(emitted.contains("const k = -7"));
        assert_eq!(parse_dfg(&emitted).unwrap(), dfg);
    }
}
