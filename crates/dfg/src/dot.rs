//! Graphviz (DOT) export.

use std::fmt::Write as _;

use crate::signal::SignalSource;
use crate::Dfg;

impl Dfg {
    /// Renders the graph in Graphviz DOT syntax: operation nodes as
    /// boxes labelled `name: kind`, primary inputs/constants as plain
    /// ellipses, and mutual-exclusion context in the tooltip.
    ///
    /// ```
    /// use hls_celllib::OpKind;
    /// use hls_dfg::DfgBuilder;
    ///
    /// # fn main() -> Result<(), hls_dfg::DfgError> {
    /// let mut b = DfgBuilder::new("g");
    /// let x = b.input("x");
    /// let _t = b.op("t", OpKind::Inc, &[x])?;
    /// let dot = b.finish()?.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("\"t\""));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=TB;");
        // External signals that are actually consumed.
        for (sid, sig) in self.signals() {
            if sig.is_external() && !self.consumers(sid).is_empty() {
                let shape = match sig.source() {
                    SignalSource::Constant(v) => format!("label=\"{} = {v}\"", sig.name()),
                    _ => format!("label=\"{}\"", sig.name()),
                };
                let _ = writeln!(out, "  \"{}\" [shape=ellipse, {shape}];", sig.name());
            }
        }
        for (_, node) in self.nodes() {
            let _ = writeln!(
                out,
                "  \"{}\" [shape=box, label=\"{}: {}\", tooltip=\"{}\"];",
                node.name(),
                node.name(),
                node.kind(),
                node.branch(),
            );
        }
        for (_, node) in self.nodes() {
            for &input in node.inputs() {
                let src = self.signal(input);
                let _ = writeln!(out, "  \"{}\" -> \"{}\";", src.name(), node.name());
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::DfgBuilder;
    use hls_celllib::OpKind;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let c = b.constant("three", 3);
        let t = b.op("t", OpKind::Mul, &[x, c]).unwrap();
        let _u = b.op("u", OpKind::Add, &[t, x]).unwrap();
        let dot = b.finish().unwrap().to_dot();
        assert!(dot.contains("\"x\" -> \"t\""));
        assert!(dot.contains("\"three\" -> \"t\""));
        assert!(dot.contains("\"t\" -> \"u\""));
        assert!(dot.contains("three = 3"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn unused_inputs_are_omitted() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let _unused = b.input("unused");
        let _t = b.op("t", OpKind::Inc, &[x]).unwrap();
        let dot = b.finish().unwrap().to_dot();
        assert!(!dot.contains("unused"));
    }
}
