//! Graph analyses: critical path and operator mix.

use std::collections::BTreeMap;
use std::fmt;

use hls_celllib::TimingSpec;

use crate::node::{FuClass, NodeId};
use crate::Dfg;

/// The longest dependency chain of a DFG, measured in control steps under
/// a [`TimingSpec`] (multi-cycle operations contribute their cycle
/// count). Its length is the smallest time constraint for which an ALAP
/// schedule exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    steps: usize,
    nodes: Vec<NodeId>,
}

impl CriticalPath {
    /// Computes the critical path of `dfg` under `spec`.
    pub fn compute(dfg: &Dfg, spec: &TimingSpec) -> CriticalPath {
        let n = dfg.node_count();
        // finish[i] = earliest step index (1-based) at which node i's last
        // cycle can complete.
        let mut finish = vec![0usize; n];
        let mut best_pred: Vec<Option<NodeId>> = vec![None; n];
        for &id in dfg.topo_order() {
            let cycles = dfg.node(id).kind().cycles(spec) as usize;
            let mut start = 0;
            for &p in dfg.preds(id) {
                if finish[p.index()] > start {
                    start = finish[p.index()];
                    best_pred[id.index()] = Some(p);
                }
            }
            finish[id.index()] = start + cycles;
        }
        let tail = (0..n)
            .max_by_key(|&i| finish[i])
            .map(|i| NodeId(i as u32))
            .expect("graphs are non-empty");
        let steps = finish[tail.index()];
        let mut nodes = vec![tail];
        let mut cur = tail;
        while let Some(p) = best_pred[cur.index()] {
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        CriticalPath { steps, nodes }
    }

    /// Length in control steps: no schedule can be shorter.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// One longest chain, source first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }
}

/// A multiset of functional-unit classes, printed in the paper's table
/// notation: the class symbol repeated once per unit, classes separated
/// by commas (e.g. `**,++,-` for 2 multipliers, 2 adders, 1 subtracter).
///
/// ```
/// use hls_celllib::OpKind;
/// use hls_dfg::{FuClass, OpMix};
///
/// let mut mix = OpMix::new();
/// mix.add(FuClass::Op(OpKind::Mul), 2);
/// mix.add(FuClass::Op(OpKind::Add), 2);
/// mix.add(FuClass::Op(OpKind::Sub), 1);
/// assert_eq!(mix.to_string(), "**,++,-");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpMix {
    counts: BTreeMap<FuClass, usize>,
}

impl OpMix {
    /// An empty mix.
    pub fn new() -> Self {
        OpMix::default()
    }

    /// The operator mix of a whole graph (one unit per operation).
    pub fn of_graph(dfg: &Dfg) -> OpMix {
        OpMix {
            counts: dfg.class_counts(),
        }
    }

    /// Adds `count` units of `class`.
    pub fn add(&mut self, class: FuClass, count: usize) {
        if count > 0 {
            *self.counts.entry(class).or_insert(0) += count;
        }
    }

    /// Units of `class`.
    pub fn count(&self, class: FuClass) -> usize {
        self.counts.get(&class).copied().unwrap_or(0)
    }

    /// Total number of units.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Iterates `(class, count)` in class order.
    pub fn iter(&self) -> impl Iterator<Item = (FuClass, usize)> + '_ {
        self.counts.iter().map(|(&c, &n)| (c, n))
    }
}

impl fmt::Display for OpMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Sort by descending unit weight: multipliers first, as in the
        // paper's tables. FuClass order is already operator order; the
        // paper lists `*` before `+` before `-`, which matches the
        // symbol-importance order below.
        let mut entries: Vec<(FuClass, usize)> =
            self.counts.iter().map(|(&c, &n)| (c, n)).collect();
        entries.sort_by_key(|&(c, _)| match c {
            FuClass::Op(k) | FuClass::Stage { base: k, .. } => {
                // Mul, Div first, then Add/Sub, then the rest.
                let rank = match k {
                    hls_celllib::OpKind::Mul => 0,
                    hls_celllib::OpKind::Div => 1,
                    hls_celllib::OpKind::Add => 2,
                    hls_celllib::OpKind::Sub => 3,
                    hls_celllib::OpKind::Inc => 4,
                    hls_celllib::OpKind::Dec => 5,
                    _ => 6,
                };
                (rank, c)
            }
            FuClass::Loop(_) => (7, c),
            FuClass::Mem(_) => (8, c),
        });
        let mut first = true;
        for (class, count) in entries {
            if !first {
                f.write_str(",")?;
            }
            first = false;
            match class {
                FuClass::Op(k) => {
                    for _ in 0..count {
                        f.write_str(k.symbol())?;
                    }
                }
                other => write!(f, "{count}x{other}")?,
            }
        }
        Ok(())
    }
}

impl FromIterator<(FuClass, usize)> for OpMix {
    fn from_iter<I: IntoIterator<Item = (FuClass, usize)>>(iter: I) -> Self {
        let mut mix = OpMix::new();
        for (class, count) in iter {
            mix.add(class, count);
        }
        mix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;
    use hls_celllib::OpKind;

    fn chain(len: usize) -> Dfg {
        let mut b = DfgBuilder::new("chain");
        let mut prev = b.input("x");
        for i in 0..len {
            prev = b.op(&format!("n{i}"), OpKind::Inc, &[prev]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn critical_path_of_chain_is_its_length() {
        let g = chain(5);
        let cp = CriticalPath::compute(&g, &TimingSpec::uniform_single_cycle());
        assert_eq!(cp.steps(), 5);
        assert_eq!(cp.nodes().len(), 5);
    }

    #[test]
    fn multicycle_ops_lengthen_the_path() {
        let mut b = DfgBuilder::new("mc");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.op("m", OpKind::Mul, &[x, y]).unwrap();
        let _a = b.op("a", OpKind::Add, &[m, y]).unwrap();
        let g = b.finish().unwrap();
        let cp1 = CriticalPath::compute(&g, &TimingSpec::uniform_single_cycle());
        assert_eq!(cp1.steps(), 2);
        let cp2 = CriticalPath::compute(&g, &TimingSpec::two_cycle_multiply());
        assert_eq!(cp2.steps(), 3);
    }

    #[test]
    fn critical_path_nodes_form_a_dependency_chain() {
        let g = chain(4);
        let cp = CriticalPath::compute(&g, &TimingSpec::uniform_single_cycle());
        for pair in cp.nodes().windows(2) {
            assert!(g.preds(pair[1]).contains(&pair[0]));
        }
    }

    #[test]
    fn op_mix_display_matches_paper_notation() {
        let mut mix = OpMix::new();
        mix.add(FuClass::Op(OpKind::Add), 2);
        mix.add(FuClass::Op(OpKind::Mul), 3);
        mix.add(FuClass::Op(OpKind::Sub), 1);
        assert_eq!(mix.to_string(), "***,++,-");
        assert_eq!(mix.total(), 6);
        assert_eq!(mix.count(FuClass::Op(OpKind::Mul)), 3);
    }

    #[test]
    fn op_mix_of_graph_counts_operations() {
        let g = chain(3);
        let mix = OpMix::of_graph(&g);
        assert_eq!(mix.count(FuClass::Op(OpKind::Inc)), 3);
    }

    #[test]
    fn zero_counts_are_not_stored() {
        let mut mix = OpMix::new();
        mix.add(FuClass::Op(OpKind::Add), 0);
        assert_eq!(mix.total(), 0);
        assert_eq!(mix.to_string(), "");
    }
}
