//! Error type for DFG construction and analysis.

use std::fmt;

use crate::{NodeId, SignalId};

/// Error produced while building, parsing or analysing a DFG.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DfgError {
    /// A signal or node name was declared twice.
    DuplicateName(String),
    /// A referenced signal does not exist.
    UnknownSignal(String),
    /// A node received the wrong number of inputs for its operation.
    ArityMismatch {
        /// The offending node's name.
        node: String,
        /// Inputs the operation expects.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// The graph contains a dependency cycle through these nodes.
    Cycle(Vec<NodeId>),
    /// The graph has no operation nodes.
    Empty,
    /// A signal id from a different graph was used.
    ForeignSignal(SignalId),
    /// Text-format parse error at the given 1-based line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A transformation was asked to fold a loop that has no nodes.
    EmptyLoop(crate::LoopId),
    /// A load or store referenced an array that is not declared.
    UnknownArray(String),
    /// An array was bound to a bank that is not declared.
    UnknownBank(String),
    /// A constant array index lies outside the declared bounds.
    IndexOutOfRange {
        /// The array's name.
        array: String,
        /// The offending index.
        index: i64,
        /// The declared element count.
        size: u32,
    },
    /// A bank was declared with zero ports.
    BadPortCount(String),
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
            DfgError::UnknownSignal(name) => write!(f, "unknown signal `{name}`"),
            DfgError::ArityMismatch {
                node,
                expected,
                got,
            } => write!(
                f,
                "node `{node}` expects {expected} input(s) but received {got}"
            ),
            DfgError::Cycle(nodes) => {
                write!(f, "dependency cycle through ")?;
                for (i, n) in nodes.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" -> ")?;
                    }
                    write!(f, "{n}")?;
                }
                Ok(())
            }
            DfgError::Empty => f.write_str("the data-flow graph has no operations"),
            DfgError::ForeignSignal(id) => {
                write!(f, "signal {id} does not belong to this graph")
            }
            DfgError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            DfgError::EmptyLoop(id) => write!(f, "loop {id} contains no nodes"),
            DfgError::UnknownArray(name) => write!(f, "unknown array `{name}`"),
            DfgError::UnknownBank(name) => write!(f, "unknown bank `{name}`"),
            DfgError::IndexOutOfRange { array, index, size } => write!(
                f,
                "index {index} is out of range for array `{array}` of size {size}"
            ),
            DfgError::BadPortCount(bank) => {
                write!(f, "bank `{bank}` must have at least one port")
            }
        }
    }
}

impl std::error::Error for DfgError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoopId;

    #[test]
    fn display_variants() {
        assert!(DfgError::DuplicateName("x".into())
            .to_string()
            .contains('x'));
        assert!(DfgError::Empty.to_string().contains("no operations"));
        let arity = DfgError::ArityMismatch {
            node: "t1".into(),
            expected: 2,
            got: 1,
        };
        assert!(arity.to_string().contains("t1"));
        let cycle = DfgError::Cycle(vec![NodeId(0), NodeId(1)]);
        assert!(cycle.to_string().contains("n0 -> n1"));
        assert!(DfgError::EmptyLoop(LoopId::new(2))
            .to_string()
            .contains("L2"));
    }
}
