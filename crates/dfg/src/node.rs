//! Operation nodes and functional-unit classes.

use std::fmt;

use hls_celllib::{Delay, OpKind, TimingSpec};

use crate::memory::{ArrayId, BankId};
use crate::signal::{BranchPath, SignalId};

/// Identifier of a [`Node`] within one [`crate::Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from [`NodeId::index`] — for dense, index-addressed
    /// side tables (schedules, grids, bound caches). The caller is
    /// responsible for only using indices obtained from the same graph.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a loop region (used by loop folding, paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub(crate) u32);

impl LoopId {
    /// Creates a loop id.
    pub fn new(raw: u32) -> Self {
        LoopId(raw)
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// What a node computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An ordinary operation.
    Op(OpKind),
    /// One stage of a structurally pipelined multi-cycle operation
    /// (paper §5.5.1): stage `index` of `of` of a pipelined `base` unit.
    /// Stage nodes are produced by
    /// [`crate::transform::expand_structural_stages`] and "represent
    /// different stages of a multi-stage pipelined functional unit".
    Stage {
        /// The operation being pipelined (e.g. `Mul`).
        base: OpKind,
        /// Zero-based stage index.
        index: u8,
        /// Total number of stages.
        of: u8,
    },
    /// A folded inner loop treated "as a single operation with an
    /// execution time that is equal to the loop's local time constraint"
    /// (paper §5.2).
    LoopBody {
        /// The folded loop.
        loop_id: LoopId,
        /// Its local time constraint in control steps.
        cycles: u8,
    },
    /// A memory read `load a[i]`: input 0 is the index signal; further
    /// inputs are ordering tokens from earlier stores to the same array.
    /// Scheduled on a port of the array's bank ([`FuClass::Mem`]).
    Load {
        /// The array being read.
        array: ArrayId,
        /// The bank the array lives in (denormalised from the array
        /// declaration so [`NodeKind::fu_class`] needs no graph access).
        bank: BankId,
    },
    /// A memory write `store a[i] = v`: input 0 is the index signal,
    /// input 1 the stored value; further inputs are ordering tokens from
    /// earlier accesses to the same array. The output signal carries the
    /// stored value (and serves as the ordering token for later
    /// accesses).
    Store {
        /// The array being written.
        array: ArrayId,
        /// The bank the array lives in.
        bank: BankId,
    },
}

impl NodeKind {
    /// The plain operation kind, when the node is an ordinary op.
    pub fn op(self) -> Option<OpKind> {
        match self {
            NodeKind::Op(k) => Some(k),
            _ => None,
        }
    }

    /// Control steps this node occupies under `spec`.
    pub fn cycles(self, spec: &TimingSpec) -> u8 {
        match self {
            NodeKind::Op(k) => spec.cycles(k),
            NodeKind::Stage { .. } => 1,
            NodeKind::LoopBody { cycles, .. } => cycles,
            // One step per access: the bank is synchronous single-cycle.
            NodeKind::Load { .. } | NodeKind::Store { .. } => 1,
        }
    }

    /// Combinational delay of the node under `spec` (used by chaining).
    pub fn delay(self, spec: &TimingSpec) -> Delay {
        match self {
            NodeKind::Op(k) => spec.delay(k),
            // A pipeline stage occupies a full step by construction.
            NodeKind::Stage { .. } => Delay::ZERO,
            NodeKind::LoopBody { .. } => Delay::ZERO,
            // Accesses occupy their full step; they never chain.
            NodeKind::Load { .. } | NodeKind::Store { .. } => Delay::ZERO,
        }
    }

    /// The functional-unit class ("type j" in the paper's 3-D placement
    /// space) this node is scheduled on.
    pub fn fu_class(self) -> FuClass {
        match self {
            NodeKind::Op(k) => FuClass::Op(k),
            NodeKind::Stage { base, index, .. } => FuClass::Stage { base, index },
            NodeKind::LoopBody { loop_id, .. } => FuClass::Loop(loop_id),
            NodeKind::Load { bank, .. } | NodeKind::Store { bank, .. } => FuClass::Mem(bank),
        }
    }

    /// The accessed array, when the node is a load or store.
    pub fn array(self) -> Option<ArrayId> {
        match self {
            NodeKind::Load { array, .. } | NodeKind::Store { array, .. } => Some(array),
            _ => None,
        }
    }

    /// Whether the node is a memory access (load or store).
    pub fn is_mem_access(self) -> bool {
        matches!(self, NodeKind::Load { .. } | NodeKind::Store { .. })
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Op(k) => write!(f, "{k}"),
            NodeKind::Stage { base, index, of } => write!(f, "{base}#{}/{of}", index + 1),
            NodeKind::LoopBody { loop_id, cycles } => write!(f, "{loop_id}[{cycles}]"),
            NodeKind::Load { array, .. } => write!(f, "ld:{array}"),
            NodeKind::Store { array, .. } => write!(f, "st:{array}"),
        }
    }
}

/// A functional-unit *type*: one 2-D placement table of the paper's 3-D
/// space. Ordinary ops map to their operator; structural pipeline stages
/// map to per-stage classes ("single-cycle operations of different
/// types", §5.5.1); folded loops get a dedicated class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuClass {
    /// Functional units performing one operator.
    Op(OpKind),
    /// Stage `index` of a pipelined `base` unit.
    Stage {
        /// The pipelined operator.
        base: OpKind,
        /// Zero-based stage index.
        index: u8,
    },
    /// The datapath of a folded loop.
    Loop(LoopId),
    /// The access ports of a memory bank: "unit" `k` of this class is
    /// the bank's `k`-th port, and the bank's declared port count is a
    /// hard column budget (ports cannot be synthesised on demand).
    Mem(BankId),
}

impl FuClass {
    /// The underlying operator for `Op` and `Stage` classes.
    pub fn base_op(self) -> Option<OpKind> {
        match self {
            FuClass::Op(k) => Some(k),
            FuClass::Stage { base, .. } => Some(base),
            FuClass::Loop(_) | FuClass::Mem(_) => None,
        }
    }

    /// The bank for `Mem` classes.
    pub fn bank(self) -> Option<BankId> {
        match self {
            FuClass::Mem(b) => Some(b),
            _ => None,
        }
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuClass::Op(k) => write!(f, "{k}"),
            FuClass::Stage { base, index } => write!(f, "{base}#{}", index + 1),
            FuClass::Loop(id) => write!(f, "{id}"),
            FuClass::Mem(id) => write!(f, "mem:{id}"),
        }
    }
}

/// One operation node of the DFG.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: NodeKind,
    pub(crate) inputs: Vec<SignalId>,
    pub(crate) output: SignalId,
    pub(crate) branch: BranchPath,
    pub(crate) loop_id: Option<LoopId>,
}

impl Node {
    /// The node's behavioural name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What the node computes.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Input signals, in operand order (1 or 2 entries).
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// The produced signal.
    pub fn output(&self) -> SignalId {
        self.output
    }

    /// Conditional context (for mutual exclusion).
    pub fn branch(&self) -> &BranchPath {
        &self.branch
    }

    /// The loop region containing this node, if any.
    pub fn loop_id(&self) -> Option<LoopId> {
        self.loop_id
    }

    /// Whether this node and `other` are mutually exclusive (different
    /// arms of a common conditional) and may therefore share a position.
    pub fn excludes(&self, other: &Node) -> bool {
        self.branch.excludes(&other.branch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_cycles_follow_timing_spec() {
        let spec = TimingSpec::two_cycle_multiply();
        assert_eq!(NodeKind::Op(OpKind::Mul).cycles(&spec), 2);
        assert_eq!(NodeKind::Op(OpKind::Add).cycles(&spec), 1);
    }

    #[test]
    fn stage_nodes_are_single_cycle() {
        let spec = TimingSpec::two_cycle_multiply();
        let stage = NodeKind::Stage {
            base: OpKind::Mul,
            index: 0,
            of: 2,
        };
        assert_eq!(stage.cycles(&spec), 1);
    }

    #[test]
    fn loop_body_cycles_are_fixed() {
        let spec = TimingSpec::uniform_single_cycle();
        let body = NodeKind::LoopBody {
            loop_id: LoopId(0),
            cycles: 5,
        };
        assert_eq!(body.cycles(&spec), 5);
    }

    #[test]
    fn fu_class_separates_stages() {
        let s0 = NodeKind::Stage {
            base: OpKind::Mul,
            index: 0,
            of: 2,
        };
        let s1 = NodeKind::Stage {
            base: OpKind::Mul,
            index: 1,
            of: 2,
        };
        assert_ne!(s0.fu_class(), s1.fu_class());
        assert_ne!(s0.fu_class(), NodeKind::Op(OpKind::Mul).fu_class());
        assert_eq!(s0.fu_class().base_op(), Some(OpKind::Mul));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeKind::Op(OpKind::Add).to_string(), "+");
        let s = NodeKind::Stage {
            base: OpKind::Mul,
            index: 1,
            of: 2,
        };
        assert_eq!(s.to_string(), "*#2/2");
        let l = NodeKind::LoopBody {
            loop_id: LoopId(3),
            cycles: 4,
        };
        assert_eq!(l.to_string(), "L3[4]");
        assert_eq!(FuClass::Op(OpKind::Add).to_string(), "+");
    }
}
