//! Fluent construction of data-flow graphs.

use std::collections::{BTreeMap, BTreeSet};

use hls_celllib::OpKind;

use crate::graph::LoopRegion;
use crate::memory::{ArrayDecl, ArrayId, BankDecl, BankId, MemoryDecls};
use crate::node::{LoopId, Node, NodeId, NodeKind};
use crate::signal::{BranchArm, BranchId, BranchPath, Signal, SignalId, SignalSource};
use crate::{Dfg, DfgError};

/// Per-array access-ordering state: the token signals the next access
/// must consume to preserve RAW/WAW/WAR order.
#[derive(Debug, Clone, Default)]
struct MemOrder {
    /// Output of the latest store (RAW for loads, WAW for stores).
    last_store: Option<SignalId>,
    /// Outputs of loads issued since the latest store (WAR for stores).
    loads_since: Vec<SignalId>,
}

/// Incremental builder for [`Dfg`] values.
///
/// Operations are added in behavioural order; conditional arms and loop
/// regions are entered/exited with a stack discipline:
///
/// ```
/// use hls_celllib::OpKind;
/// use hls_dfg::DfgBuilder;
///
/// # fn main() -> Result<(), hls_dfg::DfgError> {
/// let mut b = DfgBuilder::new("cond");
/// let x = b.input("x");
/// let y = b.input("y");
/// let branch = b.begin_branch();
/// b.enter_arm(branch, 0);
/// let t = b.op("t", OpKind::Add, &[x, y])?;
/// b.exit_arm();
/// b.enter_arm(branch, 1);
/// let e = b.op("e", OpKind::Sub, &[x, y])?;
/// b.exit_arm();
/// let _m = b.op("m", OpKind::Or, &[t, e])?;
/// let dfg = b.finish()?;
/// let t = dfg.node_by_name("t").unwrap();
/// let e = dfg.node_by_name("e").unwrap();
/// assert!(dfg.mutually_exclusive(t, e));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DfgBuilder {
    name: String,
    nodes: Vec<Node>,
    signals: Vec<Signal>,
    loops: Vec<LoopRegion>,
    memory: MemoryDecls,
    mem_order: BTreeMap<ArrayId, MemOrder>,
    names: BTreeSet<String>,
    next_branch: u32,
    branch_stack: Vec<BranchArm>,
    loop_stack: Vec<LoopId>,
}

impl DfgBuilder {
    /// Starts an empty graph named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        DfgBuilder {
            name: name.into(),
            nodes: Vec::new(),
            signals: Vec::new(),
            loops: Vec::new(),
            memory: MemoryDecls::default(),
            mem_order: BTreeMap::new(),
            names: BTreeSet::new(),
            next_branch: 0,
            branch_stack: Vec::new(),
            loop_stack: Vec::new(),
        }
    }

    fn intern_name(&mut self, name: &str) -> Result<(), DfgError> {
        if !self.names.insert(name.to_string()) {
            return Err(DfgError::DuplicateName(name.to_string()));
        }
        Ok(())
    }

    fn push_signal(&mut self, name: String, source: SignalSource) -> SignalId {
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(Signal { name, source });
        id
    }

    /// Declares a primary input.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken; inputs are declared first and
    /// a clash is a programming error in the caller's benchmark code.
    pub fn input(&mut self, name: &str) -> SignalId {
        self.intern_name(name)
            .unwrap_or_else(|e| panic!("input: {e}"));
        self.push_signal(name.to_string(), SignalSource::PrimaryInput)
    }

    /// Declares a named constant.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken (see [`DfgBuilder::input`]).
    pub fn constant(&mut self, name: &str, value: i64) -> SignalId {
        self.intern_name(name)
            .unwrap_or_else(|e| panic!("constant: {e}"));
        self.push_signal(name.to_string(), SignalSource::Constant(value))
    }

    /// Adds an operation node named `name` computing `kind` over
    /// `inputs`; returns its output signal (also named `name`).
    ///
    /// # Errors
    ///
    /// [`DfgError::DuplicateName`] if `name` is taken;
    /// [`DfgError::ArityMismatch`] if `inputs.len()` ≠ the operator's
    /// arity; [`DfgError::ForeignSignal`] if an input id is out of range.
    pub fn op(
        &mut self,
        name: &str,
        kind: OpKind,
        inputs: &[SignalId],
    ) -> Result<SignalId, DfgError> {
        if inputs.len() != kind.arity() {
            return Err(DfgError::ArityMismatch {
                node: name.to_string(),
                expected: kind.arity(),
                got: inputs.len(),
            });
        }
        self.raw_node(name, NodeKind::Op(kind), inputs)
    }

    /// Adds a node of any [`NodeKind`] (stage and loop-body nodes are
    /// normally produced by the transformations, but the harnesses need
    /// this to construct mid-transformation graphs directly).
    ///
    /// # Errors
    ///
    /// Same as [`DfgBuilder::op`], with the arity check relaxed to
    /// 1–2 inputs for non-`Op` kinds.
    pub fn raw_node(
        &mut self,
        name: &str,
        kind: NodeKind,
        inputs: &[SignalId],
    ) -> Result<SignalId, DfgError> {
        self.intern_name(name)?;
        for &input in inputs {
            if input.index() >= self.signals.len() {
                return Err(DfgError::ForeignSignal(input));
            }
        }
        let node_id = NodeId(self.nodes.len() as u32);
        let output = self.push_signal(name.to_string(), SignalSource::Node(node_id));
        self.nodes.push(Node {
            name: name.to_string(),
            kind,
            inputs: inputs.to_vec(),
            output,
            branch: BranchPath::from_arms(self.branch_stack.iter().copied()),
            loop_id: self.loop_stack.last().copied(),
        });
        Ok(output)
    }

    /// Declares a memory bank with `ports` concurrent access ports.
    ///
    /// # Panics
    ///
    /// Panics if the name is taken or `ports` is zero — banks are
    /// declared up front like inputs, so either is a programming error
    /// in the caller's benchmark code.
    pub fn declare_bank(&mut self, name: &str, ports: u32) -> BankId {
        assert!(ports >= 1, "bank `{name}` must have at least one port");
        self.intern_name(name)
            .unwrap_or_else(|e| panic!("declare_bank: {e}"));
        let id = BankId(self.memory.banks.len() as u32);
        self.memory.banks.push(BankDecl {
            id,
            name: name.to_string(),
            ports,
        });
        id
    }

    /// Declares an array of `size` elements living in `bank`.
    ///
    /// # Panics
    ///
    /// Panics if the name is taken, `size` is zero, or `bank` was not
    /// declared (see [`DfgBuilder::declare_bank`]).
    pub fn declare_array(&mut self, name: &str, size: u32, bank: BankId) -> ArrayId {
        assert!(size >= 1, "array `{name}` must have at least one element");
        assert!(
            self.memory.bank(bank).is_some(),
            "array `{name}` references an undeclared bank"
        );
        self.intern_name(name)
            .unwrap_or_else(|e| panic!("declare_array: {e}"));
        let id = ArrayId(self.memory.arrays.len() as u32);
        self.memory.arrays.push(ArrayDecl {
            id,
            name: name.to_string(),
            size,
            bank,
        });
        id
    }

    /// Adds a `load name = array[index]` node; returns the loaded value's
    /// signal. Ordering tokens from earlier stores to the same array are
    /// appended automatically, so accesses can never be reordered across
    /// a write.
    ///
    /// # Errors
    ///
    /// [`DfgError::UnknownArray`] if `array` was not declared;
    /// [`DfgError::DuplicateName`] / [`DfgError::ForeignSignal`] as for
    /// [`DfgBuilder::op`].
    pub fn load(
        &mut self,
        name: &str,
        array: ArrayId,
        index: SignalId,
    ) -> Result<SignalId, DfgError> {
        let Some(decl) = self.memory.array(array) else {
            return Err(DfgError::UnknownArray(array.to_string()));
        };
        let bank = decl.bank;
        let mut inputs = vec![index];
        let order = self.mem_order.entry(array).or_default();
        if let Some(tok) = order.last_store {
            if tok != index {
                inputs.push(tok);
            }
        }
        let out = self.raw_node(name, NodeKind::Load { array, bank }, &inputs)?;
        self.mem_order
            .entry(array)
            .or_default()
            .loads_since
            .push(out);
        Ok(out)
    }

    /// Adds a `store array[index] = value` node; returns the store's
    /// output signal, which carries the stored value and doubles as the
    /// ordering token for later accesses. Tokens for WAW (previous
    /// store) and WAR (loads since the previous store) hazards are
    /// appended automatically.
    ///
    /// # Errors
    ///
    /// As for [`DfgBuilder::load`].
    pub fn store(
        &mut self,
        name: &str,
        array: ArrayId,
        index: SignalId,
        value: SignalId,
    ) -> Result<SignalId, DfgError> {
        let Some(decl) = self.memory.array(array) else {
            return Err(DfgError::UnknownArray(array.to_string()));
        };
        let bank = decl.bank;
        let mut inputs = vec![index, value];
        let order = self.mem_order.entry(array).or_default();
        for tok in order.last_store.iter().chain(order.loads_since.iter()) {
            if !inputs.contains(tok) {
                inputs.push(*tok);
            }
        }
        let out = self.raw_node(name, NodeKind::Store { array, bank }, &inputs)?;
        let order = self.mem_order.entry(array).or_default();
        order.last_store = Some(out);
        order.loads_since.clear();
        Ok(out)
    }

    /// Allocates a fresh conditional construct. Arms are then entered
    /// with [`DfgBuilder::enter_arm`].
    pub fn begin_branch(&mut self) -> BranchId {
        let id = BranchId::new(self.next_branch);
        self.next_branch += 1;
        id
    }

    /// Enters arm `arm` of `branch`; subsequent operations belong to it.
    pub fn enter_arm(&mut self, branch: BranchId, arm: u32) {
        self.branch_stack.push(BranchArm { branch, arm });
    }

    /// Leaves the innermost conditional arm.
    ///
    /// # Panics
    ///
    /// Panics if no arm is open (builder misuse).
    pub fn exit_arm(&mut self) {
        self.branch_stack
            .pop()
            .expect("exit_arm called with no open arm");
    }

    /// Opens a loop region with a local time constraint (control steps
    /// for one iteration, paper §5.2). Nested loops are allowed.
    pub fn begin_loop(&mut self, name: &str, time_constraint: u8) -> LoopId {
        let id = LoopId::new(self.loops.len() as u32);
        self.loops.push(LoopRegion {
            id,
            name: name.to_string(),
            parent: self.loop_stack.last().copied(),
            time_constraint,
        });
        self.loop_stack.push(id);
        id
    }

    /// Closes the innermost loop region.
    ///
    /// # Panics
    ///
    /// Panics if no loop is open (builder misuse).
    pub fn end_loop(&mut self) {
        self.loop_stack
            .pop()
            .expect("end_loop called with no open loop");
    }

    /// Validates and returns the graph.
    ///
    /// # Errors
    ///
    /// [`DfgError::Empty`] for a graph without operations and
    /// [`DfgError::Cycle`] if the dependencies are cyclic (unreachable
    /// through this builder's safe methods, but checked uniformly).
    pub fn finish(self) -> Result<Dfg, DfgError> {
        Dfg::from_parts(self.name, self.nodes, self.signals, self.loops, self.memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_op_name_is_an_error() {
        let mut b = DfgBuilder::new("dup");
        let x = b.input("x");
        let y = b.input("y");
        b.op("t", OpKind::Add, &[x, y]).unwrap();
        assert_eq!(
            b.op("t", OpKind::Sub, &[x, y]).unwrap_err(),
            DfgError::DuplicateName("t".into())
        );
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let mut b = DfgBuilder::new("arity");
        let x = b.input("x");
        assert!(matches!(
            b.op("t", OpKind::Add, &[x]),
            Err(DfgError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
        let y = b.input("y");
        assert!(matches!(
            b.op("u", OpKind::Inc, &[x, y]),
            Err(DfgError::ArityMismatch {
                expected: 1,
                got: 2,
                ..
            })
        ));
    }

    #[test]
    fn unary_ops_take_one_input() {
        let mut b = DfgBuilder::new("unary");
        let x = b.input("x");
        let i = b.op("i", OpKind::Inc, &[x]).unwrap();
        let _d = b.op("d", OpKind::Dec, &[i]).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn loop_membership_is_recorded() {
        let mut b = DfgBuilder::new("loops");
        let x = b.input("x");
        let outer = b.begin_loop("outer", 10);
        let t = b.op("t", OpKind::Add, &[x, x]).unwrap();
        let inner = b.begin_loop("inner", 4);
        let _u = b.op("u", OpKind::Mul, &[t, t]).unwrap();
        b.end_loop();
        b.end_loop();
        let g = b.finish().unwrap();
        let t = g.node_by_name("t").unwrap();
        let u = g.node_by_name("u").unwrap();
        assert_eq!(g.node(t).loop_id(), Some(outer));
        assert_eq!(g.node(u).loop_id(), Some(inner));
        assert_eq!(g.loop_region(inner).unwrap().parent(), Some(outer));
        assert_eq!(g.loop_region(inner).unwrap().time_constraint(), 4);
        assert_eq!(g.loop_members(inner), vec![u]);
    }

    #[test]
    fn branch_stack_nesting() {
        let mut b = DfgBuilder::new("nest");
        let x = b.input("x");
        let outer = b.begin_branch();
        b.enter_arm(outer, 0);
        let inner = b.begin_branch();
        b.enter_arm(inner, 0);
        b.op("a", OpKind::Inc, &[x]).unwrap();
        b.exit_arm();
        b.enter_arm(inner, 1);
        b.op("c", OpKind::Dec, &[x]).unwrap();
        b.exit_arm();
        b.exit_arm();
        b.enter_arm(outer, 1);
        b.op("d", OpKind::Neg, &[x]).unwrap();
        b.exit_arm();
        let g = b.finish().unwrap();
        let a = g.node_by_name("a").unwrap();
        let c = g.node_by_name("c").unwrap();
        let d = g.node_by_name("d").unwrap();
        assert!(g.mutually_exclusive(a, c));
        assert!(g.mutually_exclusive(a, d));
        assert!(g.mutually_exclusive(c, d));
        assert_eq!(g.node(a).branch().arms().len(), 2);
    }

    #[test]
    #[should_panic(expected = "no open arm")]
    fn exit_arm_without_enter_panics() {
        let mut b = DfgBuilder::new("x");
        b.exit_arm();
    }

    #[test]
    fn foreign_signal_rejected() {
        let mut other = DfgBuilder::new("other");
        for i in 0..10 {
            other.input(&format!("i{i}"));
        }
        let foreign = SignalId(9);
        let mut b = DfgBuilder::new("b");
        let _x = b.input("x");
        assert!(matches!(
            b.op("t", OpKind::Inc, &[foreign]),
            Err(DfgError::ForeignSignal(_))
        ));
    }
}
