//! The data-flow graph itself.

use std::collections::BTreeMap;

use crate::memory::{ArrayDecl, ArrayId, BankDecl, BankId, MemoryDecls};
use crate::node::{FuClass, LoopId, Node, NodeId, NodeKind};
use crate::signal::{Signal, SignalId, SignalSource};
use crate::DfgError;

/// A loop region of the behaviour (paper §5.2): its nodes are marked with
/// the region's [`LoopId`]; the user supplies a *local* time constraint
/// for the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopRegion {
    pub(crate) id: LoopId,
    pub(crate) name: String,
    pub(crate) parent: Option<LoopId>,
    pub(crate) time_constraint: u8,
}

impl LoopRegion {
    /// The region id.
    pub fn id(&self) -> LoopId {
        self.id
    }

    /// The region name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The enclosing loop, for nested loops.
    pub fn parent(&self) -> Option<LoopId> {
        self.parent
    }

    /// The user-specified local time constraint, in control steps.
    pub fn time_constraint(&self) -> u8 {
        self.time_constraint
    }
}

/// A validated, acyclic data-flow graph.
///
/// Constructed via [`crate::DfgBuilder`] or [`crate::parse_dfg`]; always
/// structurally sound: operand arities match, every referenced signal
/// exists, output signals point back at their producers and the
/// dependency relation is acyclic (a topological order is precomputed).
#[derive(Debug, Clone, PartialEq)]
pub struct Dfg {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) signals: Vec<Signal>,
    pub(crate) loops: Vec<LoopRegion>,
    pub(crate) memory: MemoryDecls,
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
    topo: Vec<NodeId>,
    /// Per-node compact index into `mutex_bits`, or `u32::MAX` for
    /// unconditional nodes (which exclude nothing). Only nodes inside a
    /// branch arm get a row, so branch-free graphs pay nothing.
    mutex_index: Vec<u32>,
    /// Symmetric k×k bitset over the branched nodes: bit `(i, j)` is set
    /// iff their branch paths are mutually exclusive.
    mutex_bits: Vec<u64>,
    /// Words per `mutex_bits` row.
    mutex_words: usize,
    /// One bit per node: whether it excludes at least one other node
    /// (i.e. occupancy sharing is even worth checking for it).
    excluders: Vec<u64>,
}

impl Dfg {
    /// Validates the parts and assembles the graph. Used by the builder,
    /// the parser and the transformations.
    pub(crate) fn from_parts(
        name: String,
        nodes: Vec<Node>,
        signals: Vec<Signal>,
        loops: Vec<LoopRegion>,
        memory: MemoryDecls,
    ) -> Result<Self, DfgError> {
        if nodes.is_empty() {
            return Err(DfgError::Empty);
        }
        // Memory declarations must be internally sound before any node
        // can reference them.
        for bank in &memory.banks {
            if bank.ports == 0 {
                return Err(DfgError::BadPortCount(bank.name.clone()));
            }
        }
        for array in &memory.arrays {
            if memory.bank(array.bank).is_none() {
                return Err(DfgError::UnknownBank(array.bank.to_string()));
            }
        }
        // Arity and signal-range checks.
        for node in &nodes {
            for &sig in node.inputs.iter().chain(std::iter::once(&node.output)) {
                if sig.index() >= signals.len() {
                    return Err(DfgError::ForeignSignal(sig));
                }
            }
            match node.kind {
                NodeKind::Op(kind) => {
                    if node.inputs.len() != kind.arity() {
                        return Err(DfgError::ArityMismatch {
                            node: node.name.clone(),
                            expected: kind.arity(),
                            got: node.inputs.len(),
                        });
                    }
                }
                NodeKind::Stage { .. } => {
                    if node.inputs.is_empty() || node.inputs.len() > 2 {
                        return Err(DfgError::ArityMismatch {
                            node: node.name.clone(),
                            expected: 2,
                            got: node.inputs.len(),
                        });
                    }
                }
                // A folded loop may consume any number of external
                // signals (including none, when the body only reads
                // loop-carried or constant values).
                NodeKind::LoopBody { .. } => {}
                // A load reads [index, ordering tokens…]; a store reads
                // [index, value, ordering tokens…]. Both must reference
                // a declared array whose bank matches the node kind.
                NodeKind::Load { array, bank } | NodeKind::Store { array, bank } => {
                    let min = if matches!(node.kind, NodeKind::Load { .. }) {
                        1
                    } else {
                        2
                    };
                    if node.inputs.len() < min {
                        return Err(DfgError::ArityMismatch {
                            node: node.name.clone(),
                            expected: min,
                            got: node.inputs.len(),
                        });
                    }
                    let Some(decl) = memory.array(array) else {
                        return Err(DfgError::UnknownArray(array.to_string()));
                    };
                    if decl.bank != bank {
                        return Err(DfgError::UnknownBank(bank.to_string()));
                    }
                }
            }
        }
        // Output back-pointers.
        for (i, node) in nodes.iter().enumerate() {
            let out = &signals[node.output.index()];
            if out.source != SignalSource::Node(NodeId(i as u32)) {
                return Err(DfgError::ForeignSignal(node.output));
            }
        }
        // Dependency adjacency.
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        let mut succs: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            for &input in &node.inputs {
                if let SignalSource::Node(p) = signals[input.index()].source {
                    let id = NodeId(i as u32);
                    if !preds[i].contains(&p) {
                        preds[i].push(p);
                        succs[p.index()].push(id);
                    }
                }
            }
        }
        // Kahn topological sort; detects cycles.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: Vec<NodeId> = indeg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let mut topo = Vec::with_capacity(nodes.len());
        let mut head = 0;
        while head < queue.len() {
            let n = queue[head];
            head += 1;
            topo.push(n);
            for &s in &succs[n.index()] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    queue.push(s);
                }
            }
        }
        if topo.len() != nodes.len() {
            let cyclic: Vec<NodeId> = indeg
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d > 0)
                .map(|(i, _)| NodeId(i as u32))
                .collect();
            return Err(DfgError::Cycle(cyclic));
        }
        // Mutual-exclusion cache (paper §5.1): pairwise `excludes` over
        // the branched nodes only, folded into bitsets so the schedulers'
        // hot probes are O(1) bit tests instead of arm-list walks.
        let branched: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.branch.is_top_level())
            .map(|(i, _)| i)
            .collect();
        let mut mutex_index = vec![u32::MAX; nodes.len()];
        for (compact, &i) in branched.iter().enumerate() {
            mutex_index[i] = compact as u32;
        }
        let mutex_words = branched.len().div_ceil(64);
        let mut mutex_bits = vec![0u64; branched.len() * mutex_words];
        let mut excluders = vec![0u64; nodes.len().div_ceil(64)];
        for (ia, &a) in branched.iter().enumerate() {
            for (ib, &b) in branched.iter().enumerate().skip(ia + 1) {
                if nodes[a].branch.excludes(&nodes[b].branch) {
                    mutex_bits[ia * mutex_words + ib / 64] |= 1 << (ib % 64);
                    mutex_bits[ib * mutex_words + ia / 64] |= 1 << (ia % 64);
                    excluders[a / 64] |= 1 << (a % 64);
                    excluders[b / 64] |= 1 << (b % 64);
                }
            }
        }
        Ok(Dfg {
            name,
            nodes,
            signals,
            loops,
            memory,
            preds,
            succs,
            topo,
            mutex_index,
            mutex_bits,
            mutex_words,
            excluders,
        })
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operation nodes (`l` in the paper's complexity bounds).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of signals (inputs, constants and operation outputs).
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids always come from this graph).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The signal with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn signal(&self, id: SignalId) -> &Signal {
        &self.signals[id.index()]
    }

    /// Iterates over `(id, node)` pairs in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterates over `(id, signal)` pairs in id order.
    pub fn signals(&self) -> impl Iterator<Item = (SignalId, &Signal)> {
        self.signals
            .iter()
            .enumerate()
            .map(|(i, s)| (SignalId(i as u32), s))
    }

    /// All node ids, in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Data-dependency predecessors of `id` (producers of its inputs).
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.index()]
    }

    /// Data-dependency successors of `id` (consumers of its output).
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.index()]
    }

    /// Nodes consuming the given signal.
    pub fn consumers(&self, sig: SignalId) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.inputs.contains(&sig))
            .map(|(id, _)| id)
            .collect()
    }

    /// A precomputed topological order of the nodes.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Looks up a node by behavioural name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes().find(|(_, n)| n.name == name).map(|(id, _)| id)
    }

    /// Looks up a signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signals()
            .find(|(_, s)| s.name == name)
            .map(|(id, _)| id)
    }

    /// The functional-unit classes present in the graph, sorted, with the
    /// number of operations of each class (`N_j` of the paper's redundant
    /// frame rule `current_j = ⌈N_j / cs⌉`).
    pub fn class_counts(&self) -> BTreeMap<FuClass, usize> {
        let mut counts = BTreeMap::new();
        for node in &self.nodes {
            *counts.entry(node.kind.fu_class()).or_insert(0) += 1;
        }
        counts
    }

    /// The loop regions declared in the graph.
    pub fn loop_regions(&self) -> &[LoopRegion] {
        &self.loops
    }

    /// The loop region with the given id.
    pub fn loop_region(&self, id: LoopId) -> Option<&LoopRegion> {
        self.loops.iter().find(|l| l.id == id)
    }

    /// Node ids belonging directly to the given loop region.
    pub fn loop_members(&self, id: LoopId) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.loop_id == Some(id))
            .map(|(id, _)| id)
            .collect()
    }

    /// Whether two nodes are mutually exclusive (paper §5.1) and may
    /// therefore share an FU in the same control step. A precomputed
    /// bitset lookup — O(1), no arm-list comparison.
    pub fn mutually_exclusive(&self, a: NodeId, b: NodeId) -> bool {
        let ia = self.mutex_index[a.index()];
        let ib = self.mutex_index[b.index()];
        if ia == u32::MAX || ib == u32::MAX {
            return false;
        }
        let (ia, ib) = (ia as usize, ib as usize);
        self.mutex_bits[ia * self.mutex_words + ib / 64] >> (ib % 64) & 1 == 1
    }

    /// Whether `id` excludes at least one other node. When this is
    /// `false` (always, for unconditional nodes), an occupied grid cell
    /// can never be shared with `id`, so occupancy probes may skip the
    /// per-occupant check entirely.
    pub fn has_exclusions(&self, id: NodeId) -> bool {
        self.excluders[id.index() / 64] >> (id.index() % 64) & 1 == 1
    }

    /// The memory declarations (banks and arrays; empty for pure
    /// operator graphs).
    pub fn memory(&self) -> &MemoryDecls {
        &self.memory
    }

    /// Whether the graph contains memory accesses or declarations.
    pub fn has_memory(&self) -> bool {
        !self.memory.is_empty()
    }

    /// The declaration of `array`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids always come from this
    /// graph, where every access was validated against the declarations).
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        self.memory.array(id).expect("array id from this graph")
    }

    /// The declaration of `bank`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (see [`Dfg::array`]).
    pub fn bank(&self, id: BankId) -> &BankDecl {
        self.memory.bank(id).expect("bank id from this graph")
    }

    /// The port count of `bank` — the hard per-step access limit.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (see [`Dfg::array`]).
    pub fn bank_ports(&self, id: BankId) -> u32 {
        self.bank(id).ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;
    use hls_celllib::OpKind;

    fn diamond() -> Dfg {
        let mut b = DfgBuilder::new("diamond");
        let x = b.input("x");
        let y = b.input("y");
        let p = b.op("p", OpKind::Mul, &[x, y]).unwrap();
        let q = b.op("q", OpKind::Add, &[x, y]).unwrap();
        let _r = b.op("r", OpKind::Sub, &[p, q]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = diamond();
        let r = g.node_by_name("r").unwrap();
        let p = g.node_by_name("p").unwrap();
        let q = g.node_by_name("q").unwrap();
        assert_eq!(g.preds(r), &[p, q]);
        assert_eq!(g.succs(p), &[r]);
        assert!(g.preds(p).is_empty());
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let g = diamond();
        let pos: Vec<usize> = g
            .node_ids()
            .map(|n| g.topo_order().iter().position(|&t| t == n).unwrap())
            .collect();
        for n in g.node_ids() {
            for &p in g.preds(n) {
                assert!(pos[p.index()] < pos[n.index()]);
            }
        }
    }

    #[test]
    fn class_counts_group_by_operator() {
        let g = diamond();
        let counts = g.class_counts();
        assert_eq!(counts[&FuClass::Op(OpKind::Mul)], 1);
        assert_eq!(counts[&FuClass::Op(OpKind::Add)], 1);
        assert_eq!(counts[&FuClass::Op(OpKind::Sub)], 1);
    }

    #[test]
    fn consumers_finds_all_users() {
        let g = diamond();
        let x = g.signal_by_name("x").unwrap();
        let consumers = g.consumers(x);
        assert_eq!(consumers.len(), 2);
    }

    #[test]
    fn empty_graph_is_rejected() {
        let b = DfgBuilder::new("empty");
        assert_eq!(b.finish().unwrap_err(), DfgError::Empty);
    }

    #[test]
    fn node_and_signal_lookup_by_name() {
        let g = diamond();
        assert!(g.node_by_name("p").is_some());
        assert!(g.node_by_name("zz").is_none());
        assert!(g.signal_by_name("x").is_some());
        assert!(g.signal_by_name("zz").is_none());
    }

    #[test]
    fn mutex_cache_matches_pairwise_excludes() {
        let mut b = DfgBuilder::new("branches");
        let x = b.input("x");
        let y = b.input("y");
        let br = b.begin_branch();
        b.enter_arm(br, 0);
        b.op("t", OpKind::Add, &[x, y]).unwrap();
        b.exit_arm();
        b.enter_arm(br, 1);
        b.op("e", OpKind::Add, &[x, y]).unwrap();
        b.exit_arm();
        b.op("u", OpKind::Add, &[x, y]).unwrap();
        let g = b.finish().unwrap();
        for a in g.node_ids() {
            for c in g.node_ids() {
                assert_eq!(
                    g.mutually_exclusive(a, c),
                    g.node(a).excludes(g.node(c)),
                    "cache disagrees for ({a}, {c})"
                );
            }
        }
        let t = g.node_by_name("t").unwrap();
        let u = g.node_by_name("u").unwrap();
        assert!(g.has_exclusions(t));
        assert!(!g.has_exclusions(u));
        assert_eq!(NodeId::from_index(t.index()), t);
    }

    #[test]
    fn signal_count_includes_inputs_and_outputs() {
        let g = diamond();
        // 2 inputs + 3 op outputs.
        assert_eq!(g.signal_count(), 5);
        assert_eq!(g.node_count(), 3);
    }
}
