//! Data-flow-graph (DFG) substrate for the `moveframe-hls` workspace.
//!
//! A behavioural description enters high-level synthesis as a data-flow
//! graph: nodes are operations, edges are value dependencies carried by
//! named *signals*. This crate provides
//!
//! * the graph representation ([`Dfg`], [`Node`], [`Signal`]) including
//!   branch (mutual-exclusion) paths, collapsed loop bodies and
//!   structural-pipeline stage nodes,
//! * a fluent [`DfgBuilder`],
//! * a small textual format ([`parse_dfg`]) and DOT export
//!   ([`Dfg::to_dot`]),
//! * graph analyses (topological order, critical path, operator mix,
//!   mutual exclusivity), and
//! * the paper's preprocessing transformations (§5 of Nourani &
//!   Papachristou, DAC 1992): branch-duplicate pruning, structural
//!   pipeline stage expansion, instance duplication for functional
//!   pipelining, and loop folding.
//!
//! ```
//! use hls_celllib::OpKind;
//! use hls_dfg::DfgBuilder;
//!
//! # fn main() -> Result<(), hls_dfg::DfgError> {
//! let mut b = DfgBuilder::new("tiny");
//! let x = b.input("x");
//! let y = b.input("y");
//! let p = b.op("p", OpKind::Mul, &[x, y])?;
//! let _q = b.op("q", OpKind::Add, &[p, x])?;
//! let dfg = b.finish()?;
//! assert_eq!(dfg.node_count(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod builder;
mod dot;
mod error;
mod graph;
mod memory;
mod node;
mod parse;
mod signal;
pub mod transform;
mod write;

pub use analysis::{CriticalPath, OpMix};
pub use builder::DfgBuilder;
pub use error::DfgError;
pub use graph::{Dfg, LoopRegion};
pub use memory::{ArrayDecl, ArrayId, BankDecl, BankId, MemoryDecls};
pub use node::{FuClass, LoopId, Node, NodeId, NodeKind};
pub use parse::parse_dfg;
pub use signal::{BranchArm, BranchId, BranchPath, Signal, SignalId, SignalSource};
