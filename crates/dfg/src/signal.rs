//! Signals (values) and branch paths.

use std::fmt;

use crate::NodeId;

/// Identifier of a [`Signal`] within one [`crate::Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Where a signal's value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalSource {
    /// A primary input of the behaviour (available at step 0 and stable).
    PrimaryInput,
    /// A compile-time constant.
    Constant(i64),
    /// The output of an operation node.
    Node(NodeId),
}

impl SignalSource {
    /// The producing node, when the signal is an operation output.
    pub fn node(self) -> Option<NodeId> {
        match self {
            SignalSource::Node(n) => Some(n),
            _ => None,
        }
    }
}

/// A named value flowing along data-dependency edges.
///
/// MFSA annotates "the input signals (input variables) of each operation,
/// together with its name in the DFG" (paper §4.1) because signal identity
/// drives multiplexer sharing and register life spans; signals are
/// therefore first-class here rather than anonymous edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signal {
    pub(crate) name: String,
    pub(crate) source: SignalSource,
}

impl Signal {
    /// The signal's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Where the value comes from.
    pub fn source(&self) -> SignalSource {
        self.source
    }

    /// Whether the value is live from step 0 (input or constant) rather
    /// than produced by an operation.
    pub fn is_external(&self) -> bool {
        !matches!(self.source, SignalSource::Node(_))
    }
}

/// Identifier of one conditional construct (an `if`/`case`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchId(pub(crate) u32);

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// One arm of a conditional: `(branch, arm index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchArm {
    /// The conditional this arm belongs to.
    pub branch: BranchId,
    /// The arm index within the conditional (0 = then, 1 = else, or a
    /// case label position).
    pub arm: u32,
}

impl fmt::Display for BranchArm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.branch, self.arm)
    }
}

/// The (possibly nested) conditional context of a node: the list of arms
/// enclosing it, outermost first.
///
/// Two nodes are *mutually exclusive* — they "can be executed on the same
/// type of FU and scheduled into the same control step without increasing
/// the required number of FU's" (paper §5.1) — exactly when their paths
/// contain different arms of the same branch:
///
/// ```
/// use hls_dfg::{BranchArm, BranchId, BranchPath};
///
/// let b = BranchId::new(0);
/// let then_arm = BranchPath::from_arms([BranchArm { branch: b, arm: 0 }]);
/// let else_arm = BranchPath::from_arms([BranchArm { branch: b, arm: 1 }]);
/// assert!(then_arm.excludes(&else_arm));
/// assert!(!then_arm.excludes(&then_arm));
/// assert!(!then_arm.excludes(&BranchPath::top_level()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BranchPath {
    arms: Vec<BranchArm>,
}

impl BranchId {
    /// Creates a branch id (used when constructing paths by hand; the
    /// builder allocates ids automatically).
    pub fn new(raw: u32) -> Self {
        BranchId(raw)
    }

    /// The raw id (used by the text-format writer).
    pub fn get(self) -> u32 {
        self.0
    }
}

impl BranchPath {
    /// The unconditional (top-level) path.
    pub fn top_level() -> Self {
        BranchPath::default()
    }

    /// Builds a path from arms, outermost first.
    pub fn from_arms<I>(arms: I) -> Self
    where
        I: IntoIterator<Item = BranchArm>,
    {
        BranchPath {
            arms: arms.into_iter().collect(),
        }
    }

    /// The enclosing arms, outermost first.
    pub fn arms(&self) -> &[BranchArm] {
        &self.arms
    }

    /// Whether the node is unconditional.
    pub fn is_top_level(&self) -> bool {
        self.arms.is_empty()
    }

    /// Returns a child path extended by one more arm.
    pub fn child(&self, arm: BranchArm) -> BranchPath {
        let mut arms = self.arms.clone();
        arms.push(arm);
        BranchPath { arms }
    }

    /// Whether two paths are mutually exclusive: they take *different*
    /// arms of *some common* branch.
    pub fn excludes(&self, other: &BranchPath) -> bool {
        self.arms.iter().any(|a| {
            other
                .arms
                .iter()
                .any(|b| a.branch == b.branch && a.arm != b.arm)
        })
    }
}

impl fmt::Display for BranchPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.arms.is_empty() {
            return f.write_str("top");
        }
        for (i, arm) in self.arms.iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            write!(f, "{arm}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arm(branch: u32, arm: u32) -> BranchArm {
        BranchArm {
            branch: BranchId(branch),
            arm,
        }
    }

    #[test]
    fn sibling_arms_exclude() {
        let a = BranchPath::from_arms([arm(0, 0)]);
        let b = BranchPath::from_arms([arm(0, 1)]);
        assert!(a.excludes(&b));
        assert!(b.excludes(&a));
    }

    #[test]
    fn same_arm_does_not_exclude() {
        let a = BranchPath::from_arms([arm(0, 0)]);
        assert!(!a.excludes(&a.clone()));
    }

    #[test]
    fn different_branches_do_not_exclude() {
        let a = BranchPath::from_arms([arm(0, 0)]);
        let b = BranchPath::from_arms([arm(1, 1)]);
        assert!(!a.excludes(&b));
    }

    #[test]
    fn nested_paths_exclude_via_outer_branch() {
        let a = BranchPath::from_arms([arm(0, 0), arm(1, 0)]);
        let b = BranchPath::from_arms([arm(0, 1), arm(2, 0)]);
        assert!(a.excludes(&b));
    }

    #[test]
    fn nested_same_outer_different_inner() {
        let a = BranchPath::from_arms([arm(0, 0), arm(1, 0)]);
        let b = BranchPath::from_arms([arm(0, 0), arm(1, 1)]);
        assert!(a.excludes(&b));
    }

    #[test]
    fn top_level_never_excludes() {
        let top = BranchPath::top_level();
        let a = BranchPath::from_arms([arm(0, 0)]);
        assert!(!top.excludes(&a));
        assert!(!a.excludes(&top));
        assert!(top.is_top_level());
    }

    #[test]
    fn child_extends_path() {
        let a = BranchPath::top_level().child(arm(3, 1));
        assert_eq!(a.arms(), &[arm(3, 1)]);
        assert_eq!(a.to_string(), "b3.1");
    }

    #[test]
    fn display_of_top_level() {
        assert_eq!(BranchPath::top_level().to_string(), "top");
    }
}
