//! Arrays, memory banks and their declarations.
//!
//! Memory-aware synthesis (after Corre et al.'s memory-aware HLS work)
//! models each array as data living in a *bank* with a fixed number of
//! access *ports*. Loads and stores become schedulable operations whose
//! functional-unit class is the bank ([`crate::FuClass::Mem`]); the
//! scheduler then treats the port count as a hard per-step concurrency
//! limit, exactly like a user resource constraint on an operator class.

use std::fmt;

/// Identifier of an array declared in one [`crate::Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub(crate) u32);

impl ArrayId {
    /// Creates an array id (harness use; builders allocate ids).
    pub fn new(raw: u32) -> Self {
        ArrayId(raw)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Identifier of a memory bank declared in one [`crate::Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId(pub(crate) u32);

impl BankId {
    /// Creates a bank id (harness use; builders allocate ids).
    pub fn new(raw: u32) -> Self {
        BankId(raw)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A declared memory bank: a physical memory with `ports` concurrent
/// access ports. The port count is the hard per-control-step limit on
/// loads plus stores touching the bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankDecl {
    pub(crate) id: BankId,
    pub(crate) name: String,
    pub(crate) ports: u32,
}

impl BankDecl {
    /// The bank id.
    pub fn id(&self) -> BankId {
        self.id
    }

    /// The bank's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of concurrent access ports (≥ 1).
    pub fn ports(&self) -> u32 {
        self.ports
    }
}

/// A declared array: `size` words bound to one bank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    pub(crate) id: ArrayId,
    pub(crate) name: String,
    pub(crate) size: u32,
    pub(crate) bank: BankId,
}

impl ArrayDecl {
    /// The array id.
    pub fn id(&self) -> ArrayId {
        self.id
    }

    /// The array's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of elements (≥ 1).
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The bank holding this array.
    pub fn bank(&self) -> BankId {
        self.bank
    }
}

/// All memory declarations of a graph: banks and the arrays bound to
/// them. Empty for pure operator DFGs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryDecls {
    pub(crate) banks: Vec<BankDecl>,
    pub(crate) arrays: Vec<ArrayDecl>,
}

impl MemoryDecls {
    /// Whether any array is declared.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty() && self.banks.is_empty()
    }

    /// Declared banks, in id order.
    pub fn banks(&self) -> &[BankDecl] {
        &self.banks
    }

    /// Declared arrays, in id order.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// The bank with the given id, if declared.
    pub fn bank(&self, id: BankId) -> Option<&BankDecl> {
        self.banks.get(id.index())
    }

    /// The array with the given id, if declared.
    pub fn array(&self, id: ArrayId) -> Option<&ArrayDecl> {
        self.arrays.get(id.index())
    }

    /// Looks up a bank by name.
    pub fn bank_by_name(&self, name: &str) -> Option<&BankDecl> {
        self.banks.iter().find(|b| b.name == name)
    }

    /// Looks up an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Arrays bound to `bank`, in id order.
    pub fn arrays_in_bank(&self, bank: BankId) -> impl Iterator<Item = &ArrayDecl> {
        self.arrays.iter().filter(move |a| a.bank == bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_and_id() {
        let decls = MemoryDecls {
            banks: vec![BankDecl {
                id: BankId(0),
                name: "bank0".into(),
                ports: 2,
            }],
            arrays: vec![ArrayDecl {
                id: ArrayId(0),
                name: "a".into(),
                size: 16,
                bank: BankId(0),
            }],
        };
        assert!(!decls.is_empty());
        assert_eq!(decls.bank_by_name("bank0").unwrap().ports(), 2);
        assert_eq!(decls.array_by_name("a").unwrap().size(), 16);
        assert_eq!(decls.array(ArrayId(0)).unwrap().bank(), BankId(0));
        assert_eq!(decls.arrays_in_bank(BankId(0)).count(), 1);
        assert!(decls.bank_by_name("nope").is_none());
        assert_eq!(ArrayId(3).to_string(), "a3");
        assert_eq!(BankId(1).to_string(), "b1");
    }

    #[test]
    fn default_is_empty() {
        assert!(MemoryDecls::default().is_empty());
    }
}
