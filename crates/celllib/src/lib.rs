//! Cell-library substrate for the `moveframe-hls` workspace.
//!
//! High-level synthesis needs a *cost model*: which hardware module can
//! perform which operation, how large each module is, how expensive
//! multiplexers and registers are, and how long each operation takes.
//! The DAC-1992 paper this workspace reproduces (Nourani & Papachristou,
//! *Move Frame Scheduling and Mixed Scheduling-Allocation*) evaluates its
//! MFSA algorithm against a proprietary NCR ASIC data book; this crate
//! provides an equivalent, fully synthetic library with the same *shape*
//! (multipliers dominate, multifunction ALUs are cheaper than the sum of
//! their parts, multiplexer area is concave in the input count).
//!
//! The main entry point is [`Library`]:
//!
//! ```
//! use hls_celllib::{Library, OpKind};
//!
//! # fn main() -> Result<(), hls_celllib::LibraryError> {
//! let lib = Library::ncr_like();
//! let adder = lib.fu_area(OpKind::Add)?;
//! let mult = lib.fu_area(OpKind::Mul)?;
//! assert!(mult > adder);
//! // Multifunction ALUs that can perform an addition:
//! assert!(lib.alus_supporting(OpKind::Add).count() >= 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alu;
mod area;
mod error;
mod library;
mod mux;
mod op;
mod text;
mod timing;

pub use alu::{alu_merged_area, AluKind};
pub use area::Area;
pub use error::LibraryError;
pub use library::{Library, LibraryBuilder};
pub use mux::MuxCost;
pub use op::{OpKind, ParseOpKindError};
pub use text::parse_library;
pub use timing::{ClockPeriod, Delay, OpTiming, TimingSpec};
