//! Silicon area, the cost unit of the whole workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Silicon area in square microns (µm²).
///
/// All costs reported by MFSA and the RTL data-path builder are expressed
/// in this unit, mirroring the paper's Table 2 ("Overall cost of RTL
/// designs (in micron square) is based on a NCR library").
///
/// `Area` is a saturating, unsigned quantity: subtracting a larger area
/// from a smaller one yields zero rather than wrapping, which is the
/// behaviour wanted when computing incremental costs (`after − before`).
///
/// ```
/// use hls_celllib::Area;
///
/// let alu = Area::new(2330);
/// let total: Area = [alu, alu, Area::new(353)].into_iter().sum();
/// assert_eq!(total.as_u64(), 5013);
/// assert_eq!(Area::new(10) - Area::new(25), Area::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Area(u64);

impl Area {
    /// The zero area.
    pub const ZERO: Area = Area(0);

    /// Creates an area of `um2` square microns.
    pub const fn new(um2: u64) -> Self {
        Area(um2)
    }

    /// The raw value in µm².
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating difference, used for incremental (`after - before`)
    /// cost terms that must never go negative.
    pub fn saturating_sub(self, rhs: Area) -> Area {
        Area(self.0.saturating_sub(rhs.0))
    }

    /// Signed difference in µm², used when an incremental term may be a
    /// saving (e.g. interconnect sharing reducing a mux).
    pub fn signed_diff(self, rhs: Area) -> i64 {
        self.0 as i64 - rhs.0 as i64
    }
}

impl Add for Area {
    type Output = Area;

    fn add(self, rhs: Area) -> Area {
        Area(self.0 + rhs.0)
    }
}

impl AddAssign for Area {
    fn add_assign(&mut self, rhs: Area) {
        self.0 += rhs.0;
    }
}

impl Sub for Area {
    type Output = Area;

    /// Saturating subtraction; see the type-level docs.
    fn sub(self, rhs: Area) -> Area {
        self.saturating_sub(rhs)
    }
}

impl Mul<u64> for Area {
    type Output = Area;

    fn mul(self, rhs: u64) -> Area {
        Area(self.0 * rhs)
    }
}

impl Sum for Area {
    fn sum<I: Iterator<Item = Area>>(iter: I) -> Area {
        iter.fold(Area::ZERO, |acc, a| acc + a)
    }
}

impl fmt::Display for Area {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} um^2", self.0)
    }
}

impl From<u64> for Area {
    fn from(um2: u64) -> Area {
        Area(um2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Area::new(3) + Area::new(4), Area::new(7));
        assert_eq!(Area::new(3) * 4, Area::new(12));
        assert_eq!(Area::new(9) - Area::new(4), Area::new(5));
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(Area::new(4) - Area::new(9), Area::ZERO);
    }

    #[test]
    fn signed_diff_may_be_negative() {
        assert_eq!(Area::new(4).signed_diff(Area::new(9)), -5);
        assert_eq!(Area::new(9).signed_diff(Area::new(4)), 5);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Area = (1..=4).map(Area::new).sum();
        assert_eq!(total, Area::new(10));
    }

    #[test]
    fn display_mentions_unit() {
        assert_eq!(Area::new(42).to_string(), "42 um^2");
    }
}
