//! Operation timing: cycle counts and propagation delays.

use std::collections::BTreeMap;
use std::fmt;

use crate::OpKind;

/// A propagation delay in abstract time units (nominally nanoseconds).
///
/// Chaining (paper §5.4) schedules several data-dependent operations into
/// one control step when their accumulated delay fits within the clock
/// period; both quantities use this unit.
///
/// ```
/// use hls_celllib::Delay;
///
/// let d = Delay::new(35) + Delay::new(13);
/// assert_eq!(d, Delay::new(48));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Delay(u32);

impl Delay {
    /// The zero delay.
    pub const ZERO: Delay = Delay(0);

    /// Creates a delay of `ns` time units.
    pub const fn new(ns: u32) -> Self {
        Delay(ns)
    }

    /// The raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl std::ops::Add for Delay {
    type Output = Delay;

    fn add(self, rhs: Delay) -> Delay {
        Delay(self.0 + rhs.0)
    }
}

impl fmt::Display for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ns", self.0)
    }
}

/// The control-step clock period, in the same unit as [`Delay`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClockPeriod(u32);

impl ClockPeriod {
    /// Creates a clock period of `ns` time units.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is zero.
    pub const fn new(ns: u32) -> Self {
        assert!(ns > 0, "clock period must be positive");
        ClockPeriod(ns)
    }

    /// The raw value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Whether an operation of delay `d` starting at offset `start`
    /// within a control step still finishes inside the step.
    pub fn fits(self, start: Delay, d: Delay) -> bool {
        start.as_u32() + d.as_u32() <= self.0
    }
}

impl fmt::Display for ClockPeriod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ns", self.0)
    }
}

/// Timing of a single operation kind: how many control steps it occupies
/// and its combinational delay (for chaining).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpTiming {
    /// Number of control steps (≥ 1). Multi-cycle operations (paper §5.3)
    /// occupy `cycles` *consecutive* control steps.
    pub cycles: u8,
    /// Combinational propagation delay of the operation.
    pub delay: Delay,
}

impl OpTiming {
    /// Single-cycle timing with the given delay.
    pub const fn single_cycle(delay: Delay) -> Self {
        OpTiming { cycles: 1, delay }
    }

    /// Multi-cycle timing.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub const fn multi_cycle(cycles: u8, delay: Delay) -> Self {
        assert!(cycles >= 1, "an operation takes at least one cycle");
        OpTiming { cycles, delay }
    }
}

impl Default for OpTiming {
    fn default() -> Self {
        OpTiming::single_cycle(Delay::ZERO)
    }
}

/// Per-operation-kind timing specification for one synthesis run.
///
/// The paper's experiments use two profiles: "1" — all operations take
/// one cycle — and "2" — only multiplication takes two cycles
/// (Table 1, column "special feature"). Both are provided as
/// constructors; arbitrary profiles can be built with [`TimingSpec::set`].
///
/// ```
/// use hls_celllib::{OpKind, TimingSpec};
///
/// let spec = TimingSpec::two_cycle_multiply();
/// assert_eq!(spec.cycles(OpKind::Mul), 2);
/// assert_eq!(spec.cycles(OpKind::Add), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimingSpec {
    overrides: BTreeMap<OpKind, OpTiming>,
}

impl TimingSpec {
    /// All operations single-cycle with zero delay (profile "1").
    pub fn uniform_single_cycle() -> Self {
        TimingSpec::default()
    }

    /// Profile "2" of the paper: multiplication takes two cycles,
    /// everything else one.
    pub fn two_cycle_multiply() -> Self {
        let mut spec = TimingSpec::default();
        spec.set(OpKind::Mul, OpTiming::multi_cycle(2, Delay::ZERO));
        spec
    }

    /// A chaining-oriented profile with representative combinational
    /// delays (adder ≈ 48, subtracter ≈ 48, multiplier ≈ 163,
    /// comparator ≈ 30, logic ≈ 12 time units).
    pub fn with_delays() -> Self {
        let mut spec = TimingSpec::default();
        let table = [
            (OpKind::Add, 48),
            (OpKind::Sub, 48),
            (OpKind::Mul, 163),
            (OpKind::Div, 196),
            (OpKind::And, 12),
            (OpKind::Or, 12),
            (OpKind::Xor, 14),
            (OpKind::Not, 6),
            (OpKind::Eq, 30),
            (OpKind::Ne, 30),
            (OpKind::Lt, 36),
            (OpKind::Gt, 36),
            (OpKind::Shl, 22),
            (OpKind::Shr, 22),
            (OpKind::Inc, 33),
            (OpKind::Dec, 33),
            (OpKind::Neg, 35),
        ];
        for (kind, ns) in table {
            spec.set(kind, OpTiming::single_cycle(Delay::new(ns)));
        }
        spec
    }

    /// Overrides the timing of `kind`.
    pub fn set(&mut self, kind: OpKind, timing: OpTiming) -> &mut Self {
        self.overrides.insert(kind, timing);
        self
    }

    /// Timing of `kind` (default: single cycle, zero delay).
    pub fn timing(&self, kind: OpKind) -> OpTiming {
        self.overrides.get(&kind).copied().unwrap_or_default()
    }

    /// Cycle count of `kind`.
    pub fn cycles(&self, kind: OpKind) -> u8 {
        self.timing(kind).cycles
    }

    /// Combinational delay of `kind`.
    pub fn delay(&self, kind: OpKind) -> Delay {
        self.timing(kind).delay
    }

    /// The largest cycle count over all kinds in the spec (≥ 1).
    pub fn max_cycles(&self) -> u8 {
        self.overrides.values().map(|t| t.cycles).max().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_cycle_zero_delay() {
        let spec = TimingSpec::uniform_single_cycle();
        for kind in OpKind::ALL {
            assert_eq!(spec.cycles(kind), 1);
            assert_eq!(spec.delay(kind), Delay::ZERO);
        }
    }

    #[test]
    fn two_cycle_multiply_profile() {
        let spec = TimingSpec::two_cycle_multiply();
        assert_eq!(spec.cycles(OpKind::Mul), 2);
        assert_eq!(spec.cycles(OpKind::Add), 1);
        assert_eq!(spec.max_cycles(), 2);
    }

    #[test]
    fn set_overrides_timing() {
        let mut spec = TimingSpec::default();
        spec.set(OpKind::Add, OpTiming::multi_cycle(3, Delay::new(7)));
        assert_eq!(spec.cycles(OpKind::Add), 3);
        assert_eq!(spec.delay(OpKind::Add), Delay::new(7));
    }

    #[test]
    fn clock_period_fits() {
        let t = ClockPeriod::new(100);
        assert!(t.fits(Delay::new(40), Delay::new(60)));
        assert!(!t.fits(Delay::new(41), Delay::new(60)));
    }

    #[test]
    fn delay_profile_has_slow_multiplier() {
        let spec = TimingSpec::with_delays();
        assert!(spec.delay(OpKind::Mul) > spec.delay(OpKind::Add));
        assert!(spec.delay(OpKind::Add) > spec.delay(OpKind::And));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clock_period_panics() {
        let _ = ClockPeriod::new(0);
    }
}
