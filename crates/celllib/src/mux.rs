//! Multiplexer cost curve.

use crate::Area;

/// Area of an `r`-input, 1-output multiplexer as a function of `r`.
///
/// The paper (§4.1) stresses that "the cost of a multiplexer with `r` data
/// inputs … is not a linear function of `r`"; the Liapunov term
/// `f_MUX` depends on the *marginal* cost of widening a mux by one input,
/// and the constant `C` of `f_TIME` depends on the *largest* such marginal
/// cost (`f_MUX^max = 2·max{Cost(MUX_{r+1}) − Cost(MUX_r)}`).
///
/// The curve is an explicit table for small `r` plus a constant marginal
/// cost beyond the table, which makes it concave as long as the table
/// increments are non-increasing:
///
/// ```
/// use hls_celllib::{Area, MuxCost};
///
/// let mux = MuxCost::ncr_like();
/// assert_eq!(mux.cost(0), Area::ZERO);  // no mux needed
/// assert_eq!(mux.cost(1), Area::ZERO);  // direct wire
/// assert!(mux.cost(2) > Area::ZERO);
/// assert!(mux.cost(4) < mux.cost(2) * 2); // concave: sharing pays
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxCost {
    /// `table[r]` is the area of an `r`-input mux, for `r < table.len()`.
    /// `table[0]` and `table[1]` must be zero.
    table: Vec<Area>,
    /// Marginal area per input beyond the end of the table.
    per_extra_input: Area,
}

impl MuxCost {
    /// Creates a cost curve from an explicit table and a tail marginal
    /// cost.
    ///
    /// `table[r]` is the area of an `r`-input mux; entries 0 and 1 are
    /// forced to zero (a 0- or 1-input "mux" is a plain wire). For
    /// `r >= table.len()` the cost grows by `per_extra_input` per input.
    ///
    /// # Panics
    ///
    /// Panics if the table is not monotonically non-decreasing, since a
    /// wider mux can never be smaller than a narrower one.
    pub fn from_table<I>(table: I, per_extra_input: Area) -> Self
    where
        I: IntoIterator<Item = Area>,
    {
        let mut table: Vec<Area> = table.into_iter().collect();
        if table.len() < 2 {
            table.resize(2, Area::ZERO);
        }
        table[0] = Area::ZERO;
        table[1] = Area::ZERO;
        assert!(
            table.windows(2).all(|w| w[0] <= w[1]),
            "mux cost table must be non-decreasing"
        );
        MuxCost {
            table,
            per_extra_input,
        }
    }

    /// The synthetic NCR-1989-like curve used by [`crate::Library::ncr_like`].
    ///
    /// 2-input: 353 µm², 3-input: 497, 4-input: 640, 5-input: 778,
    /// 6-input: 913, then +130 µm² per extra input. Marginal costs are
    /// non-increasing (353, 144, 143, 138, 135, 130), so sharing inputs
    /// is always rewarded.
    pub fn ncr_like() -> Self {
        MuxCost::from_table(
            [0, 0, 353, 497, 640, 778, 913].map(Area::new),
            Area::new(130),
        )
    }

    /// Area of an `inputs`-input multiplexer.
    pub fn cost(&self, inputs: usize) -> Area {
        if let Some(&a) = self.table.get(inputs) {
            return a;
        }
        let last = *self.table.last().expect("table has >= 2 entries");
        let extra = (inputs - (self.table.len() - 1)) as u64;
        last + self.per_extra_input * extra
    }

    /// Marginal area of widening an `inputs`-input mux by one input.
    pub fn marginal(&self, inputs: usize) -> Area {
        self.cost(inputs + 1) - self.cost(inputs)
    }

    /// The largest marginal cost over all widths, `max_r {Cost(MUX_{r+1}) −
    /// Cost(MUX_r)}`; the paper uses `2×` this value as `f_MUX^max` when
    /// deriving the `f_TIME` constant `C`.
    pub fn max_marginal(&self) -> Area {
        let table_max = (0..self.table.len())
            .map(|r| self.marginal(r))
            .max()
            .unwrap_or(Area::ZERO);
        table_max.max(self.per_extra_input)
    }
}

impl Default for MuxCost {
    fn default() -> Self {
        MuxCost::ncr_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_inputs_are_free() {
        let mux = MuxCost::ncr_like();
        assert_eq!(mux.cost(0), Area::ZERO);
        assert_eq!(mux.cost(1), Area::ZERO);
    }

    #[test]
    fn table_then_linear_tail() {
        let mux = MuxCost::from_table([0, 0, 100, 150].map(Area::new), Area::new(40));
        assert_eq!(mux.cost(2), Area::new(100));
        assert_eq!(mux.cost(3), Area::new(150));
        assert_eq!(mux.cost(4), Area::new(190));
        assert_eq!(mux.cost(6), Area::new(270));
    }

    #[test]
    fn marginal_matches_cost_differences() {
        let mux = MuxCost::ncr_like();
        for r in 0..10 {
            assert_eq!(mux.marginal(r), mux.cost(r + 1) - mux.cost(r));
        }
    }

    #[test]
    fn max_marginal_is_first_real_input_for_ncr_like() {
        let mux = MuxCost::ncr_like();
        assert_eq!(mux.max_marginal(), Area::new(353));
    }

    #[test]
    fn ncr_like_curve_is_concave() {
        let mux = MuxCost::ncr_like();
        for r in 2..12 {
            assert!(
                mux.marginal(r + 1) <= mux.marginal(r),
                "marginal cost must not increase at width {r}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_table_panics() {
        let _ = MuxCost::from_table([0, 0, 100, 90].map(Area::new), Area::new(10));
    }

    #[test]
    fn short_table_is_padded() {
        let mux = MuxCost::from_table([].map(Area::new), Area::new(10));
        assert_eq!(mux.cost(1), Area::ZERO);
        assert_eq!(mux.cost(2), Area::new(10));
    }
}
