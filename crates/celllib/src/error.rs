//! Error type for library queries.

use std::fmt;

use crate::OpKind;

/// Error returned by [`crate::Library`] queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LibraryError {
    /// No single-function unit in the library performs this operation.
    UnsupportedOp(OpKind),
    /// No ALU kind in the library performs this operation.
    NoAluFor(OpKind),
    /// Two ALU kinds in the library share the same name.
    DuplicateAluName(String),
    /// Text-format parse error at the given 1-based line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::UnsupportedOp(op) => {
                write!(f, "no functional unit in the library performs `{op}`")
            }
            LibraryError::NoAluFor(op) => {
                write!(f, "no ALU kind in the library performs `{op}`")
            }
            LibraryError::DuplicateAluName(name) => {
                write!(f, "duplicate ALU kind name `{name}` in the library")
            }
            LibraryError::Parse { line, message } => {
                write!(f, "library parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for LibraryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = LibraryError::UnsupportedOp(OpKind::Div);
        assert!(err.to_string().contains('/'));
        let err = LibraryError::DuplicateAluName("alu0".into());
        assert!(err.to_string().contains("alu0"));
    }
}
