//! The cell library: every cost the synthesis flow may query.

use std::collections::BTreeMap;

use crate::alu::alu_merged_area;
use crate::{AluKind, Area, LibraryError, MuxCost, OpKind};

/// A complete cell library: single-function unit areas (for MFS-style
/// scheduling and as merge ingredients), multifunction ALU kinds (for
/// MFSA), the multiplexer cost curve and the register area.
///
/// The paper's MFSA reads "the cell library (which may be restricted to
/// some specific types)" from the user (§6); [`Library::ncr_like`] is the
/// synthetic stand-in for the NCR 1989 ASIC data book, and
/// [`LibraryBuilder`] constructs restricted or custom libraries.
///
/// ```
/// use hls_celllib::{Library, OpKind};
///
/// # fn main() -> Result<(), hls_celllib::LibraryError> {
/// let lib = Library::ncr_like();
/// // Every ALU kind returned supports the requested op:
/// for alu in lib.alus_supporting(OpKind::Sub) {
///     assert!(alu.supports(OpKind::Sub));
/// }
/// // f_ALU^max of the Liapunov function is the largest ALU area:
/// assert!(lib.max_alu_area() >= lib.fu_area(OpKind::Mul)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    name: String,
    fu_areas: BTreeMap<OpKind, Area>,
    alus: Vec<AluKind>,
    mux: MuxCost,
    register_area: Area,
}

impl Library {
    /// The synthetic NCR-1989-like default library (see `DESIGN.md` for
    /// the substitution rationale). 16-bit datapath flavour: multiplier
    /// 19 800 µm², adder/subtracter 2 330, comparators ≈ 1 500, logic
    /// ≈ 900, register 1 230; a curated set of multifunction ALUs whose
    /// areas follow the max + 15 % merge rule.
    pub fn ncr_like() -> Self {
        let mut b = LibraryBuilder::new("ncr-like");
        let areas = [
            (OpKind::Add, 2330),
            (OpKind::Sub, 2330),
            (OpKind::Mul, 19800),
            (OpKind::Div, 26400),
            (OpKind::And, 910),
            (OpKind::Or, 910),
            (OpKind::Xor, 940),
            (OpKind::Not, 480),
            (OpKind::Eq, 1450),
            (OpKind::Ne, 1450),
            (OpKind::Lt, 1560),
            (OpKind::Gt, 1560),
            (OpKind::Shl, 2980),
            (OpKind::Shr, 2980),
            (OpKind::Inc, 1190),
            (OpKind::Dec, 1190),
            (OpKind::Neg, 1250),
        ];
        for (kind, um2) in areas {
            b.fu(kind, Area::new(um2));
        }
        // Single-function ALUs for every operator.
        for (kind, _) in areas {
            b.single_alu(kind);
        }
        // Curated multifunction combinations (areas via the merge rule).
        let combos: &[&[OpKind]] = &[
            &[OpKind::Add, OpKind::Sub],
            &[OpKind::Add, OpKind::Gt],
            &[OpKind::Add, OpKind::Sub, OpKind::Gt],
            &[OpKind::Add, OpKind::Sub, OpKind::Lt],
            &[OpKind::Add, OpKind::Sub, OpKind::Mul],
            &[OpKind::Add, OpKind::Mul],
            &[OpKind::Add, OpKind::Sub, OpKind::And, OpKind::Or],
            &[OpKind::And, OpKind::Or],
            &[OpKind::And, OpKind::Or, OpKind::Xor, OpKind::Not],
            &[OpKind::Eq, OpKind::Ne],
            &[OpKind::Lt, OpKind::Gt],
            &[OpKind::Add, OpKind::Eq],
            &[OpKind::Add, OpKind::Sub, OpKind::Gt, OpKind::Ne],
            &[OpKind::Add, OpKind::Sub, OpKind::Eq, OpKind::Gt],
            &[OpKind::Mul, OpKind::Add, OpKind::Or],
            &[OpKind::Mul, OpKind::Or],
            &[OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Gt],
            &[OpKind::Inc, OpKind::Dec],
            &[OpKind::Add, OpKind::Inc],
            &[OpKind::Add, OpKind::Sub, OpKind::Inc, OpKind::Dec],
        ];
        for ops in combos {
            b.merged_alu(ops.iter().copied());
        }
        b.register(Area::new(1230));
        b.mux(MuxCost::ncr_like());
        b.build().expect("the built-in library is consistent")
    }

    /// The library's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn set_name(&mut self, name: String) {
        self.name = name;
    }

    /// Area of the single-function unit for `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::UnsupportedOp`] when the library has no
    /// single-function unit for `kind`.
    pub fn fu_area(&self, kind: OpKind) -> Result<Area, LibraryError> {
        self.fu_areas
            .get(&kind)
            .copied()
            .ok_or(LibraryError::UnsupportedOp(kind))
    }

    /// All ALU kinds in the library, in declaration order.
    pub fn alus(&self) -> &[AluKind] {
        &self.alus
    }

    /// The ALU kinds able to perform `op` — MFSA's step-4 candidate set
    /// ("determine all ALU's … capable of performing operation Oi").
    pub fn alus_supporting(&self, op: OpKind) -> impl Iterator<Item = &AluKind> {
        self.alus.iter().filter(move |a| a.supports(op))
    }

    /// Looks up an ALU kind by name.
    pub fn alu_by_name(&self, name: &str) -> Option<&AluKind> {
        self.alus.iter().find(|a| a.name() == name)
    }

    /// The largest ALU area — `f_ALU^max` in the Liapunov constant
    /// derivation (paper §4.1).
    pub fn max_alu_area(&self) -> Area {
        self.alus
            .iter()
            .map(AluKind::area)
            .max()
            .unwrap_or(Area::ZERO)
    }

    /// The multiplexer cost curve.
    pub fn mux(&self) -> &MuxCost {
        &self.mux
    }

    /// Area of one register — `Cost(REG)` in `f_REG`.
    pub fn register_area(&self) -> Area {
        self.register_area
    }

    /// `f_REG^max = 2·Cost(REG)` (paper §4.1: at most two new registers
    /// per operation since operations have at most two inputs).
    pub fn max_reg_term(&self) -> Area {
        self.register_area * 2
    }

    /// `f_MUX^max = 2·max_r{Cost(MUX_{r+1}) − Cost(MUX_r)}` (paper §4.1).
    pub fn max_mux_term(&self) -> Area {
        self.mux.max_marginal() * 2
    }

    /// The Liapunov `f_TIME` constant: any `C` strictly greater than
    /// `f_ALU^max + f_MUX^max + f_REG^max` guarantees that an earlier
    /// control step always wins when one is available (paper §4.1).
    pub fn time_constant(&self) -> u64 {
        self.max_alu_area().as_u64()
            + self.max_mux_term().as_u64()
            + self.max_reg_term().as_u64()
            + 1
    }

    /// Restricts the library to the ALU kinds accepted by `keep`,
    /// mirroring the paper's "cell library (which may be restricted to
    /// some specific types)".
    pub fn restricted<F>(&self, keep: F) -> Library
    where
        F: Fn(&AluKind) -> bool,
    {
        Library {
            name: format!("{}-restricted", self.name),
            fu_areas: self.fu_areas.clone(),
            alus: self.alus.iter().filter(|a| keep(a)).cloned().collect(),
            mux: self.mux.clone(),
            register_area: self.register_area,
        }
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::ncr_like()
    }
}

/// Incremental builder for [`Library`] values.
///
/// ```
/// use hls_celllib::{Area, LibraryBuilder, MuxCost, OpKind};
///
/// # fn main() -> Result<(), hls_celllib::LibraryError> {
/// let mut b = LibraryBuilder::new("tiny");
/// b.fu(OpKind::Add, Area::new(1000))
///     .fu(OpKind::Mul, Area::new(8000))
///     .single_alu(OpKind::Add)
///     .single_alu(OpKind::Mul)
///     .register(Area::new(500))
///     .mux(MuxCost::ncr_like());
/// let lib = b.build()?;
/// assert_eq!(lib.alus().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LibraryBuilder {
    name: String,
    fu_areas: BTreeMap<OpKind, Area>,
    alus: Vec<AluKind>,
    mux: MuxCost,
    register_area: Area,
}

impl LibraryBuilder {
    /// Starts an empty library named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        LibraryBuilder {
            name: name.into(),
            fu_areas: BTreeMap::new(),
            alus: Vec::new(),
            mux: MuxCost::ncr_like(),
            register_area: Area::new(1230),
        }
    }

    /// Sets the single-function-unit area for `kind`.
    pub fn fu(&mut self, kind: OpKind, area: Area) -> &mut Self {
        self.fu_areas.insert(kind, area);
        self
    }

    /// Adds an explicit ALU kind.
    pub fn alu(&mut self, alu: AluKind) -> &mut Self {
        self.alus.push(alu);
        self
    }

    /// Adds a single-function ALU for `kind`, using its FU area.
    ///
    /// # Panics
    ///
    /// Panics if no FU area was registered for `kind`.
    pub fn single_alu(&mut self, kind: OpKind) -> &mut Self {
        let area = *self
            .fu_areas
            .get(&kind)
            .unwrap_or_else(|| panic!("no FU area registered for {kind:?}"));
        self.alus.push(AluKind::new(kind.name(), [kind], area));
        self
    }

    /// Adds a multifunction ALU over `ops` whose area follows the
    /// max + 15 % merge rule over the registered FU areas.
    ///
    /// # Panics
    ///
    /// Panics if any member op has no registered FU area.
    pub fn merged_alu<I>(&mut self, ops: I) -> &mut Self
    where
        I: IntoIterator<Item = OpKind>,
    {
        let ops: Vec<OpKind> = ops.into_iter().collect();
        let areas: Vec<Area> = ops
            .iter()
            .map(|k| {
                *self
                    .fu_areas
                    .get(k)
                    .unwrap_or_else(|| panic!("no FU area registered for {k:?}"))
            })
            .collect();
        let name: String = ops.iter().map(|k| k.name()).collect::<Vec<_>>().join("_");
        let area = alu_merged_area(areas);
        self.alus.push(AluKind::new(name, ops, area));
        self
    }

    /// Sets the register area.
    pub fn register(&mut self, area: Area) -> &mut Self {
        self.register_area = area;
        self
    }

    /// Sets the multiplexer cost curve.
    pub fn mux(&mut self, mux: MuxCost) -> &mut Self {
        self.mux = mux;
        self
    }

    /// Finalises the library.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::DuplicateAluName`] if two ALU kinds share a
    /// name, since MFSA reports allocations by kind name.
    pub fn build(&self) -> Result<Library, LibraryError> {
        let mut seen = std::collections::BTreeSet::new();
        for alu in &self.alus {
            if !seen.insert(alu.name().to_string()) {
                return Err(LibraryError::DuplicateAluName(alu.name().to_string()));
            }
        }
        Ok(Library {
            name: self.name.clone(),
            fu_areas: self.fu_areas.clone(),
            alus: self.alus.clone(),
            mux: self.mux.clone(),
            register_area: self.register_area,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ncr_like_covers_all_ops() {
        let lib = Library::ncr_like();
        for kind in OpKind::ALL {
            assert!(lib.fu_area(kind).is_ok(), "{kind:?} missing");
            assert!(
                lib.alus_supporting(kind).count() >= 1,
                "{kind:?} has no ALU"
            );
        }
    }

    #[test]
    fn multiplier_dominates() {
        let lib = Library::ncr_like();
        let mul = lib.fu_area(OpKind::Mul).unwrap();
        for kind in [OpKind::Add, OpKind::And, OpKind::Eq, OpKind::Shl] {
            assert!(mul > lib.fu_area(kind).unwrap());
        }
    }

    #[test]
    fn merged_alus_are_cheaper_than_parts() {
        let lib = Library::ncr_like();
        let addsub = lib.alu_by_name("add_sub").expect("add_sub exists");
        let parts = lib.fu_area(OpKind::Add).unwrap() + lib.fu_area(OpKind::Sub).unwrap();
        assert!(addsub.area() < parts);
        assert!(addsub.area() > lib.fu_area(OpKind::Add).unwrap());
    }

    #[test]
    fn time_constant_dominates_cost_terms() {
        let lib = Library::ncr_like();
        let c = lib.time_constant();
        assert!(c > lib.max_alu_area().as_u64());
        assert!(
            c > lib.max_alu_area().as_u64()
                + lib.max_mux_term().as_u64()
                + lib.max_reg_term().as_u64()
        );
    }

    #[test]
    fn missing_fu_is_an_error() {
        let lib = LibraryBuilder::new("empty").build().unwrap();
        assert_eq!(
            lib.fu_area(OpKind::Add),
            Err(LibraryError::UnsupportedOp(OpKind::Add))
        );
    }

    #[test]
    fn duplicate_alu_names_rejected() {
        let mut b = LibraryBuilder::new("dup");
        b.fu(OpKind::Add, Area::new(10));
        b.single_alu(OpKind::Add);
        b.single_alu(OpKind::Add);
        assert!(matches!(b.build(), Err(LibraryError::DuplicateAluName(_))));
    }

    #[test]
    fn restricted_filters_alus() {
        let lib = Library::ncr_like();
        let singles = lib.restricted(|a| a.function_count() == 1);
        assert!(singles.alus().iter().all(|a| a.function_count() == 1));
        assert!(singles.alus().len() < lib.alus().len());
        assert!(singles.name().contains("restricted"));
    }

    #[test]
    fn alu_by_name_finds_singles() {
        let lib = Library::ncr_like();
        let add = lib.alu_by_name("add").unwrap();
        assert_eq!(add.area(), lib.fu_area(OpKind::Add).unwrap());
    }

    #[test]
    fn default_is_ncr_like() {
        assert_eq!(Library::default().name(), "ncr-like");
    }
}
