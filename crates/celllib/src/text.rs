//! A small textual format for cell libraries, so users can supply their
//! own (the paper: MFSA reads "the cell library given by the user,
//! which may be restricted to some specific types").
//!
//! Grammar, one statement per line (`#` starts a comment):
//!
//! ```text
//! library NAME
//! fu  OP AREA            # single-function unit area (µm²)
//! alu NAME (OPS) AREA    # multifunction ALU with explicit area
//! alu NAME (OPS) auto    # area from the max + 15 % merge rule
//! mux A0 A1 A2 ... : PER_EXTRA   # cost table then tail marginal
//! reg AREA
//! ```
//!
//! `OPS` is a comma-separated list of operator symbols or names
//! (`+`, `-`, `mul`, …).

use crate::alu::alu_merged_area;
use crate::{AluKind, Area, Library, LibraryBuilder, LibraryError, MuxCost, OpKind};

/// Parses the textual library format.
///
/// ```
/// let lib = hls_celllib::parse_library(
///     "library tiny
///      fu + 1000
///      fu * 8000
///      alu add (+) 1000
///      alu fat (+,*) auto
///      mux 0 0 100 150 : 40
///      reg 500",
/// )?;
/// assert_eq!(lib.name(), "tiny");
/// assert_eq!(lib.alus().len(), 2);
/// # Ok::<(), hls_celllib::LibraryError>(())
/// ```
///
/// # Errors
///
/// [`LibraryError::Parse`] with the offending 1-based line for syntax
/// problems; [`LibraryError::DuplicateAluName`] and friends for
/// semantic ones.
pub fn parse_library(text: &str) -> Result<Library, LibraryError> {
    let err = |line: usize, message: &str| LibraryError::Parse {
        line,
        message: message.to_string(),
    };
    let mut builder = LibraryBuilder::new("library");
    let mut name = String::from("library");
    let mut fu_areas: std::collections::BTreeMap<OpKind, Area> = Default::default();
    let mut pending_alus: Vec<(usize, String, Vec<OpKind>, Option<Area>)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (head, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match head {
            "library" => {
                if rest.is_empty() {
                    return Err(err(lineno, "expected a name after `library`"));
                }
                name = rest.to_string();
            }
            "fu" => {
                let (op, area) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err(lineno, "expected `fu OP AREA`"))?;
                let op: OpKind = op
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, "unknown operator"))?;
                let area: u64 = area
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, "invalid area"))?;
                builder.fu(op, Area::new(area));
                fu_areas.insert(op, Area::new(area));
            }
            "alu" => {
                let open = rest
                    .find('(')
                    .ok_or_else(|| err(lineno, "expected `(OPS)`"))?;
                let close = rest.find(')').ok_or_else(|| err(lineno, "missing `)`"))?;
                if close < open {
                    return Err(err(lineno, "mismatched parentheses"));
                }
                let alu_name = rest[..open].trim().to_string();
                if alu_name.is_empty() {
                    return Err(err(lineno, "expected an ALU name"));
                }
                let mut ops = Vec::new();
                for tok in rest[open + 1..close].split(',') {
                    let tok = tok.trim();
                    if tok.is_empty() {
                        continue;
                    }
                    ops.push(
                        tok.parse::<OpKind>()
                            .map_err(|_| err(lineno, "unknown operator in ALU"))?,
                    );
                }
                if ops.is_empty() {
                    return Err(err(lineno, "an ALU needs at least one operator"));
                }
                let area_tok = rest[close + 1..].trim();
                let area = if area_tok.eq_ignore_ascii_case("auto") {
                    None
                } else {
                    Some(Area::new(area_tok.parse::<u64>().map_err(|_| {
                        err(lineno, "invalid ALU area (number or `auto`)")
                    })?))
                };
                pending_alus.push((lineno, alu_name, ops, area));
            }
            "mux" => {
                let (table_part, tail_part) = rest
                    .split_once(':')
                    .ok_or_else(|| err(lineno, "expected `mux TABLE... : PER_EXTRA`"))?;
                let mut table = Vec::new();
                for tok in table_part.split_whitespace() {
                    table.push(Area::new(
                        tok.parse::<u64>()
                            .map_err(|_| err(lineno, "invalid mux cost"))?,
                    ));
                }
                let per_extra: u64 = tail_part
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, "invalid per-extra mux cost"))?;
                // MuxCost::from_table panics on a decreasing table; make
                // that a parse error instead.
                if table.windows(2).any(|w| w[0] > w[1]) {
                    return Err(err(lineno, "mux cost table must be non-decreasing"));
                }
                builder.mux(MuxCost::from_table(table, Area::new(per_extra)));
            }
            "reg" => {
                let area: u64 = rest
                    .parse()
                    .map_err(|_| err(lineno, "invalid register area"))?;
                builder.register(Area::new(area));
            }
            other => {
                return Err(err(
                    lineno,
                    &format!("unknown statement `{other}` (library/fu/alu/mux/reg)"),
                ));
            }
        }
    }

    // Resolve ALUs now that all FU areas are known (auto needs them).
    for (lineno, alu_name, ops, area) in pending_alus {
        let area = match area {
            Some(a) => a,
            None => {
                let mut member_areas = Vec::with_capacity(ops.len());
                for &op in &ops {
                    member_areas.push(*fu_areas.get(&op).ok_or_else(|| {
                        err(lineno, "`auto` ALU area needs `fu` lines for all members")
                    })?);
                }
                alu_merged_area(member_areas)
            }
        };
        builder.alu(AluKind::new(alu_name, ops, area));
    }
    let lib = builder.build()?;
    Ok(lib.renamed(name))
}

impl Library {
    /// Returns a copy with a different name (used by the text parser).
    pub fn renamed(&self, name: impl Into<String>) -> Library {
        let mut lib = self.clone();
        lib.set_name(name.into());
        lib
    }

    /// Renders the library in the format accepted by [`parse_library`].
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "library {}", self.name());
        for kind in OpKind::ALL {
            if let Ok(area) = self.fu_area(kind) {
                let _ = writeln!(out, "fu {} {}", kind.name(), area.as_u64());
            }
        }
        for alu in self.alus() {
            let ops: Vec<&str> = alu.ops().map(|o| o.name()).collect();
            let _ = writeln!(
                out,
                "alu {} ({}) {}",
                alu.name(),
                ops.join(","),
                alu.area().as_u64()
            );
        }
        let table: Vec<String> = (0..7)
            .map(|r| self.mux().cost(r).as_u64().to_string())
            .collect();
        let marginal = self.mux().cost(7) - self.mux().cost(6);
        let _ = writeln!(out, "mux {} : {}", table.join(" "), marginal.as_u64());
        let _ = writeln!(out, "reg {}", self.register_area().as_u64());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_custom_library() {
        let lib = parse_library(
            "library custom  # with a comment
             fu + 1000
             fu - 1000
             fu * 9000
             alu addsub (+,-) 1200
             alu big (add, sub, mul) auto
             mux 0 0 200 300 : 80
             reg 400",
        )
        .unwrap();
        assert_eq!(lib.name(), "custom");
        assert_eq!(lib.fu_area(OpKind::Mul).unwrap(), Area::new(9000));
        let big = lib.alu_by_name("big").unwrap();
        assert_eq!(
            big.area(),
            alu_merged_area([Area::new(1000); 2].into_iter().chain([Area::new(9000)]))
        );
        assert_eq!(lib.mux().cost(3), Area::new(300));
        assert_eq!(lib.mux().cost(5), Area::new(460));
        assert_eq!(lib.register_area(), Area::new(400));
    }

    #[test]
    fn round_trips_the_builtin_library() {
        let lib = Library::ncr_like();
        let text = lib.to_text();
        let reparsed = parse_library(&text).unwrap();
        assert_eq!(reparsed.name(), lib.name());
        assert_eq!(reparsed.alus().len(), lib.alus().len());
        for kind in OpKind::ALL {
            assert_eq!(reparsed.fu_area(kind).ok(), lib.fu_area(kind).ok());
        }
        for r in 0..12 {
            assert_eq!(reparsed.mux().cost(r), lib.mux().cost(r));
        }
        assert_eq!(reparsed.register_area(), lib.register_area());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_library("fu + abc").unwrap_err();
        assert!(matches!(e, LibraryError::Parse { line: 1, .. }));
        let e = parse_library("library x\nbogus line").unwrap_err();
        assert!(matches!(e, LibraryError::Parse { line: 2, .. }));
        let e = parse_library("alu a (+) auto").unwrap_err();
        assert!(matches!(e, LibraryError::Parse { line: 1, .. }));
        let e = parse_library("mux 0 0 100 90 : 10").unwrap_err();
        assert!(matches!(e, LibraryError::Parse { line: 1, .. }));
    }

    #[test]
    fn duplicate_alu_names_still_rejected() {
        let e = parse_library(
            "fu + 10
             alu a (+) 10
             alu a (+) 10",
        )
        .unwrap_err();
        assert!(matches!(e, LibraryError::DuplicateAluName(_)));
    }
}
