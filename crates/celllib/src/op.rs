//! Operation kinds understood by the synthesis flow.

use std::fmt;
use std::str::FromStr;

/// The behavioural operation performed by a data-flow-graph node.
///
/// These are the operator classes that appear in the DAC-1992 paper's six
/// design examples: arithmetic (`*`, `+`, `-`, `++`-style increments),
/// logic (`&`, `|`), comparison (`=`, `<`, `>`, `!`) and shifts.
///
/// Each kind has a canonical single-token symbol used by the `.dfg` text
/// format and the table printers:
///
/// ```
/// use hls_celllib::OpKind;
///
/// assert_eq!(OpKind::Mul.symbol(), "*");
/// assert_eq!("&".parse::<OpKind>(), Ok(OpKind::And));
/// assert!(OpKind::Add.is_commutative());
/// assert!(!OpKind::Sub.is_commutative());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// Addition (`+`).
    Add,
    /// Subtraction (`-`).
    Sub,
    /// Multiplication (`*`).
    Mul,
    /// Division (`/`).
    Div,
    /// Bitwise and (`&`).
    And,
    /// Bitwise or (`|`).
    Or,
    /// Bitwise exclusive-or (`^`).
    Xor,
    /// Bitwise complement (`~`), one input.
    Not,
    /// Equality comparison (`=`).
    Eq,
    /// Inequality comparison (`!`).
    Ne,
    /// Less-than comparison (`<`).
    Lt,
    /// Greater-than comparison (`>`).
    Gt,
    /// Left shift (`<<`).
    Shl,
    /// Right shift (`>>`).
    Shr,
    /// Increment (`++`), one input.
    Inc,
    /// Decrement (`--`), one input.
    Dec,
    /// Arithmetic negation (`neg`), one input.
    Neg,
}

impl OpKind {
    /// All operation kinds, in a fixed canonical order.
    pub const ALL: [OpKind; 17] = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Div,
        OpKind::And,
        OpKind::Or,
        OpKind::Xor,
        OpKind::Not,
        OpKind::Eq,
        OpKind::Ne,
        OpKind::Lt,
        OpKind::Gt,
        OpKind::Shl,
        OpKind::Shr,
        OpKind::Inc,
        OpKind::Dec,
        OpKind::Neg,
    ];

    /// Canonical single-token symbol, as used in the paper's tables
    /// (`*`, `+`, `-`, `=`, `&`, `|`, `>`, `!`, …).
    pub fn symbol(self) -> &'static str {
        match self {
            OpKind::Add => "+",
            OpKind::Sub => "-",
            OpKind::Mul => "*",
            OpKind::Div => "/",
            OpKind::And => "&",
            OpKind::Or => "|",
            OpKind::Xor => "^",
            OpKind::Not => "~",
            OpKind::Eq => "=",
            OpKind::Ne => "!",
            OpKind::Lt => "<",
            OpKind::Gt => ">",
            OpKind::Shl => "<<",
            OpKind::Shr => ">>",
            OpKind::Inc => "++",
            OpKind::Dec => "--",
            OpKind::Neg => "neg",
        }
    }

    /// Whether the two inputs of the operation may be swapped freely.
    ///
    /// MFSA's multiplexer optimiser (paper §5.6) tries both operand orders
    /// for commutative operations when packing input signals onto the two
    /// ALU input multiplexers.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            OpKind::Add
                | OpKind::Mul
                | OpKind::And
                | OpKind::Or
                | OpKind::Xor
                | OpKind::Eq
                | OpKind::Ne
        )
    }

    /// Number of data inputs (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            OpKind::Not | OpKind::Inc | OpKind::Dec | OpKind::Neg => 1,
            _ => 2,
        }
    }

    /// A short lowercase name suitable for identifiers (`add`, `mul`, …).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Not => "not",
            OpKind::Eq => "eq",
            OpKind::Ne => "ne",
            OpKind::Lt => "lt",
            OpKind::Gt => "gt",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
            OpKind::Inc => "inc",
            OpKind::Dec => "dec",
            OpKind::Neg => "neg",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Error returned when parsing an [`OpKind`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOpKindError {
    token: String,
}

impl ParseOpKindError {
    /// The token that failed to parse.
    pub fn token(&self) -> &str {
        &self.token
    }
}

impl fmt::Display for ParseOpKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown operation kind `{}`", self.token)
    }
}

impl std::error::Error for ParseOpKindError {}

impl FromStr for OpKind {
    type Err = ParseOpKindError;

    /// Parses either the canonical symbol (`"*"`) or the short name
    /// (`"mul"`), case-insensitively for names.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        OpKind::ALL
            .iter()
            .copied()
            .find(|k| k.symbol() == s || k.name() == lower)
            .ok_or_else(|| ParseOpKindError {
                token: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_round_trip() {
        for kind in OpKind::ALL {
            assert_eq!(kind.symbol().parse::<OpKind>(), Ok(kind));
            assert_eq!(kind.name().parse::<OpKind>(), Ok(kind));
        }
    }

    #[test]
    fn names_round_trip_case_insensitively() {
        assert_eq!("MUL".parse::<OpKind>(), Ok(OpKind::Mul));
        assert_eq!("Add".parse::<OpKind>(), Ok(OpKind::Add));
    }

    #[test]
    fn unknown_token_is_an_error() {
        let err = "%%".parse::<OpKind>().unwrap_err();
        assert_eq!(err.token(), "%%");
        assert!(err.to_string().contains("%%"));
    }

    #[test]
    fn display_matches_symbol() {
        assert_eq!(OpKind::And.to_string(), "&");
        assert_eq!(OpKind::Inc.to_string(), "++");
    }

    #[test]
    fn arity_is_one_for_unary_ops() {
        assert_eq!(OpKind::Inc.arity(), 1);
        assert_eq!(OpKind::Not.arity(), 1);
        assert_eq!(OpKind::Add.arity(), 2);
    }

    #[test]
    fn commutativity_classification() {
        for kind in [
            OpKind::Add,
            OpKind::Mul,
            OpKind::And,
            OpKind::Or,
            OpKind::Eq,
        ] {
            assert!(kind.is_commutative(), "{kind:?} should be commutative");
        }
        for kind in [OpKind::Sub, OpKind::Div, OpKind::Lt, OpKind::Shl] {
            assert!(!kind.is_commutative(), "{kind:?} should not be commutative");
        }
    }

    #[test]
    fn all_contains_each_kind_once() {
        let mut sorted = OpKind::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), OpKind::ALL.len());
    }
}
