//! Multifunction ALU kinds.

use std::collections::BTreeSet;
use std::fmt;

use crate::{Area, OpKind};

/// A (possibly multifunction) ALU cell from the library.
///
/// In MFS the functional units are single-function operators; in MFSA
/// "each operation can be assigned to different functional units, e.g. an
/// addition may be assigned to single or multifunction ALU's such as
/// `(+)`, `(+-)`, `(+>)` or `(+->)` based on the cell library given by the
/// user" (paper §4.1). An `AluKind` is one such library cell: the set of
/// operations it can perform plus its silicon area.
///
/// ```
/// use hls_celllib::{AluKind, Area, OpKind};
///
/// let alu = AluKind::new("addsub", [OpKind::Add, OpKind::Sub], Area::new(2680));
/// assert!(alu.supports(OpKind::Add));
/// assert!(!alu.supports(OpKind::Mul));
/// assert_eq!(alu.to_string(), "(+-)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AluKind {
    name: String,
    ops: BTreeSet<OpKind>,
    area: Area,
}

impl AluKind {
    /// Creates an ALU kind performing `ops` with the given `area`.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty — an ALU that performs nothing is
    /// meaningless and would break candidate enumeration.
    pub fn new<I>(name: impl Into<String>, ops: I, area: Area) -> Self
    where
        I: IntoIterator<Item = OpKind>,
    {
        let ops: BTreeSet<OpKind> = ops.into_iter().collect();
        assert!(
            !ops.is_empty(),
            "an ALU kind must support at least one operation"
        );
        AluKind {
            name: name.into(),
            ops,
            area,
        }
    }

    /// The library name of this cell (e.g. `"addsub"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operations this ALU can perform.
    pub fn ops(&self) -> impl Iterator<Item = OpKind> + '_ {
        self.ops.iter().copied()
    }

    /// Number of supported operations (1 for a single-function unit).
    pub fn function_count(&self) -> usize {
        self.ops.len()
    }

    /// Whether this ALU can perform `op`.
    pub fn supports(&self, op: OpKind) -> bool {
        self.ops.contains(&op)
    }

    /// Silicon area of one instance.
    pub fn area(&self) -> Area {
        self.area
    }

    /// The paper's table notation for an ALU: the supported operator
    /// symbols between parentheses, e.g. `(+-*)`.
    pub fn signature(&self) -> String {
        let mut s = String::from("(");
        for op in &self.ops {
            s.push_str(op.symbol());
        }
        s.push(')');
        s
    }
}

impl fmt::Display for AluKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.signature())
    }
}

/// Computes the merged area of a multifunction ALU from its members'
/// single-function areas: the most expensive member plus 15 % of the rest.
///
/// This is the synthetic substitution for the NCR data book documented in
/// `DESIGN.md`: merging functions into one ALU is cheaper than
/// instantiating the functions separately, but not free.
///
/// ```
/// use hls_celllib::{Area, alu_merged_area};
///
/// let merged = alu_merged_area([Area::new(19800), Area::new(2330), Area::new(2330)]);
/// assert!(merged > Area::new(19800));
/// assert!(merged < Area::new(19800 + 2330 + 2330));
/// ```
pub fn alu_merged_area<I>(member_areas: I) -> Area
where
    I: IntoIterator<Item = Area>,
{
    let mut areas: Vec<Area> = member_areas.into_iter().collect();
    areas.sort();
    match areas.pop() {
        None => Area::ZERO,
        Some(max) => {
            let rest: u64 = areas.iter().map(|a| a.as_u64()).sum();
            // 15 % of the remaining members, rounded up.
            max + Area::new((rest * 15).div_ceil(100))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_orders_ops_canonically() {
        let alu = AluKind::new("x", [OpKind::Sub, OpKind::Add, OpKind::Mul], Area::new(1));
        // BTreeSet order follows the enum declaration: Add, Sub, Mul.
        assert_eq!(alu.signature(), "(+-*)");
    }

    #[test]
    fn supports_only_member_ops() {
        let alu = AluKind::new("cmp", [OpKind::Lt, OpKind::Gt], Area::new(1560));
        assert!(alu.supports(OpKind::Lt));
        assert!(!alu.supports(OpKind::Eq));
        assert_eq!(alu.function_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn empty_alu_panics() {
        let _ = AluKind::new("nothing", [], Area::new(1));
    }

    #[test]
    fn duplicate_ops_collapse() {
        let alu = AluKind::new("a", [OpKind::Add, OpKind::Add], Area::new(1));
        assert_eq!(alu.function_count(), 1);
    }

    #[test]
    fn merged_area_is_between_max_and_sum() {
        let parts = [Area::new(100), Area::new(200), Area::new(50)];
        let merged = alu_merged_area(parts);
        assert!(merged >= Area::new(200));
        assert!(merged <= Area::new(350));
        assert_eq!(merged, Area::new(200 + (150u64 * 15).div_ceil(100)));
    }

    #[test]
    fn merged_area_of_single_member_is_identity() {
        assert_eq!(alu_merged_area([Area::new(777)]), Area::new(777));
    }

    #[test]
    fn merged_area_of_nothing_is_zero() {
        assert_eq!(alu_merged_area([]), Area::ZERO);
    }
}
