//! Controller generation.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use hls_celllib::TimingSpec;
use hls_dfg::{Dfg, FuClass, NodeKind, SignalSource};
use hls_rtl::{AluId, Datapath, NetSource};
use hls_schedule::{CStep, Schedule, UnitId};

use crate::word::{
    render_word, AluActivity, ControlWord, InputLoad, MemAccess, RegWrite, WriteSource,
};
use crate::ControlError;

/// A horizontal-microcode controller: one [`ControlWord`] per control
/// step, plus the input-load phase that fills registers with primary
/// inputs before step 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Controller {
    words: Vec<ControlWord>,
    input_loads: Vec<InputLoad>,
}

impl Controller {
    /// Derives the controller for a scheduled, allocated design.
    ///
    /// For each step it emits: the function select of every ALU starting
    /// an operation, the selects of the ALU's two input multiplexers
    /// (indices into the mux's ordered source list), a `busy` marker for
    /// multi-cycle operations in flight, and the register writes latched
    /// at the step's end (one per signal life span beginning in the next
    /// step).
    ///
    /// # Errors
    ///
    /// [`ControlError::UnboundNode`] for FU-bound or unscheduled
    /// operations, [`ControlError::SourceNotOnMux`] /
    /// [`ControlError::Unstored`] when the data path is inconsistent
    /// with the schedule (cannot happen for `Datapath::build` outputs).
    pub fn generate(
        dfg: &Dfg,
        schedule: &Schedule,
        datapath: &Datapath,
        spec: &TimingSpec,
    ) -> Result<Controller, ControlError> {
        let cs = schedule.control_steps() as usize;
        let mut words = vec![ControlWord::default(); cs];

        // Mux source orderings: select = position in the ordered set.
        let mut mux_order: BTreeMap<(AluId, u8), Vec<NetSource>> = BTreeMap::new();
        for m in datapath.muxes() {
            mux_order.insert((m.alu, m.port), m.sources.iter().copied().collect());
        }
        let select_of = |alu: AluId, port: u8, src: NetSource| -> Option<Option<usize>> {
            let order = mux_order.get(&(alu, port))?;
            if order.len() <= 1 {
                // Direct wire (or unused port): no select needed, but the
                // source must still be the wire's driver.
                return if order.is_empty() || order[0] == src {
                    Some(None)
                } else {
                    None
                };
            }
            order.iter().position(|&s| s == src).map(Some)
        };

        // ALU activities and memory accesses.
        for id in dfg.node_ids() {
            let slot = schedule.slot(id).ok_or(ControlError::UnboundNode(id))?;
            if dfg.node(id).kind().is_mem_access() {
                // A memory access occupies a bank port, not an ALU: the
                // word records the port's address/data routing and write
                // enable instead of a function select.
                let UnitId::Fu {
                    class: FuClass::Mem(bank),
                    index,
                } = slot.unit
                else {
                    return Err(ControlError::UnboundNode(id));
                };
                let write = matches!(dfg.node(id).kind(), NodeKind::Store { .. });
                let start = slot.step.get() as usize - 1;
                words[start].mem.push(MemAccess {
                    bank,
                    port: index.get(),
                    node: id,
                    write,
                });
                continue;
            }
            let UnitId::Alu { instance } = slot.unit else {
                return Err(ControlError::UnboundNode(id));
            };
            let alu = AluId(instance);
            let function = match dfg.node(id).kind() {
                NodeKind::Op(k) => k,
                NodeKind::Stage { base, .. } => base,
                _ => return Err(ControlError::UnboundNode(id)),
            };
            let (p1, p2) = datapath
                .operand_sources(id)
                .ok_or(ControlError::UnboundNode(id))?;
            let mux1 =
                select_of(alu, 1, p1).ok_or(ControlError::SourceNotOnMux { node: id, port: 1 })?;
            let mux2 = match p2 {
                None => None,
                Some(src) => select_of(alu, 2, src)
                    .ok_or(ControlError::SourceNotOnMux { node: id, port: 2 })?,
            };
            let start = slot.step.get() as usize - 1;
            words[start].activities.push(AluActivity {
                alu,
                node: id,
                function,
                mux1,
                mux2,
            });
            let cycles = dfg.node(id).kind().cycles(spec) as usize;
            for k in 1..cycles {
                if start + k < cs {
                    words[start + k].busy.push((alu, id));
                }
            }
        }

        // Register writes and input loads, from the allocation's spans.
        let mut input_loads = Vec::new();
        for (reg, spans) in datapath.register_allocation().iter() {
            for span in spans {
                let sig = span.signal;
                match dfg.signal(sig).source() {
                    SignalSource::PrimaryInput => {
                        input_loads.push(InputLoad {
                            register: reg,
                            signal: sig,
                        });
                    }
                    SignalSource::Constant(_) => {}
                    SignalSource::Node(producer) => {
                        let slot = schedule
                            .slot(producer)
                            .ok_or(ControlError::UnboundNode(producer))?;
                        let source = match slot.unit {
                            UnitId::Alu { instance } => WriteSource::Alu(AluId(instance)),
                            UnitId::Fu {
                                class: FuClass::Mem(bank),
                                index,
                            } => WriteSource::Mem {
                                bank,
                                port: index.get(),
                            },
                            UnitId::Fu { .. } => return Err(ControlError::UnboundNode(producer)),
                        };
                        // Latched at the end of the producer's finish
                        // step = span birth − 1.
                        let write_step = span.birth as usize - 1;
                        if write_step >= 1 && write_step <= cs {
                            words[write_step - 1].writes.push(RegWrite {
                                register: reg,
                                source,
                                signal: sig,
                            });
                        }
                    }
                }
            }
        }

        // Deterministic field order.
        for w in &mut words {
            w.activities.sort_by_key(|a| a.alu);
            w.busy.sort();
            w.mem.sort_by_key(|m| (m.bank, m.port));
            w.writes.sort_by_key(|x| (x.register, x.signal));
        }
        input_loads.sort_by_key(|l| (l.register, l.signal));

        Ok(Controller { words, input_loads })
    }

    /// Number of FSM states (= control steps).
    pub fn state_count(&self) -> usize {
        self.words.len()
    }

    /// The control word of `step`.
    ///
    /// # Panics
    ///
    /// Panics if `step` exceeds the state count.
    pub fn word(&self, step: CStep) -> &ControlWord {
        &self.words[step.get() as usize - 1]
    }

    /// All words, step order.
    pub fn words(&self) -> &[ControlWord] {
        &self.words
    }

    /// Registers pre-loaded with primary inputs.
    pub fn input_loads(&self) -> &[InputLoad] {
        &self.input_loads
    }

    /// Renders the full microcode listing.
    pub fn render(&self, dfg: &Dfg) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "controller: {} state(s)", self.words.len());
        if !self.input_loads.is_empty() {
            let loads: Vec<String> = self
                .input_loads
                .iter()
                .map(|l| format!("{}<-in:{}", l.register, dfg.signal(l.signal).name()))
                .collect();
            let _ = writeln!(out, "load {}", loads.join("  "));
        }
        for (i, word) in self.words.iter().enumerate() {
            let _ = writeln!(out, "{}", render_word(CStep::new(i as u32 + 1), word));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::{Library, OpKind};
    use hls_dfg::DfgBuilder;
    use hls_rtl::AluAllocation;
    use hls_schedule::Slot;

    fn build() -> (Dfg, Schedule, Datapath, TimingSpec) {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let p = b.op("p", OpKind::Add, &[x, y]).unwrap();
        let q = b.op("q", OpKind::Sub, &[p, y]).unwrap();
        b.op("r", OpKind::Add, &[q, x]).unwrap();
        let dfg = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let mut s = Schedule::new(&dfg, 3);
        for (i, name) in ["p", "q", "r"].iter().enumerate() {
            s.assign(
                dfg.node_by_name(name).unwrap(),
                Slot {
                    step: CStep::new(i as u32 + 1),
                    unit: UnitId::Alu { instance: 0 },
                },
            );
        }
        let lib = Library::ncr_like();
        let mut alloc = AluAllocation::new();
        alloc.push(lib.alu_by_name("add_sub").unwrap().clone());
        let dp = Datapath::build(&dfg, &s, &alloc, &spec).unwrap();
        (dfg, s, dp, spec)
    }

    #[test]
    fn one_activity_per_step() {
        let (dfg, s, dp, spec) = build();
        let c = Controller::generate(&dfg, &s, &dp, &spec).unwrap();
        assert_eq!(c.state_count(), 3);
        for (i, w) in c.words().iter().enumerate() {
            assert_eq!(w.activities.len(), 1, "step {}", i + 1);
        }
        // Functions follow the schedule.
        assert_eq!(c.words()[0].activities[0].function, OpKind::Add);
        assert_eq!(c.words()[1].activities[0].function, OpKind::Sub);
        assert_eq!(c.words()[2].activities[0].function, OpKind::Add);
    }

    #[test]
    fn intermediate_values_are_written_to_registers() {
        let (dfg, s, dp, spec) = build();
        let c = Controller::generate(&dfg, &s, &dp, &spec).unwrap();
        // p (used at t2) is written at end of t1; q at end of t2.
        assert!(!c.words()[0].writes.is_empty());
        assert!(!c.words()[1].writes.is_empty());
        // Inputs x and y are pre-loaded.
        assert_eq!(c.input_loads().len(), 2);
    }

    #[test]
    fn multicycle_ops_mark_busy() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let m = b.op("m", OpKind::Mul, &[x, x]).unwrap();
        b.op("a", OpKind::Add, &[m, x]).unwrap();
        let dfg = b.finish().unwrap();
        let spec = hls_celllib::TimingSpec::two_cycle_multiply();
        let mut s = Schedule::new(&dfg, 3);
        s.assign(
            dfg.node_by_name("m").unwrap(),
            Slot {
                step: CStep::new(1),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        s.assign(
            dfg.node_by_name("a").unwrap(),
            Slot {
                step: CStep::new(3),
                unit: UnitId::Alu { instance: 1 },
            },
        );
        let lib = Library::ncr_like();
        let mut alloc = AluAllocation::new();
        alloc.push(lib.alu_by_name("mul").unwrap().clone());
        alloc.push(lib.alu_by_name("add").unwrap().clone());
        let dp = Datapath::build(&dfg, &s, &alloc, &spec).unwrap();
        let c = Controller::generate(&dfg, &s, &dp, &spec).unwrap();
        assert_eq!(
            c.words()[1].busy,
            vec![(AluId(0), dfg.node_by_name("m").unwrap())]
        );
    }

    #[test]
    fn rendering_is_complete() {
        let (dfg, s, dp, spec) = build();
        let c = Controller::generate(&dfg, &s, &dp, &spec).unwrap();
        let text = c.render(&dfg);
        assert!(text.contains("3 state(s)"));
        assert!(text.contains("load"));
        assert!(text.contains("ALU0:=add"));
        assert!(text.contains("R0<-ALU0") || text.contains("R1<-ALU0"));
    }

    #[test]
    fn incomplete_schedule_is_rejected() {
        let (dfg, mut s, dp, spec) = build();
        s.unassign(dfg.node_by_name("r").unwrap());
        assert!(matches!(
            Controller::generate(&dfg, &s, &dp, &spec),
            Err(ControlError::UnboundNode(_))
        ));
    }
}
