//! Error type for controller generation.

use std::fmt;

use hls_dfg::{NodeId, SignalId};

/// Error produced while generating a [`crate::Controller`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ControlError {
    /// An operation is not scheduled or not bound to an ALU.
    UnboundNode(NodeId),
    /// An operation's operand source is not on the corresponding mux —
    /// the data path does not match the schedule.
    SourceNotOnMux {
        /// The operation.
        node: NodeId,
        /// The port (1 or 2).
        port: u8,
    },
    /// A stored signal has no register in the data path.
    Unstored(SignalId),
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::UnboundNode(n) => {
                write!(f, "operation {n} is not bound to an ALU instance")
            }
            ControlError::SourceNotOnMux { node, port } => write!(
                f,
                "operand source of {node} is missing from its port-{port} multiplexer"
            ),
            ControlError::Unstored(s) => write!(f, "stored signal {s} has no register"),
        }
    }
}

impl std::error::Error for ControlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let mut b = hls_dfg::DfgBuilder::new("x");
        let s = b.input("s");
        let e = ControlError::Unstored(s);
        assert!(e.to_string().contains("register"));
    }
}
