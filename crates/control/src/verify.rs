//! Independent controller verification.

use std::collections::BTreeMap;

use hls_celllib::TimingSpec;
use hls_dfg::{Dfg, NodeId, SignalId, SignalSource};
use hls_rtl::Datapath;
use hls_schedule::Schedule;

use crate::Controller;

/// A defect found by [`verify_controller`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ControlViolation {
    /// An operation is issued in the wrong step (or more/less than
    /// once).
    WrongIssue {
        /// The operation.
        node: NodeId,
        /// How many times it was issued.
        issues: usize,
    },
    /// A mux select is out of range for its multiplexer.
    SelectOutOfRange {
        /// The operation whose select is broken.
        node: NodeId,
        /// The port.
        port: u8,
    },
    /// A stored signal is never written (or written more than once).
    WrongWriteCount {
        /// The signal.
        signal: SignalId,
        /// Observed writes (including the input-load phase).
        writes: usize,
    },
    /// Two writes target the same register in the same step.
    WritePortConflict {
        /// The contended register.
        register: hls_rtl::RegId,
        /// The step (1-based).
        step: u32,
    },
    /// Two memory accesses issue on the same bank port in one step.
    MemPortConflict {
        /// The contended bank.
        bank: hls_dfg::BankId,
        /// The contended port (1-based).
        port: u32,
        /// The step (1-based).
        step: u32,
    },
}

/// Re-checks a controller against the design it was generated for:
/// every operation issues exactly once in its scheduled step, all mux
/// selects are in range, every stored signal is written exactly once,
/// and no register sees two writes in one step.
pub fn verify_controller(
    dfg: &Dfg,
    schedule: &Schedule,
    datapath: &Datapath,
    controller: &Controller,
    spec: &TimingSpec,
) -> Vec<ControlViolation> {
    let _ = spec;
    let mut violations = Vec::new();

    // Issue counts and steps (ALU activities and memory accesses alike).
    let mut issues: BTreeMap<NodeId, Vec<u32>> = BTreeMap::new();
    for (i, word) in controller.words().iter().enumerate() {
        for a in &word.activities {
            issues.entry(a.node).or_default().push(i as u32 + 1);
        }
        for m in &word.mem {
            issues.entry(m.node).or_default().push(i as u32 + 1);
        }
    }
    for id in dfg.node_ids() {
        let steps = issues.get(&id).cloned().unwrap_or_default();
        let expected = schedule.start(id).map(|s| s.get());
        if steps.len() != 1 || Some(steps[0]) != expected {
            violations.push(ControlViolation::WrongIssue {
                node: id,
                issues: steps.len(),
            });
        }
    }

    // Bank-port occupancy: one access per port per step.
    for (i, word) in controller.words().iter().enumerate() {
        let mut per_port: BTreeMap<(hls_dfg::BankId, u32), usize> = BTreeMap::new();
        for m in &word.mem {
            *per_port.entry((m.bank, m.port)).or_insert(0) += 1;
        }
        for ((bank, port), n) in per_port {
            if n > 1 {
                violations.push(ControlViolation::MemPortConflict {
                    bank,
                    port,
                    step: i as u32 + 1,
                });
            }
        }
    }

    // Select ranges.
    let mux_sizes: BTreeMap<(hls_rtl::AluId, u8), usize> = datapath
        .muxes()
        .iter()
        .map(|m| ((m.alu, m.port), m.sources.len()))
        .collect();
    for word in controller.words() {
        for a in &word.activities {
            for (port, sel) in [(1u8, a.mux1), (2, a.mux2)] {
                if let Some(sel) = sel {
                    let size = mux_sizes.get(&(a.alu, port)).copied().unwrap_or(0);
                    if sel >= size {
                        violations.push(ControlViolation::SelectOutOfRange { node: a.node, port });
                    }
                }
            }
        }
    }

    // Write discipline.
    let mut write_counts: BTreeMap<SignalId, usize> = BTreeMap::new();
    for load in controller.input_loads() {
        *write_counts.entry(load.signal).or_insert(0) += 1;
    }
    for (i, word) in controller.words().iter().enumerate() {
        let mut per_reg: BTreeMap<hls_rtl::RegId, usize> = BTreeMap::new();
        for w in &word.writes {
            *write_counts.entry(w.signal).or_insert(0) += 1;
            *per_reg.entry(w.register).or_insert(0) += 1;
        }
        for (reg, n) in per_reg {
            if n > 1 {
                violations.push(ControlViolation::WritePortConflict {
                    register: reg,
                    step: i as u32 + 1,
                });
            }
        }
    }
    for (_, spans) in datapath.register_allocation().iter() {
        for span in spans {
            // Constants are hardwired; everything else stored must be
            // written exactly once.
            if matches!(dfg.signal(span.signal).source(), SignalSource::Constant(_)) {
                continue;
            }
            let writes = write_counts.get(&span.signal).copied().unwrap_or(0);
            if writes != 1 {
                violations.push(ControlViolation::WrongWriteCount {
                    signal: span.signal,
                    writes,
                });
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::{Library, OpKind, TimingSpec};
    use hls_dfg::DfgBuilder;
    use hls_rtl::AluAllocation;
    use hls_schedule::{CStep, Slot, UnitId};

    #[test]
    fn generated_controllers_verify_clean() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let p = b.op("p", OpKind::Add, &[x, x]).unwrap();
        b.op("q", OpKind::Sub, &[p, x]).unwrap();
        let dfg = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let mut s = Schedule::new(&dfg, 2);
        for (i, name) in ["p", "q"].iter().enumerate() {
            s.assign(
                dfg.node_by_name(name).unwrap(),
                Slot {
                    step: CStep::new(i as u32 + 1),
                    unit: UnitId::Alu { instance: 0 },
                },
            );
        }
        let lib = Library::ncr_like();
        let mut alloc = AluAllocation::new();
        alloc.push(lib.alu_by_name("add_sub").unwrap().clone());
        let dp = Datapath::build(&dfg, &s, &alloc, &spec).unwrap();
        let c = Controller::generate(&dfg, &s, &dp, &spec).unwrap();
        let v = verify_controller(&dfg, &s, &dp, &c, &spec);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn shifted_schedule_is_detected() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let p = b.op("p", OpKind::Add, &[x, x]).unwrap();
        b.op("q", OpKind::Sub, &[p, x]).unwrap();
        let dfg = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let mut s = Schedule::new(&dfg, 3);
        for (i, name) in ["p", "q"].iter().enumerate() {
            s.assign(
                dfg.node_by_name(name).unwrap(),
                Slot {
                    step: CStep::new(i as u32 + 1),
                    unit: UnitId::Alu { instance: 0 },
                },
            );
        }
        let lib = Library::ncr_like();
        let mut alloc = AluAllocation::new();
        alloc.push(lib.alu_by_name("add_sub").unwrap().clone());
        let dp = Datapath::build(&dfg, &s, &alloc, &spec).unwrap();
        let c = Controller::generate(&dfg, &s, &dp, &spec).unwrap();
        // Move q afterwards: the controller no longer matches.
        s.assign(
            dfg.node_by_name("q").unwrap(),
            Slot {
                step: CStep::new(3),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        let v = verify_controller(&dfg, &s, &dp, &c, &spec);
        assert!(v
            .iter()
            .any(|x| matches!(x, ControlViolation::WrongIssue { .. })));
    }
}
