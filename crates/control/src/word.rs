//! Control words: the per-step fields of the horizontal microcode.

use std::fmt;

use hls_celllib::OpKind;
use hls_dfg::{BankId, NodeId, SignalId};
use hls_rtl::{AluId, RegId};
use hls_schedule::CStep;

/// One ALU's activity in one control step: the operation it starts, the
/// function it performs and the selects of its two input multiplexers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AluActivity {
    /// The driven ALU.
    pub alu: AluId,
    /// The operation starting this step.
    pub node: NodeId,
    /// The ALU function select.
    pub function: OpKind,
    /// Port-1 mux select: index into the mux's ordered source list;
    /// `None` when the port has a single (direct) source.
    pub mux1: Option<usize>,
    /// Port-2 mux select (`None` for unary operations or direct wires).
    pub mux2: Option<usize>,
}

/// What drives a register's write port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteSource {
    /// An ALU's combinational output.
    Alu(AluId),
    /// A memory bank port: the read-data line for loads, the write-data
    /// line for a store's forwarded value.
    Mem {
        /// The bank.
        bank: BankId,
        /// The 1-based port.
        port: u32,
    },
}

impl fmt::Display for WriteSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteSource::Alu(a) => write!(f, "{a}"),
            WriteSource::Mem { bank, port } => write!(f, "{bank}.p{port}"),
        }
    }
}

/// A register write latched at the end of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegWrite {
    /// The written register.
    pub register: RegId,
    /// The unit whose result is captured.
    pub source: WriteSource,
    /// The signal (value) being stored — for tracing and verification.
    pub signal: SignalId,
}

/// One memory access issued in a control step: the controller drives the
/// port's address mux (and, for stores, its write-data mux and write
/// enable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// The accessed bank.
    pub bank: BankId,
    /// The 1-based bank port serving the access.
    pub port: u32,
    /// The load/store node.
    pub node: NodeId,
    /// Whether this is a store (write enable asserted).
    pub write: bool,
}

/// A primary input latched into a register before step 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputLoad {
    /// The destination register.
    pub register: RegId,
    /// The loaded primary-input signal.
    pub signal: SignalId,
}

/// The complete control word of one step: a state of the (Moore)
/// control FSM.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ControlWord {
    /// Operations starting this step.
    pub activities: Vec<AluActivity>,
    /// Multi-cycle operations still occupying their ALU (no new
    /// function issued; the ALU holds its computation).
    pub busy: Vec<(AluId, NodeId)>,
    /// Memory accesses issued this step.
    pub mem: Vec<MemAccess>,
    /// Register writes latched at the end of this step.
    pub writes: Vec<RegWrite>,
}

impl ControlWord {
    /// Whether nothing happens in this step (a pure wait state).
    pub fn is_idle(&self) -> bool {
        self.activities.is_empty()
            && self.busy.is_empty()
            && self.mem.is_empty()
            && self.writes.is_empty()
    }
}

/// Renders one word as a microcode line (used by
/// [`crate::Controller::render`]).
pub(crate) fn render_word(step: CStep, word: &ControlWord) -> String {
    let mut parts = Vec::new();
    for a in &word.activities {
        let sel = |s: Option<usize>| match s {
            Some(i) => format!("#{i}"),
            None => "-".to_string(),
        };
        parts.push(format!(
            "{}:={}(m1{},m2{})",
            a.alu,
            a.function.name(),
            sel(a.mux1),
            sel(a.mux2)
        ));
    }
    for (alu, _) in &word.busy {
        parts.push(format!("{alu}:busy"));
    }
    for m in &word.mem {
        let dir = if m.write { "st" } else { "ld" };
        parts.push(format!("{}.p{}:={dir}", m.bank, m.port));
    }
    for w in &word.writes {
        parts.push(format!("{}<-{}", w.register, w.source));
    }
    if parts.is_empty() {
        parts.push("nop".to_string());
    }
    format!("{step:<4} {}", parts.join("  "))
}

impl fmt::Display for ControlWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render_word(CStep::FIRST, self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_word() {
        let w = ControlWord::default();
        assert!(w.is_idle());
        assert!(render_word(CStep::new(3), &w).contains("nop"));
    }
}
