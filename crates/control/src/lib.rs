//! Control-path substrate for the `moveframe-hls` workspace.
//!
//! The paper's opening line splits behavioural synthesis into "1) Data
//! path synthesis (operation scheduling and hardware allocation), and
//! 2) Control path design". MFS/MFSA produce the data path; this crate
//! produces the control path: a horizontal-microcode controller (one
//! [`ControlWord`] per control step) that drives the data path's ALU
//! function selects, multiplexer selects and register write enables.
//!
//! The controller is derived purely from the triple (graph, schedule,
//! data path) and independently re-validated by [`verify_controller`];
//! the `hls-sim` crate executes it cycle by cycle to prove the
//! synthesised RTL computes the same values as the behavioural graph.
//!
//! ```
//! use hls_celllib::{Library, OpKind, TimingSpec};
//! use hls_control::Controller;
//! use hls_dfg::DfgBuilder;
//! use hls_rtl::{AluAllocation, Datapath};
//! use hls_schedule::{CStep, Schedule, Slot, UnitId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DfgBuilder::new("g");
//! let x = b.input("x");
//! let p = b.op("p", OpKind::Add, &[x, x])?;
//! let _q = b.op("q", OpKind::Sub, &[p, x])?;
//! let dfg = b.finish()?;
//! let spec = TimingSpec::uniform_single_cycle();
//! let mut schedule = Schedule::new(&dfg, 2);
//! for (i, name) in ["p", "q"].iter().enumerate() {
//!     schedule.assign(
//!         dfg.node_by_name(name).unwrap(),
//!         Slot { step: CStep::new(i as u32 + 1), unit: UnitId::Alu { instance: 0 } },
//!     );
//! }
//! let lib = Library::ncr_like();
//! let mut alloc = AluAllocation::new();
//! alloc.push(lib.alu_by_name("add_sub").unwrap().clone());
//! let datapath = Datapath::build(&dfg, &schedule, &alloc, &spec)?;
//! let controller = Controller::generate(&dfg, &schedule, &datapath, &spec)?;
//! assert_eq!(controller.state_count(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod error;
mod verify;
mod verilog;
mod word;

pub use controller::Controller;
pub use error::ControlError;
pub use verify::{verify_controller, ControlViolation};
pub use verilog::{emit_testbench, emit_verilog};
pub use word::{AluActivity, ControlWord, InputLoad, MemAccess, RegWrite, WriteSource};
