//! hls-serve: the moveframe-hls synthesis-as-a-service daemon.
//!
//! A long-lived scheduling service turns the exploration engine's
//! content-addressed cache into a *warm* cache: the first request for a
//! (DFG, design-point) pair computes, every identical request after it
//! is a memoized lookup — which is exactly the workload of an
//! interactive design-space exploration front end. The daemon is built
//! entirely on `std`:
//!
//! * a hand-rolled HTTP/1.1 subset ([`http`]) with an incremental
//!   parser — the container is offline, so no tokio/hyper;
//! * a single-threaded readiness reactor (epoll on Linux, `poll(2)`
//!   elsewhere) owning every connection: keep-alive, bounded
//!   pipelining with in-order responses, slow-loris and idle
//!   timeouts;
//! * a bounded admission queue ([`queue`]) between the reactor and
//!   the compute workers — overload answers **429** on the live
//!   connection instead of queueing unboundedly;
//! * `POST /batch`: many jobs in one request, fanned out over the
//!   exploration pool, answered as one in-order JSON array;
//! * a tiered result cache: in-memory LRU over an optional
//!   content-addressed on-disk layer (`--cache-dir`) that survives
//!   restarts;
//! * per-request deadlines riding the scheduler's cooperative
//!   [`moveframe::CancelToken`] checkpoints — overruns answer **504**
//!   and never poison the cache or the worker pool;
//! * graceful drain-and-shutdown on SIGINT/SIGTERM ([`signal`]):
//!   admission stops, admitted requests finish, then the process exits;
//! * `/healthz`, `/metrics` (Prometheus text) and structured
//!   access-log events through any [`hls_telemetry::TraceSink`].
//!
//! Start it with `mfhls serve --addr 127.0.0.1:7433`, then:
//!
//! ```text
//! curl -s 'localhost:7433/schedule?cs=4' --data-binary @examples/diffeq.dfg
//! curl -s localhost:7433/schedule -d '{"benchmark":"diffeq","alg":"mfsa","cs":4}'
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod api;
mod http;
mod json;
#[allow(unsafe_code)]
mod poller;
mod queue;
mod server;
#[allow(unsafe_code)]
pub mod signal;

pub use api::{benchmark, handle, parse_job, point_json, run_batch, try_warm, AppState, Emit, Job};
pub use http::{
    parse_request, percent_decode, read_request, reason, HttpError, Parsed, Request, Response,
};
pub use json::{escape_into, parse_flat_array, parse_flat_object, JsonValue};
pub use queue::Bounded;
pub use server::{ServeConfig, Server};
