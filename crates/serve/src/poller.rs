//! Readiness polling for the reactor: `epoll(7)` on Linux with a
//! portable `poll(2)` fallback, behind one token-based interface.
//!
//! This module and [`crate::signal`] are the only `unsafe` in the
//! workspace: both call libc entry points already linked through std
//! (the offline container has no mio/polling crate). The surface is
//! deliberately tiny — create, register/modify/deregister, wait —
//! and level-triggered on both backends, so the reactor's state
//! machine never depends on edge semantics. On Linux the fallback is
//! still compiled and selectable ([`Poller::new`] with `force_poll`,
//! or when `epoll_create1` fails), which is what lets the test suite
//! exercise both code paths on one platform.
//!
//! Off Unix there are no raw fds to poll; a sleep-tick emulation
//! reports every registered token as ready each tick. That is
//! *spuriously* ready — correct for this reactor, whose handlers use
//! non-blocking sockets and treat `WouldBlock` as "not actually
//! ready" — and keeps the crate building everywhere.

use std::io;
use std::time::Duration;

/// Readable interest / readiness bit.
pub const READ: u8 = 1;
/// Writable interest / readiness bit.
pub const WRITE: u8 = 2;

#[cfg(unix)]
pub use std::os::unix::io::RawFd as Raw;
#[cfg(not(unix))]
/// Placeholder fd type off Unix (tokens carry the identity instead).
pub type Raw = i32;

/// Anything the poller can watch. Blanket-implemented over
/// `AsRawFd` on Unix; a no-op elsewhere.
pub trait Source {
    /// The raw handle to register.
    fn raw(&self) -> Raw;
}

#[cfg(unix)]
impl<T: std::os::unix::io::AsRawFd> Source for T {
    fn raw(&self) -> Raw {
        self.as_raw_fd()
    }
}

#[cfg(not(unix))]
impl<T> Source for T {
    fn raw(&self) -> Raw {
        0
    }
}

/// One readiness event: the token registered for the source, plus
/// which of [`READ`]/[`WRITE`] fired.
pub type Event = (u64, u8);

/// A level-triggered readiness poller.
#[derive(Debug)]
pub struct Poller {
    imp: Imp,
}

#[derive(Debug)]
enum Imp {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    #[cfg(unix)]
    Poll(pollfds::Poll),
    #[cfg(not(unix))]
    Spin(spin::Spin),
}

impl Poller {
    /// Creates a poller: epoll where available (unless `force_poll`),
    /// otherwise the `poll(2)` fallback (the sleep-tick emulation off
    /// Unix, where `force_poll` is ignored).
    pub fn new(force_poll: bool) -> Poller {
        #[cfg(target_os = "linux")]
        {
            if !force_poll {
                if let Some(ep) = epoll::Epoll::new() {
                    return Poller {
                        imp: Imp::Epoll(ep),
                    };
                }
            }
        }
        #[cfg(unix)]
        {
            let _ = force_poll;
            Poller {
                imp: Imp::Poll(pollfds::Poll::default()),
            }
        }
        #[cfg(not(unix))]
        {
            let _ = force_poll;
            Poller {
                imp: Imp::Spin(spin::Spin::default()),
            }
        }
    }

    /// The backend in use, for logs and telemetry.
    pub fn backend(&self) -> &'static str {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(_) => "epoll",
            #[cfg(unix)]
            Imp::Poll(_) => "poll",
            #[cfg(not(unix))]
            Imp::Spin(_) => "spin",
        }
    }

    /// Starts watching `source` under `token` for `interest`.
    pub fn add(&mut self, token: u64, source: &impl Source, interest: u8) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => ep.add(token, source.raw(), interest),
            #[cfg(unix)]
            Imp::Poll(p) => p.add(token, source.raw(), interest),
            #[cfg(not(unix))]
            Imp::Spin(s) => s.add(token, interest),
        }
    }

    /// Changes the interest set of an already-registered source.
    pub fn modify(&mut self, token: u64, source: &impl Source, interest: u8) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => ep.modify(token, source.raw(), interest),
            #[cfg(unix)]
            Imp::Poll(p) => p.modify(token, source.raw(), interest),
            #[cfg(not(unix))]
            Imp::Spin(s) => s.add(token, interest),
        }
    }

    /// Stops watching a source. (Dropping the socket would also do on
    /// epoll, but the fallback tracks interest in user space — always
    /// deregister explicitly.)
    pub fn remove(&mut self, token: u64, source: &impl Source) {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => ep.remove(source.raw()),
            #[cfg(unix)]
            Imp::Poll(p) => p.remove(token),
            #[cfg(not(unix))]
            Imp::Spin(s) => s.remove(token),
        }
    }

    /// Waits up to `timeout` for readiness; appends events to `out`
    /// (cleared first). A `None` timeout blocks indefinitely.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let ms: i32 = match timeout {
            None => -1,
            // Round up so a 0.5ms timeout still sleeps instead of
            // spinning.
            Some(t) => t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Imp::Epoll(ep) => ep.wait(out, ms),
            #[cfg(unix)]
            Imp::Poll(p) => p.wait(out, ms),
            #[cfg(not(unix))]
            Imp::Spin(s) => s.wait(out, ms),
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::{Event, READ, WRITE};
    use std::io;

    // x86_64 is the one ABI where the kernel's struct is packed.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    #[derive(Debug)]
    pub struct Epoll {
        epfd: i32,
    }

    impl Epoll {
        pub fn new() -> Option<Epoll> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            (epfd >= 0).then_some(Epoll { epfd })
        }

        fn mask(interest: u8) -> u32 {
            let mut m = EPOLLRDHUP;
            if interest & READ != 0 {
                m |= EPOLLIN;
            }
            if interest & WRITE != 0 {
                m |= EPOLLOUT;
            }
            m
        }

        fn ctl(&self, op: i32, fd: i32, token: u64, interest: u8) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: Self::mask(interest),
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc == 0 {
                Ok(())
            } else {
                Err(io::Error::last_os_error())
            }
        }

        pub fn add(&mut self, token: u64, fd: i32, interest: u8) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, token: u64, fd: i32, interest: u8) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn remove(&mut self, fd: i32) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let mut events = [EpollEvent { events: 0, data: 0 }; 64];
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                // A signal landing on the reactor thread is not an
                // error; the loop re-checks its flags and re-waits.
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &events[..n as usize] {
                // Copy out of the (possibly packed) struct first.
                let (bits, token) = (ev.events, ev.data);
                let mut ready = 0u8;
                if bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0 {
                    ready |= READ;
                }
                if bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0 {
                    ready |= WRITE;
                }
                out.push((token, ready));
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(unix)]
mod pollfds {
    use super::{Event, READ, WRITE};
    use std::io;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;
    const POLLNVAL: i16 = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Interest tracked in user space; the pollfd array is rebuilt per
    /// wait. O(n) per call, which is fine for a fallback backend.
    #[derive(Debug, Default)]
    pub struct Poll {
        entries: Vec<(u64, i32, u8)>, // (token, fd, interest)
    }

    impl Poll {
        pub fn add(&mut self, token: u64, fd: i32, interest: u8) -> io::Result<()> {
            self.remove(token);
            self.entries.push((token, fd, interest));
            Ok(())
        }

        pub fn modify(&mut self, token: u64, fd: i32, interest: u8) -> io::Result<()> {
            self.add(token, fd, interest)
        }

        pub fn remove(&mut self, token: u64) {
            self.entries.retain(|&(t, _, _)| t != token);
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .entries
                .iter()
                .map(|&(_, fd, interest)| PollFd {
                    fd,
                    events: if interest & READ != 0 { POLLIN } else { 0 }
                        | if interest & WRITE != 0 { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pfd, &(token, _, _)) in fds.iter().zip(self.entries.iter()) {
                let mut ready = 0u8;
                if pfd.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0 {
                    ready |= READ;
                }
                if pfd.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0 {
                    ready |= WRITE;
                }
                if ready != 0 {
                    out.push((token, ready));
                }
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
mod spin {
    use super::{Event, READ, WRITE};
    use std::io;

    /// Sleep-tick emulation: every registered token reports as fully
    /// ready each tick; non-blocking handlers sort out the truth.
    #[derive(Debug, Default)]
    pub struct Spin {
        tokens: Vec<(u64, u8)>,
    }

    impl Spin {
        pub fn add(&mut self, token: u64, interest: u8) -> io::Result<()> {
            self.remove(token);
            self.tokens.push((token, interest));
            Ok(())
        }

        pub fn remove(&mut self, token: u64) {
            self.tokens.retain(|&(t, _)| t != token);
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let ms = if timeout_ms < 0 { 1 } else { timeout_ms.min(1) };
            std::thread::sleep(std::time::Duration::from_millis(ms as u64));
            for &(token, interest) in &self.tokens {
                let ready = interest & (READ | WRITE);
                if ready != 0 {
                    out.push((token, ready));
                }
            }
            Ok(())
        }
    }
}

/// A cross-thread wakeup channel built from a loopback socket pair —
/// pure std, no extra fds beyond what the platform gives every test
/// server. The receiving end registers in the poller like any
/// connection; [`Waker::wake`] makes it readable.
#[derive(Debug)]
pub struct Waker {
    tx: std::sync::Mutex<std::net::TcpStream>,
}

impl Waker {
    /// Builds the pair: the `Waker` half is `Send + Sync` for workers
    /// and the public [`crate::Server`] handle; the stream half goes
    /// into the reactor's poller.
    pub fn pair() -> io::Result<(Waker, std::net::TcpStream)> {
        let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
        let tx = std::net::TcpStream::connect(listener.local_addr()?)?;
        let (rx, _) = listener.accept()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok((
            Waker {
                tx: std::sync::Mutex::new(tx),
            },
            rx,
        ))
    }

    /// Makes the reactor's receiving end readable. Best-effort: a full
    /// socket buffer means wakeups are already pending, which is all a
    /// level-triggered loop needs.
    pub fn wake(&self) {
        use std::io::Write as _;
        let mut tx = self
            .tx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = tx.write(&[1]);
    }
}

/// Drains all pending wakeup bytes from the receiving end.
pub fn drain_waker(rx: &mut std::net::TcpStream) {
    use std::io::Read as _;
    let mut scratch = [0u8; 256];
    loop {
        match rx.read(&mut scratch) {
            Ok(n) if n > 0 => {}
            _ => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    fn backends() -> Vec<Poller> {
        let mut v = vec![Poller::new(false)];
        if v[0].backend() == "epoll" {
            v.push(Poller::new(true));
        }
        v
    }

    #[test]
    fn reports_readability_on_both_backends() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (mut rx, _) = listener.accept().unwrap();
            rx.set_nonblocking(true).unwrap();
            poller.add(7, &rx, READ).unwrap();

            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(
                events.iter().all(|&(t, r)| t != 7 || r & READ == 0),
                "{}: idle socket reported readable",
                poller.backend()
            );

            tx.write_all(b"x").unwrap();
            tx.flush().unwrap();
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            loop {
                poller
                    .wait(&mut events, Some(Duration::from_millis(50)))
                    .unwrap();
                if events.iter().any(|&(t, r)| t == 7 && r & READ != 0) {
                    break;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "{}: write never became readable",
                    poller.backend()
                );
            }
            let mut byte = [0u8; 8];
            assert_eq!(rx.read(&mut byte).unwrap(), 1);
            poller.remove(7, &rx);
        }
    }

    #[test]
    fn write_interest_fires_and_modify_silences_it() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let _tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (rx, _) = listener.accept().unwrap();
            rx.set_nonblocking(true).unwrap();
            poller.add(3, &rx, READ | WRITE).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            assert!(
                events.iter().any(|&(t, r)| t == 3 && r & WRITE != 0),
                "{}: empty send buffer should be writable",
                poller.backend()
            );
            poller.modify(3, &rx, READ).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(
                events.iter().all(|&(t, r)| t != 3 || r & WRITE == 0),
                "{}: write interest should be gone after modify",
                poller.backend()
            );
            poller.remove(3, &rx);
        }
    }

    #[test]
    fn waker_wakes_through_the_poller() {
        for mut poller in backends() {
            let (waker, mut rx) = Waker::pair().unwrap();
            poller.add(1, &rx, READ).unwrap();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                waker.wake();
                waker
            });
            let mut events = Vec::new();
            let deadline = std::time::Instant::now() + Duration::from_secs(2);
            loop {
                poller
                    .wait(&mut events, Some(Duration::from_millis(100)))
                    .unwrap();
                if events.iter().any(|&(t, r)| t == 1 && r & READ != 0) {
                    break;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "{}: wake never arrived",
                    poller.backend()
                );
            }
            drain_waker(&mut rx);
            let _ = handle.join().unwrap();
            poller.remove(1, &rx);
        }
    }
}
