//! A bounded MPMC job queue with non-blocking admission.
//!
//! Admission is `try_push`: when the queue is at capacity the caller
//! gets the item back immediately and answers 429 — backpressure is a
//! protocol response, never a blocked acceptor. Consumers block in
//! `pop` until an item arrives or the queue is closed *and* drained,
//! which is exactly the graceful-shutdown contract: close, then let the
//! workers finish what was already admitted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// The bounded queue.
#[derive(Debug)]
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    cap: usize,
    closed: bool,
}

impl<T> Bounded<T> {
    /// An empty queue admitting at most `cap` items (clamped to ≥ 1).
    pub fn new(cap: usize) -> Bounded<T> {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                cap: cap.max(1),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admits `item`, or returns it when the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().expect("queue lock");
        if s.closed || s.items.len() >= s.cap {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).expect("queue lock");
        }
    }

    /// Closes the queue: admission stops, consumers drain then see
    /// `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = Bounded::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(3), "no admission after close");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays closed");
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.try_push(7).unwrap();
        q.try_push(8).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![7, 8]);
    }
}
