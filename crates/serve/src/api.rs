//! The service API: endpoints, job parsing, and response bodies.
//!
//! `POST /schedule` accepts either a raw `.dfg` text body (knobs in the
//! query string) or a flat JSON job object naming a built-in benchmark
//! or carrying the DFG inline. The success body for `emit=json` is
//! [`point_json`] — a **pure function of the design point and its
//! metrics**, shared with `mfhls schedule --json`, so a served answer
//! is byte-identical to the serial CLI output.
//!
//! Status codes: 200 served, 400 malformed input (DFG parse errors,
//! bad knobs, unknown benchmark), 404 unknown endpoint, 405 wrong
//! method, 413 oversized body, 422 well-formed but unschedulable
//! (e.g. `cs` below the critical path), 429 queue full (emitted by the
//! acceptor), 504 deadline exceeded.

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use hls_benchmarks::classic;
use hls_celllib::{ClockPeriod, Library, OpKind, TimingSpec};
use hls_dfg::{parse_dfg, Dfg, FuClass};
use hls_explore::{default_threads, run_indexed, Algorithm, DesignPoint, Engine, PointMetrics};
use hls_schedule::render_schedule;
use hls_telemetry::{Instrument, Metrics, NullSink};
use moveframe::mfs::MfsConfig;
use moveframe::mfsa::{DesignStyle, MfsaConfig, Weights};
use moveframe::{mfs, mfsa, CancelToken};

use crate::http::{Request, Response};
use crate::json::{self, JsonValue};

/// What `POST /schedule` should return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Emit {
    /// The cached JSON stats line (default).
    #[default]
    Json,
    /// The human-readable schedule table (MFS/MFSA only; bypasses the
    /// cache because it needs the full schedule, not the metrics).
    Text,
    /// Graphviz DOT of the parsed DFG (no scheduling).
    Dot,
}

/// One fully parsed scheduling job.
#[derive(Debug, Clone)]
pub struct Job {
    /// The graph to schedule. Shared: benchmark graphs are built once
    /// per process, and a parsed inline DFG is not cloned per tier.
    pub dfg: Arc<Dfg>,
    /// The timing model, derived from the chaining/multiplier knobs
    /// exactly as the CLI derives it.
    pub spec: TimingSpec,
    /// The content fingerprint of `(dfg, spec)`, computed once at
    /// parse time and shared by the warm probe and the engine lookup.
    pub dfg_fp: u64,
    /// The design point (algorithm × constraint × knobs).
    pub point: DesignPoint,
    /// Requested output form.
    pub emit: Emit,
    /// Per-request deadline override in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// The shared application state behind every worker.
#[derive(Debug)]
pub struct AppState {
    engine: Engine,
    metrics: Mutex<Metrics>,
    default_deadline_ms: Option<u64>,
}

impl AppState {
    /// State with a result cache capped at `cache_cap` entries and an
    /// optional default per-request deadline (memory-only cache).
    pub fn new(cache_cap: usize, default_deadline_ms: Option<u64>) -> AppState {
        Self::with_options(cache_cap, default_deadline_ms, None)
            .expect("a memory-only state does no I/O")
    }

    /// Like [`AppState::new`], optionally backing the result cache
    /// with a content-addressed on-disk layer at `cache_dir` — warm
    /// answers then survive daemon restarts.
    pub fn with_options(
        cache_cap: usize,
        default_deadline_ms: Option<u64>,
        cache_dir: Option<&std::path::Path>,
    ) -> std::io::Result<AppState> {
        let engine = match cache_dir {
            Some(dir) => Engine::with_disk(hls_explore::DEFAULT_FRAMES_CAP, cache_cap, dir)?,
            None => Engine::with_caps(hls_explore::DEFAULT_FRAMES_CAP, cache_cap),
        };
        Ok(AppState {
            engine,
            metrics: Mutex::new(Metrics::new()),
            default_deadline_ms,
        })
    }

    /// The exploration engine (cache included).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The shared registry, recovering from poison: a caught panic in
    /// one request must not take the metrics (and with them every later
    /// request) down for the life of the daemon.
    fn locked_metrics(&self) -> std::sync::MutexGuard<'_, Metrics> {
        self.metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds `by` to counter `name` in the shared registry.
    pub fn inc(&self, name: String, by: u64) {
        self.locked_metrics().inc(name, by);
    }

    /// Records `value` into histogram `name` in the shared registry.
    pub fn observe(&self, name: impl Into<Cow<'static, str>>, value: u64) {
        self.locked_metrics().observe(name, value);
    }

    /// A snapshot of the shared registry plus the engine's cache
    /// hit/miss/evict totals (`serve.cache.*`).
    pub fn metrics_snapshot(&self) -> Metrics {
        let mut m = self.locked_metrics().clone();
        let r = self.engine.cache().results_stats();
        let f = self.engine.cache().frames_stats();
        m.inc("serve.cache.results.hits", r.hits);
        m.inc("serve.cache.results.misses", r.misses);
        m.inc("serve.cache.results.evictions", r.evictions);
        m.inc("serve.cache.frames.hits", f.hits);
        m.inc("serve.cache.frames.misses", f.misses);
        m.inc("serve.cache.frames.evictions", f.evictions);
        if let Some(d) = self.engine.cache().disk_stats() {
            m.inc("serve.cache.disk.hits", d.hits);
            m.inc("serve.cache.disk.misses", d.misses);
            m.inc("serve.cache.disk.writes", d.writes);
            m.inc("serve.cache.disk.corrupt", d.corrupt);
            m.inc("serve.cache.disk.errors", d.errors);
        }
        m
    }
}

const INDEX: &str = "mfhls serve — synthesis as a service\n\
\n\
  GET  /healthz            liveness probe\n\
  GET  /metrics            Prometheus text metrics\n\
  POST /schedule           schedule a DFG\n\
  POST /batch              schedule many jobs in one request\n\
\n\
POST a raw .dfg text body with knobs in the query string\n\
(?alg=mfs&cs=4&limit=mul:2&chain=100&latency=2&style=2&\n\
 weights=1,1,1,1&two_cycle_mul=1&iterate=N&emit=json|text|dot&\n\
 deadline_ms=N),\n\
or a flat JSON job: {\"benchmark\":\"diffeq\",\"alg\":\"mfs\",\"cs\":4}\n\
(benchmarks: diffeq fir ar ewf facet dct8 bandpass, iterate-tuned\n\
 variants diffeq_iter fir_iter ewf_iter, and memory kernels\n\
 array_fir matvec with _p1/_p4 port variants; or \"dfg\":\"...\").\n\
iterate=N refines the one-shot mfs/mfsa schedule with N rounds of\n\
feedback-guided re-scheduling; iterate=0 is the one-shot answer.\n\
/batch takes a JSON array of job objects; query-string knobs are\n\
per-batch defaults, each job's keys override them. The answer is one\n\
JSON array, in request order, of the same bodies /schedule would\n\
give (errors inline as {\"error\":...,\"status\":N}).\n";

/// Routes one parsed request to its handler.
pub fn handle(state: &AppState, req: &Request, enqueued: Instant) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/") => Response::text(200, INDEX),
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => Response::text(200, state.metrics_snapshot().render_prometheus()),
        ("POST", "/schedule") => match parse_job(req) {
            Ok(job) => run_job(state, &job, enqueued),
            Err(message) => Response::error(400, &message),
        },
        ("POST", "/batch") => run_batch(state, req, enqueued),
        (_, "/schedule") | (_, "/batch") | (_, "/healthz") | (_, "/metrics") | (_, "/") => {
            Response::error(405, &format!("{} is not supported here", req.method))
        }
        (_, path) => Response::error(404, &format!("no such endpoint: {path}")),
    }
}

/// A built-in benchmark graph by name.
pub fn benchmark(name: &str) -> Option<Dfg> {
    benchmark_arc(name).map(|dfg| (*dfg).clone())
}

/// The build-once shared instance behind [`benchmark`]. The serving
/// hot path resolves thousands of requests per second against the
/// same few graphs; constructing one costs ~20µs, which at one point
/// dominated the whole warm-hit budget.
fn benchmark_arc(name: &str) -> Option<Arc<Dfg>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<Dfg>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(Mutex::default);
    if let Some(dfg) = cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(name)
    {
        return Some(dfg.clone());
    }
    let dfg = Arc::new(build_benchmark(name)?);
    cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(name.to_string(), dfg.clone());
    Some(dfg)
}

fn build_benchmark(name: &str) -> Option<Dfg> {
    match name {
        "diffeq" => Some(classic::diffeq()),
        "fir" => Some(classic::fir(16)),
        "ar" => Some(classic::ar_filter()),
        "ewf" => Some(classic::ewf()),
        "facet" => Some(classic::facet_style()),
        "dct8" => Some(classic::dct8()),
        "bandpass" => Some(classic::bandpass()),
        // Iterate-tuned variants: graphs with enough slack structure
        // for `iterate=N` to show measurable refinement. `fir_iter`
        // widens the tap count; the others pin the classic graphs
        // under their iterate-bench names so BENCH_iterate rows can
        // be reproduced against the daemon verbatim.
        "diffeq_iter" => Some(classic::diffeq()),
        "fir_iter" => Some(classic::fir(24)),
        "ewf_iter" => Some(classic::ewf()),
        // Memory kernels, with 1/2/4-port bank variants.
        "array_fir" => Some(hls_benchmarks::memory::array_fir(8, 2)),
        "array_fir_p1" => Some(hls_benchmarks::memory::array_fir(8, 1)),
        "array_fir_p4" => Some(hls_benchmarks::memory::array_fir(8, 4)),
        "matvec" => Some(hls_benchmarks::memory::matvec(3, 2)),
        "matvec_p1" => Some(hls_benchmarks::memory::matvec(3, 1)),
        "matvec_p4" => Some(hls_benchmarks::memory::matvec(3, 4)),
        _ => None,
    }
}

/// Resolves the graph a knob set names: inline `"dfg"` text XOR a
/// `"benchmark"` registry entry.
fn dfg_from_knobs(knobs: &BTreeMap<String, JsonValue>) -> Result<Arc<Dfg>, String> {
    match (knobs.get("dfg"), knobs.get("benchmark")) {
        (Some(_), Some(_)) => Err("give either \"dfg\" or \"benchmark\", not both".into()),
        (Some(v), None) => {
            let text = v.as_str().ok_or("\"dfg\" must be a string")?;
            parse_dfg(text).map(Arc::new).map_err(|e| e.to_string())
        }
        (None, Some(v)) => {
            let name = v.as_str().ok_or("\"benchmark\" must be a string")?;
            benchmark_arc(name).ok_or_else(|| format!("unknown benchmark `{name}`"))
        }
        (None, None) => Err("a JSON job needs \"dfg\" or \"benchmark\"".into()),
    }
}

/// Parses the request's query string and body into a [`Job`]; the
/// error string becomes the 400 body.
pub fn parse_job(req: &Request) -> Result<Job, String> {
    let body = std::str::from_utf8(&req.body).map_err(|_| "body is not UTF-8".to_string())?;
    // Knobs: query pairs first, JSON keys override.
    let mut knobs: BTreeMap<String, JsonValue> = req
        .query
        .iter()
        .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
        .collect();
    let dfg = if body.trim_start().starts_with('{') {
        let job = json::parse_flat_object(body).map_err(|e| format!("invalid JSON job: {e}"))?;
        knobs.extend(job);
        dfg_from_knobs(&knobs)?
    } else if body.trim().is_empty() {
        if !knobs.contains_key("benchmark") && !knobs.contains_key("dfg") {
            return Err("empty body: POST a .dfg text or a JSON job".into());
        }
        dfg_from_knobs(&knobs)?
    } else {
        Arc::new(parse_dfg(body).map_err(|e| e.to_string())?)
    };
    job_from_knobs(dfg, &knobs)
}

/// Builds a [`Job`] from a resolved graph plus its knob set — the
/// shared back half of [`parse_job`] and the `/batch` item parser.
fn job_from_knobs(dfg: Arc<Dfg>, knobs: &BTreeMap<String, JsonValue>) -> Result<Job, String> {
    let get_str = |k: &str| knobs.get(k).and_then(|v| v.as_str().map(str::to_string));
    let get_u32 = |k: &str| -> Result<Option<u32>, String> {
        match knobs.get(k) {
            None => Ok(None),
            Some(JsonValue::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .map(Some)
                .ok_or_else(|| format!("`{k}` must be a non-negative integer")),
        }
    };
    let get_bool = |k: &str| -> Result<bool, String> {
        match knobs.get(k) {
            None | Some(JsonValue::Null) => Ok(false),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| format!("`{k}` must be a boolean")),
        }
    };

    let emit = match get_str("emit").as_deref() {
        None | Some("json") => Emit::Json,
        Some("text") => Emit::Text,
        Some("dot") => Emit::Dot,
        Some(other) => return Err(format!("unknown emit form `{other}` (json|text|dot)")),
    };

    let algorithm = match get_str("alg").as_deref() {
        None => Algorithm::Mfs,
        Some(name) => {
            Algorithm::parse(name).ok_or_else(|| format!("unknown algorithm `{name}`"))?
        }
    };
    let cs = match get_u32("cs")? {
        Some(cs) if cs >= 1 => cs,
        Some(_) => return Err("`cs` must be at least 1".into()),
        // DOT rendering never schedules, so a placeholder is fine.
        None if emit == Emit::Dot => 1,
        None => return Err("missing `cs` (the control-step constraint)".into()),
    };

    let mut point = DesignPoint::new(algorithm, cs);
    if let Some(spec) = get_str("limit") {
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (op, n) = part
                .split_once(':')
                .or_else(|| part.split_once('='))
                .ok_or_else(|| format!("`limit` entry `{part}` is not OP:N"))?;
            let op: OpKind = op.parse().map_err(|e| format!("{e}"))?;
            let n: u32 =
                n.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                    format!("`limit` count in `{part}` must be a positive integer")
                })?;
            point.fu_limits.insert(FuClass::Op(op), n);
        }
    }
    if let Some(spec) = get_str("pipeline") {
        for name in spec.split(',').filter(|p| !p.is_empty()) {
            let op: OpKind = name.parse().map_err(|e| format!("{e}"))?;
            point.pipeline_ops.insert(op);
        }
    }
    point.clock = match get_u32("chain")? {
        // ClockPeriod::new panics on zero; reject it here as a 400.
        Some(0) => return Err("`chain` (clock period in ns) must be at least 1".into()),
        other => other,
    };
    point.latency = get_u32("latency")?;
    point.iterate = get_u32("iterate")?.unwrap_or(0);
    match get_u32("style")? {
        None | Some(1) => {}
        Some(2) => point.style = 2,
        Some(other) => return Err(format!("unknown design style `{other}` (1|2)")),
    }
    if let Some(w) = get_str("weights") {
        let parts: Vec<u32> = w
            .split(',')
            .map(|p| p.trim().parse::<u32>())
            .collect::<Result<_, _>>()
            .map_err(|_| "`weights` must be four integers T,A,M,R".to_string())?;
        if parts.len() != 4 {
            return Err("`weights` must be four integers T,A,M,R".into());
        }
        point.weights = Some((parts[0], parts[1], parts[2], parts[3]));
    }
    if let Some(label) = get_str("label") {
        point.label = label;
    }
    let two_cycle_mul = get_bool("two_cycle_mul")?;
    let spec = if point.clock.is_some() {
        TimingSpec::with_delays()
    } else if two_cycle_mul {
        TimingSpec::two_cycle_multiply()
    } else {
        TimingSpec::uniform_single_cycle()
    };
    let deadline_ms = match knobs.get("deadline_ms") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or("`deadline_ms` must be a non-negative integer")?,
        ),
    };
    let dfg_fp = hls_explore::dfg_fingerprint(&dfg, &spec);
    Ok(Job {
        dfg,
        spec,
        dfg_fp,
        point,
        emit,
        deadline_ms,
    })
}

/// The canonical JSON stats body of a scheduled point (one line,
/// newline-terminated). `mfhls schedule --json` / `synth --json` print
/// exactly this, which is what makes served responses diffable against
/// the CLI.
pub fn point_json(point: &DesignPoint, m: &PointMetrics) -> String {
    let mut s = String::from("{\"label\":\"");
    json::escape_into(&mut s, &point.display_label());
    let _ = write!(
        s,
        "\",\"algorithm\":\"{}\",\"csteps\":{},\"mix\":\"",
        point.algorithm, m.csteps
    );
    json::escape_into(&mut s, &m.mix);
    let _ = write!(
        s,
        "\",\"fu_cost\":{},\"registers\":{},\"reschedules\":{}",
        m.fu_cost, m.registers, m.reschedules
    );
    if !m.mem.is_empty() {
        s.push_str(",\"mem\":[");
        for (i, b) in m.mem.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"bank\":\"");
            json::escape_into(&mut s, &b.bank);
            let _ = write!(s, "\",\"ports\":{},\"peak\":{}}}", b.ports, b.peak);
        }
        s.push(']');
    }
    if let Some(d) = &m.mfsa {
        s.push_str(",\"alus\":\"");
        json::escape_into(&mut s, &d.alus);
        let _ = write!(
            s,
            "\",\"total_cost\":{},\"mux\":{},\"muxin\":{}",
            d.total_cost, d.mux, d.muxin
        );
    }
    s.push_str("}\n");
    s
}

/// The refinement config a point implies: iteration count, chaining
/// clock, and latency (the refiner itself rejects latency as
/// unsupported, which keeps text and JSON answers consistent).
fn iterate_config(point: &DesignPoint) -> hls_iterate::IterateConfig {
    let mut config = hls_iterate::IterateConfig::new(point.iterate);
    config.clock = point.clock.map(ClockPeriod::new);
    config.latency = point.latency;
    config
}

/// The job's effective deadline instant, if it has one: the window
/// opens at `enqueued`, so it covers queue wait + compute, and an
/// overloaded server times requests out instead of silently serving
/// them late.
fn deadline_instant(state: &AppState, job: &Job, enqueued: Instant) -> Option<Instant> {
    job.deadline_ms
        .or(state.default_deadline_ms)
        .map(|ms| enqueued + Duration::from_millis(ms))
}

/// Builds the cancellation token for a job admitted at `enqueued`.
fn deadline_token(deadline: Option<Instant>) -> CancelToken {
    match deadline {
        Some(at) => CancelToken::deadline_at(at),
        None => CancelToken::never(),
    }
}

fn error_response(state: &AppState, message: &str) -> Response {
    if message.starts_with("cancelled") {
        state.inc("serve.jobs.deadline".into(), 1);
        Response::error(504, "deadline exceeded")
    } else {
        Response::error(422, message)
    }
}

/// Runs a parsed job and renders the response.
pub fn run_job(state: &AppState, job: &Job, enqueued: Instant) -> Response {
    state.inc("serve.jobs".into(), 1);
    let deadline = deadline_instant(state, job, enqueued);
    let cancel = deadline_token(deadline);
    let response = match job.emit {
        Emit::Dot => Response::text(200, job.dfg.to_dot()),
        Emit::Json => {
            let mut sink = NullSink;
            let mut metrics = Metrics::new();
            let (outcome, warm) = {
                let mut instr = Instrument::new(&mut sink, &mut metrics);
                state.engine.schedule_point_fp(
                    job.dfg_fp, &job.dfg, &job.spec, &job.point, &cancel, &mut instr,
                )
            };
            state.locked_metrics().merge(&metrics);
            state.inc(
                if warm {
                    "serve.jobs.warm".into()
                } else {
                    "serve.jobs.cold".into()
                },
                1,
            );
            match outcome {
                Ok(m) => Response::json(200, point_json(&job.point, &m)),
                Err(e) => error_response(state, &e),
            }
        }
        Emit::Text => {
            // The text form needs the full schedule, which the metrics
            // cache does not keep — run the scheduler directly.
            let mut sink = NullSink;
            let mut metrics = Metrics::new();
            let point = &job.point;
            let rendered = {
                let mut instr = Instrument::new(&mut sink, &mut metrics);
                match point.algorithm {
                    Algorithm::Mfs => {
                        let mut config =
                            MfsConfig::time_constrained(point.cs).with_cancel(cancel.clone());
                        for (&class, &limit) in &point.fu_limits {
                            config = config.with_fu_limit(class, limit);
                        }
                        if let Some(clock) = point.clock {
                            config = config.with_chaining(ClockPeriod::new(clock));
                        }
                        if let Some(l) = point.latency {
                            config = config.with_latency(l);
                        }
                        mfs::schedule_traced(&job.dfg, &job.spec, &config, &mut instr)
                            .map_err(|e| e.to_string())
                            .and_then(|out| {
                                let mut schedule = out.schedule;
                                if point.iterate > 0 {
                                    schedule = hls_iterate::refine(
                                        &job.dfg,
                                        &job.spec,
                                        &schedule,
                                        &iterate_config(point),
                                        &mut instr,
                                    )
                                    .map_err(|e| e.to_string())?
                                    .schedule;
                                }
                                Ok(render_schedule(&job.dfg, &schedule, &job.spec))
                            })
                    }
                    Algorithm::Mfsa => {
                        let library = Library::ncr_like();
                        let mut config = MfsaConfig::new(point.cs, library.clone())
                            .with_cancel(cancel.clone())
                            .with_style(if point.style == 2 {
                                DesignStyle::NoSelfLoop
                            } else {
                                DesignStyle::Unrestricted
                            });
                        if let Some((time, alu, mux, reg)) = point.weights {
                            config = config.with_weights(Weights {
                                time,
                                alu,
                                mux,
                                reg,
                            });
                        }
                        if let Some(clock) = point.clock {
                            config = config.with_chaining(ClockPeriod::new(clock));
                        }
                        if let Some(l) = point.latency {
                            config = config.with_latency(l);
                        }
                        mfsa::schedule_traced(&job.dfg, &job.spec, &config, &mut instr)
                            .map_err(|e| e.to_string())
                            .and_then(|mut out| {
                                if point.iterate > 0 {
                                    hls_iterate::refine_mfsa(
                                        &job.dfg,
                                        &job.spec,
                                        &library,
                                        &mut out,
                                        &iterate_config(point),
                                        &mut instr,
                                    )
                                    .map_err(|e| e.to_string())?;
                                }
                                Ok(format!(
                                    "{}{}{}\n",
                                    render_schedule(&job.dfg, &out.schedule, &job.spec),
                                    out.datapath,
                                    out.cost
                                ))
                            })
                    }
                    other => Err(format!("emit=text supports alg=mfs|mfsa, not {other}")),
                }
            };
            state.locked_metrics().merge(&metrics);
            match rendered {
                Ok(text) => Response::text(200, text),
                Err(e) if e.starts_with("emit=text") => Response::error(400, &e),
                Err(e) => error_response(state, &e),
            }
        }
    };
    response.with_deadline(deadline)
}

/// The reactor's inline warm path: answers a `POST /schedule`
/// `emit=json` request straight from the memory result tier, with no
/// worker handoff. `None` means "not answerable here" — hand the
/// request to the worker pool, which owns compute, disk I/O, deadline
/// cancellation and panic isolation. The probe never blocks, so the
/// event loop may call it for every parsed request; a cold request
/// pays one redundant parse (~µs) against a compute that costs
/// milliseconds.
pub fn try_warm(state: &AppState, req: &Request, enqueued: Instant) -> Option<Response> {
    if req.method != "POST" || req.path != "/schedule" {
        return None;
    }
    let job = parse_job(req).ok()?;
    if job.emit != Emit::Json {
        return None;
    }
    let outcome = state.engine.peek_point(job.dfg_fp, &job.point)?;
    state.inc("serve.jobs".into(), 1);
    state.inc("serve.jobs.warm".into(), 1);
    state.inc("serve.fastpath.hits".into(), 1);
    state.inc("explore.cache.hit".into(), 1);
    let deadline = deadline_instant(state, &job, enqueued);
    let response = match outcome {
        Ok(m) => Response::json(200, point_json(&job.point, &m)),
        Err(e) => error_response(state, &e),
    };
    Some(response.with_deadline(deadline))
}

/// Most jobs one `/batch` request may carry.
const MAX_BATCH: usize = 256;

/// `POST /batch`: a JSON array of flat job objects, answered as one
/// JSON array in request order. Jobs fan out over the exploration
/// crate's self-scheduling pool; the shared cache still computes each
/// unique point exactly once, and every item's body is byte-identical
/// to what `/schedule` would have answered (so batching is a pure
/// transport optimisation). Per-job failures come back inline as
/// `{"error":...,"status":N}` items; only a malformed batch itself is
/// a request-level 400.
pub fn run_batch(state: &AppState, req: &Request, enqueued: Instant) -> Response {
    let body = match std::str::from_utf8(&req.body) {
        Ok(b) => b,
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let items = match json::parse_flat_array(body) {
        Ok(items) => items,
        Err(e) => return Response::error(400, &format!("invalid batch body: {e}")),
    };
    if items.is_empty() {
        return Response::error(400, "empty batch: send at least one job object");
    }
    if items.len() > MAX_BATCH {
        return Response::error(
            400,
            &format!("batch of {} exceeds the {MAX_BATCH}-job cap", items.len()),
        );
    }
    state.inc("serve.batch.requests".into(), 1);
    state.inc("serve.batch.jobs".into(), items.len() as u64);
    // Query-string knobs are batch-wide defaults; job keys override.
    let defaults: BTreeMap<String, JsonValue> = req
        .query
        .iter()
        .map(|(k, v)| (k.clone(), JsonValue::Str(v.clone())))
        .collect();
    let jobs: Vec<Result<Job, String>> = items
        .into_iter()
        .map(|item| {
            let mut knobs = defaults.clone();
            knobs.extend(item);
            let job = dfg_from_knobs(&knobs).and_then(|dfg| job_from_knobs(dfg, &knobs))?;
            if job.emit != Emit::Json {
                return Err("batch jobs support emit=json only".into());
            }
            Ok(job)
        })
        .collect();
    let n = jobs.len();
    let outputs = run_indexed(n, default_threads().min(n), |i| match &jobs[i] {
        Ok(job) => batch_item(&run_job(state, job, enqueued)),
        Err(message) => batch_item(&Response::error(400, message)),
    });
    let mut out = String::with_capacity(outputs.iter().map(String::len).sum::<usize>() + n + 3);
    out.push('[');
    for (i, item) in outputs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(item);
    }
    out.push_str("]\n");
    Response::json(200, out)
}

/// One `/batch` response item: the `/schedule` body verbatim (minus
/// its trailing newline) on success, or the error body with the HTTP
/// status it would have carried spliced in.
fn batch_item(response: &Response) -> String {
    let body = String::from_utf8_lossy(&response.body);
    let trimmed = body.trim_end();
    if response.status == 200 {
        return trimmed.to_string();
    }
    match trimmed.strip_suffix('}') {
        Some(head) => format!("{head},\"status\":{}}}", response.status),
        None => format!("{{\"error\":\"internal\",\"status\":{}}}", response.status),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, target: &str, body: &str) -> Request {
        let (path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p, q),
            None => (target, ""),
        };
        Request {
            method: method.into(),
            path: path.into(),
            query: raw_query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (pair.to_string(), String::new()),
                })
                .collect(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn state() -> AppState {
        AppState::new(1024, None)
    }

    const TOY: &str = "input a, b\nop p = mul(a, b)\nop q = add(p, b)\n";

    #[test]
    fn healthz_and_index() {
        let s = state();
        let now = Instant::now();
        let r = handle(&s, &request("GET", "/healthz", ""), now);
        assert_eq!((r.status, r.body.as_slice()), (200, b"ok\n".as_slice()));
        assert_eq!(handle(&s, &request("GET", "/", ""), now).status, 200);
        assert_eq!(handle(&s, &request("GET", "/nope", ""), now).status, 404);
        assert_eq!(handle(&s, &request("PUT", "/healthz", ""), now).status, 405);
    }

    #[test]
    fn schedules_a_dfg_text_body() {
        let s = state();
        let r = handle(&s, &request("POST", "/schedule?cs=2", TOY), Instant::now());
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.starts_with("{\"label\":\"mfs@T2\",\"algorithm\":\"mfs\",\"csteps\":2,"));
        assert!(body.ends_with("}\n"));
    }

    #[test]
    fn schedules_a_benchmark_json_job_and_reuses_the_cache() {
        let s = state();
        let job = r#"{"benchmark":"diffeq","alg":"mfs","cs":4}"#;
        let first = handle(&s, &request("POST", "/schedule", job), Instant::now());
        assert_eq!(first.status, 200);
        let second = handle(&s, &request("POST", "/schedule", job), Instant::now());
        assert_eq!(second.status, 200);
        assert_eq!(first.body, second.body, "repeat requests are identical");
        let m = s.metrics_snapshot();
        assert_eq!(m.counter("serve.jobs.cold"), 1);
        assert_eq!(m.counter("serve.jobs.warm"), 1);
        assert_eq!(m.counter("serve.cache.results.hits"), 1);
        assert_eq!(m.counter("serve.cache.results.misses"), 1);
    }

    #[test]
    fn malformed_inputs_are_400() {
        let s = state();
        let now = Instant::now();
        for (target, body) in [
            ("/schedule?cs=2", "input a\nop p = mul(a, missing)\n"),
            ("/schedule?cs=2", "op p = mul(a\n"),
            ("/schedule?cs=2", "{\"benchmark\":\"nope\",\"cs\":2}"),
            ("/schedule?cs=2", "{\"cs\":2}"),
            ("/schedule?cs=2", "{broken json"),
            ("/schedule", TOY),                        // missing cs
            ("/schedule?cs=0", TOY),                   // zero cs
            ("/schedule?cs=2&alg=bogus", TOY),         // unknown algorithm
            ("/schedule?cs=2&limit=mul", TOY),         // malformed limit
            ("/schedule?cs=2&emit=yaml", TOY),         // unknown emit
            ("/schedule?cs=2&weights=1,2", TOY),       // short weights
            ("/schedule?cs=2&chain=0", TOY),           // zero clock period
            ("/schedule?cs=2&chain=0&emit=text", TOY), // ... on the uncached path too
            ("/schedule?cs=2&style=7", TOY),           // unknown style
            ("/schedule?cs=2&iterate=soon", TOY),      // bad iterate count
            ("/schedule?cs=2&deadline_ms=soon", TOY),  // bad deadline
        ] {
            let r = handle(&s, &request("POST", target, body), now);
            assert_eq!(r.status, 400, "{target} {body:?}");
            assert!(r.body.starts_with(b"{\"error\":\""), "{target}");
        }
    }

    #[test]
    fn infeasible_schedules_are_422() {
        let s = state();
        let r = handle(
            &s,
            &request("POST", "/schedule?cs=1", TOY), // below the critical path
            Instant::now(),
        );
        assert_eq!(r.status, 422, "{:?}", String::from_utf8_lossy(&r.body));
    }

    #[test]
    fn expired_deadlines_are_504_and_not_cached() {
        let s = state();
        let job = r#"{"benchmark":"diffeq","cs":4,"deadline_ms":0}"#;
        let r = handle(&s, &request("POST", "/schedule", job), Instant::now());
        assert_eq!(r.status, 504);
        // The poisoned result must not be served to a live request.
        let ok = handle(
            &s,
            &request("POST", "/schedule", r#"{"benchmark":"diffeq","cs":4}"#),
            Instant::now(),
        );
        assert_eq!(ok.status, 200);
        assert_eq!(s.metrics_snapshot().counter("serve.jobs.deadline"), 1);
    }

    #[test]
    fn emit_text_and_dot() {
        let s = state();
        let now = Instant::now();
        let text = handle(&s, &request("POST", "/schedule?cs=2&emit=text", TOY), now);
        assert_eq!(text.status, 200);
        assert!(String::from_utf8(text.body).unwrap().contains("step"));
        let synth = handle(
            &s,
            &request("POST", "/schedule?cs=3&alg=mfsa&emit=text", TOY),
            now,
        );
        assert_eq!(synth.status, 200);
        let dot = handle(&s, &request("POST", "/schedule?emit=dot", TOY), now);
        assert_eq!(dot.status, 200);
        assert!(String::from_utf8(dot.body).unwrap().starts_with("digraph"));
        let bad = handle(
            &s,
            &request("POST", "/schedule?cs=2&alg=list&emit=text", TOY),
            now,
        );
        assert_eq!(bad.status, 400);
        // The uncached text path must feed the shared registry too:
        // /metrics would otherwise undercount emit=text scheduler runs.
        let m = s.metrics_snapshot();
        assert!(m.counter("mfs.frames_computed") >= 1, "{m:?}");
        assert!(m.counter("mfsa.moves_committed") >= 1, "{m:?}");
    }

    #[test]
    fn mfsa_jobs_carry_the_datapath_detail() {
        let s = state();
        let r = handle(
            &s,
            &request("POST", "/schedule?cs=3&alg=mfsa", TOY),
            Instant::now(),
        );
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(body.contains("\"alus\":\""), "{body}");
        assert!(body.contains("\"total_cost\":"), "{body}");
    }

    #[test]
    fn memory_jobs_report_per_bank_pressure() {
        let s = state();
        let now = Instant::now();
        let job = r#"{"benchmark":"array_fir","alg":"mfsa","cs":28}"#;
        let r = handle(&s, &request("POST", "/schedule", job), now);
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let body = String::from_utf8(r.body).unwrap();
        assert!(
            body.contains("\"mem\":[{\"bank\":\"coeff_ram\",\"ports\":2,\"peak\":"),
            "{body}"
        );
        // A raw .dfg with banked arrays reports pressure too.
        let dfg = "input i, v\narray a[8] @ ram(ports=1)\nstore a[i] = v\nload x = a[i]\n";
        let r = handle(&s, &request("POST", "/schedule?cs=4", dfg), now);
        assert_eq!(r.status, 200, "{:?}", String::from_utf8_lossy(&r.body));
        let body = String::from_utf8(r.body).unwrap();
        assert!(
            body.contains("\"mem\":[{\"bank\":\"ram\",\"ports\":1,"),
            "{body}"
        );
        // Memory-free designs keep the historical shape: no "mem" key.
        let r = handle(&s, &request("POST", "/schedule?cs=2", TOY), now);
        assert_eq!(r.status, 200);
        let body = String::from_utf8(r.body).unwrap();
        assert!(!body.contains("\"mem\":"), "{body}");
    }

    #[test]
    fn malformed_memory_inputs_are_400_with_typed_messages() {
        let s = state();
        let now = Instant::now();
        for (text, needle) in [
            (
                "input v\narray a[4] @ m(ports=1)\nstore a[9] = v\n",
                "out of range",
            ),
            (
                "input i\narray a[4] @ m(ports=1)\nload v = nope[i]\n",
                "unknown array",
            ),
            (
                "input i, v\narray a[4] @ ghost\nstore a[i] = v\n",
                "unknown bank",
            ),
            (
                "input i\nbank ram(ports=0)\narray a[4] @ ram\nload v = a[i]\n",
                "port",
            ),
        ] {
            let r = handle(&s, &request("POST", "/schedule?cs=4", text), now);
            assert_eq!(r.status, 400, "{text:?}");
            let body = String::from_utf8(r.body).unwrap();
            assert!(body.starts_with("{\"error\":\""), "{body}");
            assert!(body.contains(needle), "{body} should mention {needle:?}");
        }
    }

    /// Pulls an integer field out of the one-line JSON stats body.
    fn stat(body: &str, key: &str) -> u32 {
        let tail = body
            .split(&format!("\"{key}\":"))
            .nth(1)
            .unwrap_or_else(|| panic!("{body} has no {key}"));
        tail.chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect(key)
    }

    #[test]
    fn iterate_jobs_refine_and_round_trip() {
        let s = state();
        let now = Instant::now();
        // The iterate-tuned registry variants resolve and round-trip
        // the iterate knob through the JSON label.
        for name in ["diffeq_iter", "fir_iter", "ewf_iter"] {
            assert!(benchmark(name).is_some(), "{name} missing from registry");
        }
        let oneshot = handle(
            &s,
            &request(
                "POST",
                "/schedule",
                r#"{"benchmark":"diffeq_iter","alg":"mfs","cs":8}"#,
            ),
            now,
        );
        assert_eq!(oneshot.status, 200);
        let refined = handle(
            &s,
            &request(
                "POST",
                "/schedule",
                r#"{"benchmark":"diffeq_iter","alg":"mfs","cs":8,"iterate":3}"#,
            ),
            now,
        );
        assert_eq!(refined.status, 200);
        let one = String::from_utf8(oneshot.body).unwrap();
        let re = String::from_utf8(refined.body).unwrap();
        assert!(re.contains("iter=3"), "{re}");
        // Refinement never worsens the (csteps, registers) objective.
        let before = (stat(&one, "csteps"), stat(&one, "registers"));
        let after = (stat(&re, "csteps"), stat(&re, "registers"));
        assert!(after <= before, "{after:?} vs {before:?}");
        // The uncached text path refines too, for both algorithms.
        let text = handle(
            &s,
            &request("POST", "/schedule?cs=8&iterate=2&emit=text", TOY),
            now,
        );
        assert_eq!(
            text.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&text.body)
        );
        let synth = handle(
            &s,
            &request("POST", "/schedule?cs=8&alg=mfsa&iterate=2&emit=text", TOY),
            now,
        );
        assert_eq!(
            synth.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&synth.body)
        );
        // The refiner composes with the baseline algorithms too.
        let lifted = handle(
            &s,
            &request("POST", "/schedule?cs=8&alg=fds&iterate=3", TOY),
            now,
        );
        assert_eq!(lifted.status, 200);
        // Knob combinations the refiner rejects are 422, on both the
        // engine path and the uncached text path.
        for target in [
            "/schedule?cs=8&iterate=2&latency=2",
            "/schedule?cs=8&iterate=2&latency=2&emit=text",
        ] {
            let r = handle(&s, &request("POST", target, TOY), now);
            assert_eq!(r.status, 422, "{target}");
        }
    }

    #[test]
    fn batch_matches_schedule_item_for_item_in_request_order() {
        let s = state();
        let now = Instant::now();
        let single = |job: &str| {
            let r = handle(&s, &request("POST", "/schedule", job), now);
            assert_eq!(r.status, 200, "{job}");
            String::from_utf8(r.body).unwrap().trim_end().to_string()
        };
        let cs4 = single(r#"{"benchmark":"diffeq","alg":"mfs","cs":4}"#);
        let cs6 = single(r#"{"benchmark":"diffeq","alg":"mfs","cs":6}"#);
        // Query knobs are defaults; items override or extend them. The
        // batch interleaves successes with per-item failures.
        let batch = handle(
            &s,
            &request(
                "POST",
                "/batch?alg=mfs&benchmark=diffeq",
                r#"[{"cs":4},{"cs":6},{"benchmark":"nope","cs":4},{"cs":1},{"benchmark":"ewf","alg":"mfsa","cs":18,"deadline_ms":0},{"cs":4,"emit":"text"}]"#,
            ),
            now,
        );
        assert_eq!(batch.status, 200);
        let body = String::from_utf8(batch.body).unwrap();
        assert!(body.starts_with('[') && body.ends_with("]\n"), "{body}");
        // Success items are byte-identical to /schedule bodies, in
        // request order; failures carry their would-be status inline.
        let at = |needle: &str| {
            body.find(needle)
                .unwrap_or_else(|| panic!("{needle} missing"))
        };
        assert!(body.contains(&cs4), "{body}");
        assert!(body.contains(&cs6), "{body}");
        assert!(at(&cs4) < at(&cs6), "order drifted: {body}");
        for (needle, count) in [
            ("\"status\":400", 2),
            ("\"status\":422", 1),
            ("\"status\":504", 1),
        ] {
            assert_eq!(body.matches(needle).count(), count, "{body}");
        }
        assert!(at(&cs6) < at("\"status\":400"), "order drifted: {body}");
        let m = s.metrics_snapshot();
        assert_eq!(m.counter("serve.batch.requests"), 1);
        assert_eq!(m.counter("serve.batch.jobs"), 6);
        // The cs=4/cs=6 jobs were computed by the /schedule warm-up;
        // inside the batch they are pure cache hits. The only new
        // computes are the infeasible cs=1 item and the (cancelled,
        // forgotten) deadline item.
        assert_eq!(m.counter("serve.cache.results.misses"), 4);
    }

    #[test]
    fn malformed_batches_are_request_level_400() {
        let s = state();
        let now = Instant::now();
        for body in ["", "{}", "[", "[{},]", "not json", "[]"] {
            let r = handle(&s, &request("POST", "/batch", body), now);
            assert_eq!(r.status, 400, "{body:?}");
        }
        let oversized = format!("[{}]", vec!["{}"; 257].join(","));
        let r = handle(&s, &request("POST", "/batch", &oversized), now);
        assert_eq!(r.status, 400);
        assert!(
            String::from_utf8(r.body).unwrap().contains("cap"),
            "cap error names the cap"
        );
        assert_eq!(handle(&s, &request("GET", "/batch", ""), now).status, 405);
    }

    #[test]
    fn metrics_endpoint_renders_prometheus_text() {
        let s = state();
        let now = Instant::now();
        let _ = handle(&s, &request("POST", "/schedule?cs=2", TOY), now);
        let m = handle(&s, &request("GET", "/metrics", ""), now);
        assert_eq!(m.status, 200);
        let text = String::from_utf8(m.body).unwrap();
        assert!(text.contains("# TYPE serve_jobs counter"), "{text}");
        assert!(text.contains("serve_cache_results_misses 1"), "{text}");
        // Latency histograms render in full exposition form. The
        // request-level serve.* histograms are recorded by the daemon's
        // worker loop, not by `handle` directly, so the scheduler-phase
        // histograms stand in here; the integration tests assert the
        // serve_latency_* families end to end.
        assert!(
            text.contains("# TYPE phase_mfs_move_loop_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains("phase_mfs_move_loop_ns_bucket{le=\"+Inf\"} "),
            "{text}"
        );
        assert!(text.contains("phase_mfs_move_loop_ns_sum "), "{text}");
        assert!(text.contains("phase_mfs_move_loop_ns_count "), "{text}");
    }
}
