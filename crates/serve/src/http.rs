//! A hand-rolled HTTP/1.1 subset: an incremental parser plus response
//! serialisation.
//!
//! The build container is offline, so there is no tokio/hyper; the
//! daemon speaks the minimum of HTTP/1.1 a load generator or `curl`
//! needs: `Content-Length`-delimited bodies, no chunked transfer
//! coding, keep-alive and pipelining per RFC 7230 defaults. The core
//! is [`parse_request`] — a **pure function over a byte buffer** that
//! either consumes one complete request or asks for more bytes, which
//! is exactly the shape the reactor's per-connection state machine
//! needs (and what makes the parser fuzzable without sockets).
//! [`read_request`] wraps it for blocking streams (tests, simple
//! clients).

use std::io::{self, Read, Write};
use std::time::Instant;

/// Upper bound on the request line + headers, independent of the body
/// cap.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, decoded path, decoded query pairs, raw
/// body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`).
    pub method: String,
    /// Percent-decoded path, without the query string.
    pub path: String,
    /// Percent-decoded query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// The raw body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// The last value of query key `name`, if present.
    pub fn query_value(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, headers, or unsupported framing → 400.
    BadRequest(String),
    /// Body larger than the configured cap → 413.
    TooLarge,
    /// The peer vanished or timed out mid-request; nothing to answer.
    Io(io::Error),
}

/// The outcome of one [`parse_request`] attempt over a buffer.
#[derive(Debug)]
pub enum Parsed {
    /// One complete request. `consumed` is how many buffer bytes it
    /// occupied (head + body); bytes past it belong to the next
    /// pipelined request. `keep_alive` is whether the *client* allows
    /// the connection to persist (RFC 7230: HTTP/1.1 default yes
    /// unless `Connection: close`; HTTP/1.0 only with an explicit
    /// `Connection: keep-alive`).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed.
        consumed: usize,
        /// Whether the client permits connection reuse.
        keep_alive: bool,
    },
    /// The buffer holds only a prefix of a request; read more bytes.
    Partial,
}

/// Incrementally parses one request from the front of `buf`.
///
/// Pure: no I/O, no state. Returns [`Parsed::Partial`] until the
/// buffer holds a complete head **and** `Content-Length` bytes of
/// body. Errors are terminal for the connection's input stream —
/// after a malformed head the framing is unrecoverable.
pub fn parse_request(buf: &[u8], max_body: usize) -> Result<Parsed, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::BadRequest("request head too large".into()));
        }
        return Ok(Parsed::Partial);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::BadRequest("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".into()))?;
    let http11 = match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => v != "HTTP/1.0",
        _ => return Err(HttpError::BadRequest("expected an HTTP/1.x version".into())),
    };

    let mut content_length: Option<usize> = None;
    let mut keep_alive = http11;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "transfer-encoding" && !value.eq_ignore_ascii_case("identity") {
            return Err(HttpError::BadRequest(
                "chunked transfer coding is not supported".into(),
            ));
        }
        if name == "content-length" {
            let parsed = value
                .parse()
                .map_err(|_| HttpError::BadRequest("invalid Content-Length".into()))?;
            // RFC 7230 §3.3.2: conflicting Content-Length values make
            // the framing ambiguous and must be rejected.
            if content_length.is_some() && content_length != Some(parsed) {
                return Err(HttpError::BadRequest(
                    "conflicting Content-Length headers".into(),
                ));
            }
            content_length = Some(parsed);
        }
        if name == "connection" {
            // The token list form ("keep-alive, TE") is matched per
            // element; `close` anywhere wins.
            let mut close = false;
            let mut keep = false;
            for token in value.split(',') {
                let token = token.trim();
                close |= token.eq_ignore_ascii_case("close");
                keep |= token.eq_ignore_ascii_case("keep-alive");
            }
            keep_alive = !close && (http11 || keep);
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::TooLarge);
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(Parsed::Partial);
    }
    let body = buf[body_start..body_start + content_length].to_vec();

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = raw_query
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();
    Ok(Parsed::Complete {
        request: Request {
            method,
            path: percent_decode(raw_path),
            query,
            body,
        },
        consumed: body_start + content_length,
        keep_alive,
    })
}

/// Reads and parses one request from a blocking `stream`.
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        if let Parsed::Complete { request, .. } = parse_request(&buf, max_body)? {
            return Ok(request);
        }
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Io(io::ErrorKind::UnexpectedEof.into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decodes `%XX` escapes and `+` (form encoding) into UTF-8 text;
/// malformed escapes pass through literally, invalid UTF-8 is replaced.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A response ready to serialise: status, content type, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// The deadline the producing job ran under, if any — carried so
    /// the access log can report how much margin the answer had left
    /// (never serialised onto the wire).
    pub deadline: Option<Instant>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            deadline: None,
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            deadline: None,
        }
    }

    /// Tags the response with the deadline its job ran under.
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Response {
        self.deadline = deadline;
        self
    }

    /// An error response with body `{"error":"<message>"}` + newline.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\":\"");
        crate::json::escape_into(&mut body, message);
        body.push_str("\"}\n");
        Response::json(status, body)
    }

    /// Serialises the response into `out`. `close` picks the
    /// `Connection:` header — the reactor sends `keep-alive` on every
    /// response but the connection's last.
    pub fn render_into(&self, out: &mut Vec<u8>, close: bool) {
        use std::io::Write as _;
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" }
        );
        out.extend_from_slice(&self.body);
    }

    /// Serialises the response (status line, headers, body) onto `w`,
    /// closing form (`Connection: close`).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        self.render_into(&mut out, true);
        w.write_all(&out)?;
        w.flush()
    }
}

/// The standard reason phrase of the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        read_request(&mut cursor, 1024)
    }

    #[test]
    fn parses_a_get_with_query() {
        let r =
            parse(b"GET /schedule?alg=mfs&cs=4&limit=mul%3A2 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/schedule");
        assert_eq!(r.query_value("alg"), Some("mfs"));
        assert_eq!(r.query_value("cs"), Some("4"));
        assert_eq!(r.query_value("limit"), Some("mul:2"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_a_post_body_by_content_length() {
        let r =
            parse(b"POST /schedule HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello trailing-ignored")
                .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn rejects_bad_framing() {
        assert!(matches!(parse(b"\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse(b"GET /x\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nine\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhello"),
            Err(HttpError::BadRequest(_))
        ));
        // Duplicates that agree are harmless and accepted.
        let r = parse(b"POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn oversized_bodies_are_413() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 2048\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::TooLarge)));
    }

    #[test]
    fn truncated_requests_are_io_errors() {
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Io(_))
        ));
        assert!(matches!(parse(b"GET /x HT"), Err(HttpError::Io(_))));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("mul%3A2"), "mul:2");
        assert_eq!(percent_decode("100%"), "100%");
    }

    #[test]
    fn incremental_parse_waits_for_split_heads_and_bodies() {
        let raw = b"POST /schedule?cs=4 HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        // Every prefix short of the full request is Partial; the full
        // buffer parses and reports its exact extent.
        for cut in 0..raw.len() {
            match parse_request(&raw[..cut], 1024) {
                Ok(Parsed::Partial) => {}
                other => panic!("prefix {cut} gave {other:?}"),
            }
        }
        match parse_request(raw, 1024).unwrap() {
            Parsed::Complete {
                request,
                consumed,
                keep_alive,
            } => {
                assert_eq!(request.body, b"hello");
                assert_eq!(consumed, raw.len());
                assert!(keep_alive, "HTTP/1.1 defaults to keep-alive");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pipelined_buffers_report_per_request_extent() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let Parsed::Complete {
            request, consumed, ..
        } = parse_request(raw, 1024).unwrap()
        else {
            panic!("first request did not parse")
        };
        assert_eq!(request.path, "/healthz");
        let Parsed::Complete { request, .. } = parse_request(&raw[consumed..], 1024).unwrap()
        else {
            panic!("second request did not parse")
        };
        assert_eq!(request.path, "/metrics");
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let ka = |raw: &[u8]| match parse_request(raw, 1024).unwrap() {
            Parsed::Complete { keep_alive, .. } => keep_alive,
            other => panic!("{other:?}"),
        };
        assert!(ka(b"GET / HTTP/1.1\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        assert!(!ka(b"GET / HTTP/1.0\r\n\r\n"));
        assert!(ka(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n"));
        assert!(!ka(
            b"GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n"
        ));
    }

    #[test]
    fn responses_render_keep_alive_form() {
        let mut out = Vec::new();
        Response::text(200, "ok\n").render_into(&mut out, false);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn responses_serialise_with_length_and_close() {
        let mut out = Vec::new();
        Response::text(200, "ok\n").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
        let e = Response::error(422, "no \"such\" schedule");
        assert_eq!(e.status, 422);
        assert_eq!(
            String::from_utf8(e.body).unwrap(),
            "{\"error\":\"no \\\"such\\\" schedule\"}\n"
        );
    }
}
