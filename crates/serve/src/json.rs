//! A minimal flat-JSON reader and string escaper.
//!
//! Job bodies are single-level JSON objects of scalars (`{"benchmark":
//! "diffeq","alg":"mfs","cs":4}`); there is no serde in the offline
//! container, and the job schema needs nothing nested, so nested
//! objects and arrays are rejected with a clear message rather than
//! half-supported.

use std::collections::BTreeMap;

/// A scalar JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string.
    Str(String),
    /// A number (JSON numbers are doubles; integral checks live at the
    /// point of use).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with no
    /// fractional part. Accepts `"4"` (a numeric string) too, so knobs
    /// read the same from JSON bodies and query strings.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            JsonValue::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a boolean (`true`, `false`, `"true"`, `"false"`,
    /// `1`, `0`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            JsonValue::Num(n) if *n == 0.0 => Some(false),
            JsonValue::Num(n) if *n == 1.0 => Some(true),
            JsonValue::Str(s) => match s.as_str() {
                "true" | "1" => Some(true),
                "false" | "0" => Some(false),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Parses one flat JSON object into key → scalar value.
pub fn parse_flat_object(text: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser {
        chars: text.char_indices().peekable(),
        text,
    };
    p.skip_ws();
    let map = p.object()?;
    p.skip_ws();
    p.end(map)
}

/// Parses a JSON array of flat objects (`[{...},{...}]`) — the
/// `POST /batch` body shape. The array itself is the only nesting
/// level; each element follows the [`parse_flat_object`] rules.
pub fn parse_flat_array(text: &str) -> Result<Vec<BTreeMap<String, JsonValue>>, String> {
    let mut p = Parser {
        chars: text.char_indices().peekable(),
        text,
    };
    p.skip_ws();
    p.expect('[')?;
    let mut items = Vec::new();
    p.skip_ws();
    if p.eat(']') {
        p.skip_ws();
        return p.end(items);
    }
    loop {
        p.skip_ws();
        items.push(p.object()?);
        p.skip_ws();
        if p.eat(',') {
            continue;
        }
        p.expect(']')?;
        p.skip_ws();
        return p.end(items);
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    /// One `{...}` object of scalar values, cursor left just past the
    /// closing brace.
    fn object(&mut self) -> Result<BTreeMap<String, JsonValue>, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.eat('}') {
            return Ok(map);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            if self.eat(',') {
                continue;
            }
            self.expect('}')?;
            return Ok(map);
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected `{want}` at byte {i}, found `{c}`")),
            None => Err(format!("expected `{want}`, found end of input")),
        }
    }

    fn end<T>(&mut self, value: T) -> Result<T, String> {
        match self.chars.next() {
            None => Ok(value),
            Some((i, c)) => Err(format!("trailing `{c}` at byte {i} after the object")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unterminated string".into()),
                Some((_, '"')) => return Ok(out),
                Some((i, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .chars
                                .next()
                                .and_then(|(_, c)| c.to_digit(16))
                                .ok_or_else(|| format!("bad \\u escape at byte {i}"))?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(format!(
                            "bad escape `\\{}` at byte {i}",
                            other.map_or(String::new(), |(_, c)| c.to_string())
                        ))
                    }
                },
                Some((_, c)) => out.push(c),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.chars.peek().copied() {
            Some((_, '"')) => Ok(JsonValue::Str(self.string()?)),
            Some((i, '{')) | Some((i, '[')) => Err(format!(
                "nested values are not supported in a job object (byte {i})"
            )),
            Some((start, c)) if c == '-' || c.is_ascii_digit() => {
                let mut end = start;
                while let Some((i, c)) = self.chars.peek().copied() {
                    if c == '-'
                        || c == '+'
                        || c == '.'
                        || c == 'e'
                        || c == 'E'
                        || c.is_ascii_digit()
                    {
                        end = i + c.len_utf8();
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                self.text[start..end]
                    .parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("invalid number `{}`", &self.text[start..end]))
            }
            Some((_, 't')) if self.keyword("true") => Ok(JsonValue::Bool(true)),
            Some((_, 'f')) if self.keyword("false") => Ok(JsonValue::Bool(false)),
            Some((_, 'n')) if self.keyword("null") => Ok(JsonValue::Null),
            Some((i, c)) => Err(format!("unexpected `{c}` at byte {i}")),
            None => Err("unexpected end of input".into()),
        }
    }

    fn keyword(&mut self, word: &str) -> bool {
        let rest = &self.text[self.chars.peek().map_or(self.text.len(), |(i, _)| *i)..];
        if rest.starts_with(word) {
            for _ in 0..word.len() {
                self.chars.next();
            }
            true
        } else {
            false
        }
    }
}

/// Escapes `s` into `out` as JSON string contents (without the quotes).
pub fn escape_into(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_job_object() {
        let m = parse_flat_object(
            r#" {"benchmark": "diffeq", "alg": "mfs", "cs": 4, "warm": true, "x": null} "#,
        )
        .unwrap();
        assert_eq!(m["benchmark"].as_str(), Some("diffeq"));
        assert_eq!(m["cs"].as_u64(), Some(4));
        assert_eq!(m["warm"].as_bool(), Some(true));
        assert_eq!(m["x"], JsonValue::Null);
        assert!(parse_flat_object("{}").unwrap().is_empty());
    }

    #[test]
    fn string_escapes_round_trip() {
        let m = parse_flat_object(r#"{"dfg":"input a, b\nop p = mul(a, b)\n","q":"A\""}"#).unwrap();
        assert_eq!(m["dfg"].as_str(), Some("input a, b\nop p = mul(a, b)\n"));
        assert_eq!(m["q"].as_str(), Some("A\""));
    }

    #[test]
    fn numbers_and_coercions() {
        let m = parse_flat_object(r#"{"a":-2.5,"b":"7","c":1e3}"#).unwrap();
        assert_eq!(m["a"], JsonValue::Num(-2.5));
        assert_eq!(m["a"].as_u64(), None, "negative/fractional is not a u64");
        assert_eq!(m["b"].as_u64(), Some(7));
        assert_eq!(m["c"].as_u64(), Some(1000));
    }

    #[test]
    fn malformed_objects_error_out() {
        for bad in [
            "",
            "null",
            "{",
            r#"{"a"}"#,
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{"a":1} trailing"#,
            r#"{"a":{"nested":1}}"#,
            r#"{"a":[1,2]}"#,
            r#"{"a":"unterminated}"#,
            r#"{"a":tru}"#,
        ] {
            assert!(parse_flat_object(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parses_an_array_of_flat_objects() {
        let items =
            parse_flat_array(r#" [ {"benchmark":"diffeq","cs":4}, {"cs": 6}, {} ] "#).unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0]["benchmark"].as_str(), Some("diffeq"));
        assert_eq!(items[1]["cs"].as_u64(), Some(6));
        assert!(items[2].is_empty());
        assert!(parse_flat_array("[]").unwrap().is_empty());
        for bad in [
            "",
            "{}",
            "[",
            "[{}",
            "[{},]",
            "[1,2]",
            r#"[{"a":[1]}]"#,
            "[{}] trailing",
        ] {
            assert!(parse_flat_array(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn escape_into_matches_parser() {
        let original = "a\"b\\c\nd\u{1}";
        let mut encoded = String::from("{\"k\":\"");
        escape_into(&mut encoded, original);
        encoded.push_str("\"}");
        let m = parse_flat_object(&encoded).unwrap();
        assert_eq!(m["k"].as_str(), Some(original));
    }
}
