//! The daemon: listener, bounded admission, worker pool, graceful
//! shutdown.
//!
//! One acceptor thread polls a non-blocking listener (so it can notice
//! the shutdown flag between accepts) and admits connections into the
//! bounded [`crate::queue::Bounded`] queue; a full queue answers 429
//! inline — overload costs the acceptor one small write, never a
//! blocked accept loop. Worker threads pop connections, parse, compute
//! and respond. [`Server::shutdown`] stops admission and closes the
//! queue; workers drain what was already admitted, so every accepted
//! request is answered before [`Server::join`] returns.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hls_explore::default_threads;
use hls_telemetry::{TraceEvent, TraceSink};

use crate::api::{self, AppState};
use crate::http::{read_request, HttpError, Response};
use crate::queue::Bounded;

/// How often the acceptor re-checks the listener and shutdown flag
/// while idle. This bounds the accept latency of the first request
/// after an idle period, so it is kept small; one wakeup per
/// millisecond costs a negligible sliver of an idle core.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7433` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads; 0 means [`default_threads`].
    pub workers: usize,
    /// Bounded admission queue capacity; a full queue answers 429.
    pub queue_cap: usize,
    /// Result-cache entry cap (LRU past this).
    pub cache_cap: usize,
    /// Default per-request deadline in ms (`None` = no deadline unless
    /// the request asks for one).
    pub default_deadline_ms: Option<u64>,
    /// Largest accepted request body; beyond it the answer is 413.
    pub max_body_bytes: usize,
    /// Socket read timeout while parsing a request.
    pub read_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7433".into(),
            workers: 0,
            queue_cap: 64,
            cache_cap: hls_explore::DEFAULT_RESULTS_CAP,
            default_deadline_ms: None,
            max_body_bytes: 1024 * 1024,
            read_timeout_ms: 5000,
        }
    }
}

struct Shared {
    app: AppState,
    sink: Mutex<Box<dyn TraceSink + Send>>,
    queue: Bounded<(TcpStream, Instant)>,
    shutdown: AtomicBool,
    max_body_bytes: usize,
    read_timeout_ms: u64,
}

/// A running daemon. Dropping it without [`Server::join`] detaches the
/// threads; the intended lifecycle is `start` → `shutdown` → `join`.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon; per-request access-log events go to
    /// `sink`.
    pub fn start(config: ServeConfig, sink: Box<dyn TraceSink + Send>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            default_threads()
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            app: AppState::new(config.cache_cap, config.default_deadline_ms),
            sink: Mutex::new(sink),
            queue: Bounded::new(config.queue_cap),
            shutdown: AtomicBool::new(false),
            max_body_bytes: config.max_body_bytes,
            read_timeout_ms: config.read_timeout_ms,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, listener))
        };
        let workers = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some((stream, enqueued)) = shared.queue.pop() {
                        // Backstop: a panic that escapes the handler's
                        // own catch_unwind (response writing, logging)
                        // must not shrink the worker pool.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                handle_connection(&shared, stream, enqueued)
                            }));
                        if outcome.is_err() {
                            shared.app.inc("serve.panics".into(), 1);
                        }
                    }
                })
            })
            .collect();
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (metrics, cache) — for tests.
    pub fn app(&self) -> &AppState {
        &self.shared.app
    }

    /// Requests a graceful shutdown: stop accepting, then drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Waits for the acceptor and all workers to finish. Call
    /// [`Server::shutdown`] first, or this blocks forever.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                match shared.queue.try_push((stream, Instant::now())) {
                    Ok(()) => {}
                    Err((stream, _)) => reject_overload(shared, stream),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // No more admissions; workers drain the backlog and exit.
    shared.queue.close();
}

/// Answers 429 inline from the acceptor — the one response that must
/// not wait for a worker, because no worker slot is what it reports.
fn reject_overload(shared: &Shared, mut stream: TcpStream) {
    let started = Instant::now();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(shared.read_timeout_ms)));
    let response = Response::error(429, "job queue is full, retry later");
    let _ = response.write_to(&mut stream);
    // Drain whatever the client already sent before closing: dropping a
    // socket with unread data makes the kernel RST the connection,
    // which can discard the 429 before the peer reads it. The drain is
    // bounded in bytes and wall clock — this runs on the acceptor
    // thread, and a client streaming an endless body must not stall
    // every new accept.
    const DRAIN_MAX_BYTES: usize = 64 * 1024;
    const DRAIN_MAX_WAIT: Duration = Duration::from_millis(200);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let drain_started = Instant::now();
    let mut scratch = [0u8; 4096];
    let mut drained = 0usize;
    while drained < DRAIN_MAX_BYTES && drain_started.elapsed() < DRAIN_MAX_WAIT {
        match io::Read::read(&mut stream, &mut scratch) {
            Ok(n) if n > 0 => drained += n,
            _ => break,
        }
    }
    shared.app.inc("serve.queue.rejected".into(), 1);
    record(shared, "?", "?", &response, started, 0, 0);
}

fn handle_connection(shared: &Shared, mut stream: TcpStream, enqueued: Instant) {
    let started = Instant::now();
    let queue_ns = started.saturating_duration_since(enqueued).as_nanos() as u64;
    let timeout = Duration::from_millis(shared.read_timeout_ms);
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let (method, path, response, compute_ns) =
        match read_request(&mut stream, shared.max_body_bytes) {
            Ok(request) => {
                // A panic in parsing/scheduling answers 500 instead of
                // unwinding through the worker thread: the pool must keep
                // its full size no matter what a request does.
                let compute_started = Instant::now();
                let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    api::handle(&shared.app, &request, enqueued)
                }))
                .unwrap_or_else(|_| {
                    shared.app.inc("serve.panics".into(), 1);
                    Response::error(500, "internal error")
                });
                let compute_ns = compute_started.elapsed().as_nanos() as u64;
                (request.method, request.path, response, compute_ns)
            }
            Err(HttpError::TooLarge) => (
                "?".into(),
                "?".into(),
                Response::error(413, "request body too large"),
                0,
            ),
            Err(HttpError::BadRequest(message)) => {
                ("?".into(), "?".into(), Response::error(400, &message), 0)
            }
            Err(HttpError::Io(_)) => {
                // The peer vanished or stalled; there is no one to answer.
                shared.app.inc("serve.io_errors".into(), 1);
                return;
            }
        };
    let _ = response.write_to(&mut stream);
    record(
        shared, &method, &path, &response, started, queue_ns, compute_ns,
    );
}

/// The fixed latency-histogram family a request path belongs to. Paths
/// map onto a closed set of endpoint classes so a scanning client
/// cannot mint unbounded metric families.
fn endpoint_class(path: &str) -> &'static str {
    match path {
        "/schedule" => "schedule",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/" => "index",
        _ => "other",
    }
}

/// Counts the response, records the per-endpoint latency histograms
/// and emits the access-log event.
fn record(
    shared: &Shared,
    method: &str,
    path: &str,
    response: &Response,
    started: Instant,
    queue_ns: u64,
    compute_ns: u64,
) {
    let dur_ns = started.elapsed().as_nanos() as u64;
    shared.app.inc("serve.requests".into(), 1);
    shared.app.inc(format!("serve.http.{}", response.status), 1);
    shared.app.observe("serve.request.wall_ns", dur_ns);
    let ep = endpoint_class(path);
    shared
        .app
        .observe(format!("serve.latency.{ep}.ns"), queue_ns + dur_ns);
    shared
        .app
        .observe(format!("serve.queue_wait.{ep}.ns"), queue_ns);
    shared
        .app
        .observe(format!("serve.compute.{ep}.ns"), compute_ns);
    let deadline_remaining_ms = response.deadline.map(|at| {
        let now = Instant::now();
        if now <= at {
            (at - now).as_millis() as i64
        } else {
            -((now - at).as_millis() as i64)
        }
    });
    // Recover a poisoned lock: a panic in one access-log write must not
    // take logging (or the worker that trips over it) down with it.
    let mut sink = shared
        .sink
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if sink.enabled() {
        sink.record(TraceEvent::HttpRequest {
            method: method.into(),
            path: path.into(),
            status: response.status,
            bytes: response.body.len() as u64,
            dur_ns,
            queue_ns,
            deadline_remaining_ms,
        });
    }
}
