//! The daemon: a readiness reactor, a worker pool, and graceful
//! shutdown.
//!
//! One reactor thread owns the listener and every connection through a
//! level-triggered [`crate::poller::Poller`] (epoll on Linux, `poll(2)`
//! elsewhere). It accepts, reads, parses — the incremental
//! [`parse_request`] turns each connection into a keep-alive HTTP/1.1
//! state machine with bounded pipelining — and hands every complete
//! request to the bounded [`crate::queue::Bounded`] admission queue. A
//! full queue answers 429 inline *without closing the connection*:
//! backpressure is a response, not an eviction. Worker threads pop
//! requests, compute behind panic isolation, record telemetry, and
//! push completions back; a [`crate::poller::Waker`] nudges the
//! reactor, which writes responses **in request order** per connection
//! no matter how the computations interleave.
//!
//! [`Server::shutdown`] starts the drain: accepting stops, parsing
//! stops, the queue closes, every admitted request — including
//! pipelined ones still in flight — is answered, then connections
//! close and the threads exit (bounded by a grace period for peers
//! that stop reading).

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hls_explore::default_threads;
use hls_telemetry::{TraceEvent, TraceSink};

use crate::api::{self, AppState};
use crate::http::{parse_request, HttpError, Parsed, Request, Response};
use crate::poller::{self, Poller, Waker, READ, WRITE};
use crate::queue::Bounded;

/// Reactor tick: the upper bound on how stale a timeout sweep or a
/// shutdown check can be. Readiness and completions interrupt the wait
/// through the poller, so this is never on the request latency path.
const TICK: Duration = Duration::from_millis(25);

/// How long a drain waits for peers to read their final responses
/// before force-closing what is left.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Per-connection input buffer cap: one maximal head plus one maximal
/// body of slack past `max_body_bytes` (parse errors fire well before
/// this; it only bounds a pipelining client's burst).
const READ_SLACK: usize = 64 * 1024;

/// Poller tokens 0 and 1 are the listener and the waker; connections
/// start here.
const LISTENER: u64 = 0;
const WAKER: u64 = 1;
const FIRST_CONN: u64 = 2;

/// Daemon configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7433` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads; 0 means [`default_threads`].
    pub workers: usize,
    /// Bounded admission queue capacity; a full queue answers 429.
    pub queue_cap: usize,
    /// Result-cache entry cap (LRU past this).
    pub cache_cap: usize,
    /// Default per-request deadline in ms (`None` = no deadline unless
    /// the request asks for one).
    pub default_deadline_ms: Option<u64>,
    /// Largest accepted request body; beyond it the answer is 413.
    pub max_body_bytes: usize,
    /// How long a connection may sit on a partial request or an
    /// unread response before it is dropped (slow-loris bound).
    pub read_timeout_ms: u64,
    /// Whether to honour HTTP keep-alive. Off, every response closes
    /// its connection (the pre-reactor behaviour).
    pub keep_alive: bool,
    /// How long a fully idle keep-alive connection is kept before
    /// eviction.
    pub idle_timeout_ms: u64,
    /// Most requests a connection may have in flight (parsed, not yet
    /// answered) before the reactor stops reading from it.
    pub pipeline_depth: usize,
    /// Most simultaneously open connections; past it, accepts answer
    /// 503 and close.
    pub max_conns: usize,
    /// On-disk result cache directory (`None` = memory-only). Survives
    /// restarts; shared by every worker.
    pub cache_dir: Option<PathBuf>,
    /// Forces the portable `poll(2)` backend even where epoll exists.
    pub force_poll: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7433".into(),
            workers: 0,
            queue_cap: 64,
            cache_cap: hls_explore::DEFAULT_RESULTS_CAP,
            default_deadline_ms: None,
            max_body_bytes: 1024 * 1024,
            read_timeout_ms: 5000,
            keep_alive: true,
            idle_timeout_ms: 5000,
            pipeline_depth: 8,
            max_conns: 1024,
            cache_dir: None,
            force_poll: false,
        }
    }
}

/// One admitted request on its way to a worker.
struct Work {
    conn: u64,
    seq: u64,
    request: Request,
    enqueued: Instant,
}

/// One computed response on its way back to the reactor.
struct Done {
    conn: u64,
    seq: u64,
    response: Response,
}

struct Shared {
    app: AppState,
    sink: Mutex<Box<dyn TraceSink + Send>>,
    queue: Bounded<Work>,
    completions: Mutex<Vec<Done>>,
    waker: Waker,
    shutdown: AtomicBool,
}

/// A running daemon. Dropping it without [`Server::join`] detaches the
/// threads; the intended lifecycle is `start` → `shutdown` → `join`.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon; per-request access-log events go to
    /// `sink`.
    pub fn start(config: ServeConfig, sink: Box<dyn TraceSink + Send>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (waker, waker_rx) = Waker::pair()?;
        let worker_count = if config.workers == 0 {
            default_threads()
        } else {
            config.workers
        };
        let shared = Arc::new(Shared {
            app: AppState::with_options(
                config.cache_cap,
                config.default_deadline_ms,
                config.cache_dir.as_deref(),
            )?,
            sink: Mutex::new(sink),
            queue: Bounded::new(config.queue_cap),
            completions: Mutex::new(Vec::new()),
            waker,
            shutdown: AtomicBool::new(false),
        });

        let reactor = {
            let shared = Arc::clone(&shared);
            let config = config.clone();
            std::thread::spawn(move || {
                Reactor::new(shared, config, listener, waker_rx).run();
            })
        };
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server {
            addr,
            shared,
            reactor: Some(reactor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (metrics, cache) — for tests.
    pub fn app(&self) -> &AppState {
        &self.shared.app
    }

    /// Requests a graceful shutdown: stop accepting, answer everything
    /// admitted, then drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.waker.wake();
    }

    /// Waits for the reactor and all workers to finish. Call
    /// [`Server::shutdown`] first, or this blocks forever.
    pub fn join(mut self) {
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(work) = shared.queue.pop() {
        let started = Instant::now();
        let queue_ns = started.saturating_duration_since(work.enqueued).as_nanos() as u64;
        // A panic in parsing/scheduling answers 500 instead of
        // unwinding through the worker thread: the pool must keep its
        // full size no matter what a request does.
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            api::handle(&shared.app, &work.request, work.enqueued)
        }))
        .unwrap_or_else(|_| {
            shared.app.inc("serve.panics".into(), 1);
            Response::error(500, "internal error")
        });
        let compute_ns = started.elapsed().as_nanos() as u64;
        record(
            shared,
            &work.request.method,
            &work.request.path,
            &response,
            started,
            queue_ns,
            compute_ns,
        );
        shared
            .completions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Done {
                conn: work.conn,
                seq: work.seq,
                response,
            });
        shared.waker.wake();
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Unparsed input.
    buf: Vec<u8>,
    /// Rendered output not yet written, and how far it got.
    out: Vec<u8>,
    out_pos: usize,
    /// The next sequence number to assign at parse time; responses are
    /// written strictly in sequence order.
    next_seq: u64,
    next_write: u64,
    /// Completed responses waiting for their turn in the write order.
    ready: BTreeMap<u64, Response>,
    /// Requests parsed but not yet moved into `out`.
    in_flight: usize,
    /// No more requests will be parsed; close once everything assigned
    /// is flushed.
    closing: bool,
    read_eof: bool,
    last_activity: Instant,
    interest: u8,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_write: 0,
            ready: BTreeMap::new(),
            in_flight: 0,
            closing: false,
            read_eof: false,
            last_activity: Instant::now(),
            interest: 0,
        }
    }

    /// Nothing buffered, computing, or unwritten.
    fn is_quiet(&self) -> bool {
        self.buf.is_empty()
            && self.in_flight == 0
            && self.ready.is_empty()
            && self.out_pos >= self.out.len()
    }
}

struct Reactor {
    shared: Arc<Shared>,
    cfg: ServeConfig,
    poller: Poller,
    listener: Option<TcpListener>,
    waker_rx: TcpStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
    events: Vec<poller::Event>,
}

impl Reactor {
    fn new(
        shared: Arc<Shared>,
        cfg: ServeConfig,
        listener: TcpListener,
        waker_rx: TcpStream,
    ) -> Reactor {
        let mut poller = Poller::new(cfg.force_poll);
        shared
            .app
            .inc(format!("serve.poller.{}", poller.backend()), 1);
        let _ = poller.add(LISTENER, &listener, READ);
        let _ = poller.add(WAKER, &waker_rx, READ);
        Reactor {
            shared,
            cfg,
            poller,
            listener: Some(listener),
            waker_rx,
            conns: HashMap::new(),
            next_token: FIRST_CONN,
            draining: false,
            drain_deadline: None,
            events: Vec::new(),
        }
    }

    fn run(mut self) {
        loop {
            if !self.draining && self.shared.shutdown.load(Ordering::Acquire) {
                self.begin_drain();
            }
            if self.draining {
                if self.conns.is_empty() {
                    break;
                }
                if self.drain_deadline.is_some_and(|at| Instant::now() >= at) {
                    break; // grace expired; remaining peers stopped reading
                }
            }
            if self.poller.wait(&mut self.events, Some(TICK)).is_err() {
                std::thread::sleep(TICK); // poller failure: degrade, don't spin
            }
            let events = std::mem::take(&mut self.events);
            for &(token, readiness) in &events {
                match token {
                    LISTENER => self.accept_ready(),
                    WAKER => poller::drain_waker(&mut self.waker_rx),
                    _ => self.conn_event(token, readiness),
                }
            }
            self.events = events;
            self.apply_completions();
            self.sweep_timeouts();
        }
        // Force-close what is left (grace expired, or nothing left).
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }

    /// Drain entry: stop accepting, stop parsing, close the queue so
    /// workers exit once the backlog is answered.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + DRAIN_GRACE);
        if let Some(listener) = self.listener.take() {
            self.poller.remove(LISTENER, &listener);
        }
        self.shared.queue.close();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.closing = true;
            }
            self.service(token);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.conns.len() >= self.cfg.max_conns.max(1) {
                        self.reject_conn(stream);
                        continue;
                    }
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let mut conn = Conn::new(stream);
                    if self.poller.add(token, &conn.stream, READ).is_err() {
                        continue; // kernel said no; drop the socket
                    }
                    conn.interest = READ;
                    self.conns.insert(token, conn);
                    self.shared.app.inc("serve.conns.accepted".into(), 1);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    /// 503s a connection past the cap: one best-effort write, then
    /// drop. The peer that caused the pressure never gets a slot.
    fn reject_conn(&mut self, mut stream: TcpStream) {
        let response = Response::error(503, "connection limit reached");
        let mut out = Vec::with_capacity(160);
        response.render_into(&mut out, true);
        let _ = stream.set_nonblocking(true);
        let _ = stream.write(&out);
        self.shared.app.inc("serve.conns.rejected".into(), 1);
        record(&self.shared, "?", "?", &response, Instant::now(), 0, 0);
    }

    fn conn_event(&mut self, token: u64, readiness: u8) {
        if readiness & READ != 0 && self.do_read(token) {
            self.close_conn(token);
            return;
        }
        let _ = readiness; // writes are retried by `service` regardless
        self.service(token);
    }

    /// Reads everything available; returns `true` when the connection
    /// died mid-read and must be torn down.
    fn do_read(&mut self, token: u64) -> bool {
        let read_cap = self.cfg.max_body_bytes + READ_SLACK;
        let Some(conn) = self.conns.get_mut(&token) else {
            return false;
        };
        if conn.read_eof || conn.closing {
            return false;
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if conn.buf.len() >= read_cap {
                return false; // stop reading until the backlog drains
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_eof = true;
                    return false;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.shared.app.inc("serve.io_errors".into(), 1);
                    return conn.in_flight == 0; // answers pending: let them flush
                }
            }
        }
    }

    /// Advances one connection's state machine: parse what is
    /// buffered, move in-order responses to the wire, write, then
    /// update poller interest or tear the connection down.
    fn service(&mut self, token: u64) {
        let shared = Arc::clone(&self.shared);
        let depth = self.cfg.pipeline_depth.max(1);
        let keep_alive_cfg = self.cfg.keep_alive;
        let max_body = self.cfg.max_body_bytes;
        let read_cap = max_body + READ_SLACK;
        let mut dead = false;
        let mut finished = false;
        if let Some(conn) = self.conns.get_mut(&token) {
            // 1. Parse complete requests off the buffer, up to the
            //    pipeline bound.
            while !conn.closing && conn.in_flight < depth && !conn.buf.is_empty() {
                match parse_request(&conn.buf, max_body) {
                    Ok(Parsed::Partial) => break,
                    Ok(Parsed::Complete {
                        request,
                        consumed,
                        keep_alive,
                    }) => {
                        conn.buf.drain(..consumed);
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.in_flight += 1;
                        if seq > 0 {
                            shared.app.inc("serve.keepalive.reused".into(), 1);
                        }
                        if conn.in_flight > 1 {
                            shared.app.inc("serve.pipeline.pipelined".into(), 1);
                        }
                        shared
                            .app
                            .observe("serve.pipeline.depth", conn.in_flight as u64);
                        if !keep_alive || !keep_alive_cfg {
                            conn.closing = true;
                        }
                        let work = Work {
                            conn: token,
                            seq,
                            request,
                            enqueued: Instant::now(),
                        };
                        // Inline warm path: a memory-tier cache hit is
                        // answered on the event loop itself — no queue,
                        // no worker handoff, no context switch. Cold
                        // requests (and everything that computes, does
                        // I/O or can block) still go to the pool.
                        if let Some(response) =
                            api::try_warm(&shared.app, &work.request, work.enqueued)
                        {
                            record(
                                &shared,
                                &work.request.method,
                                &work.request.path,
                                &response,
                                work.enqueued,
                                0,
                                0,
                            );
                            conn.ready.insert(seq, response);
                        } else if let Err(work) = shared.queue.try_push(work) {
                            // Backpressure answers in-line and in
                            // order; the connection stays usable.
                            let response = Response::error(429, "job queue is full, retry later");
                            shared.app.inc("serve.queue.rejected".into(), 1);
                            record(
                                &shared,
                                &work.request.method,
                                &work.request.path,
                                &response,
                                Instant::now(),
                                0,
                                0,
                            );
                            conn.ready.insert(seq, response);
                        }
                    }
                    Err(e) => {
                        // Framing is unrecoverable after a parse
                        // error: answer it (in order, behind anything
                        // already admitted) and close.
                        let response = match e {
                            HttpError::TooLarge => Response::error(413, "request body too large"),
                            HttpError::BadRequest(m) => Response::error(400, &m),
                            HttpError::Io(e) => {
                                Response::error(400, &format!("unreadable request: {e}"))
                            }
                        };
                        record(&shared, "?", "?", &response, Instant::now(), 0, 0);
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.in_flight += 1;
                        conn.ready.insert(seq, response);
                        conn.closing = true;
                        conn.buf.clear();
                    }
                }
            }
            if conn.read_eof {
                conn.closing = true;
            }
            // 2. Move in-order completed responses onto the wire. The
            //    `Connection: close` header goes on the connection's
            //    final response only.
            while let Some(response) = conn.ready.remove(&conn.next_write) {
                conn.in_flight -= 1;
                let last = conn.next_write + 1 == conn.next_seq;
                response.render_into(&mut conn.out, !keep_alive_cfg || (conn.closing && last));
                conn.next_write += 1;
            }
            // 3. Write as much as the socket takes.
            while conn.out_pos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        shared.app.inc("serve.io_errors".into(), 1);
                        dead = true;
                        break;
                    }
                }
            }
            if conn.out_pos >= conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
            }
            finished = conn.closing && conn.is_quiet();
            // A closing connection with in-flight work but a dead
            // input is still waiting on workers — keep it.
            if !dead && !finished {
                let mut want = 0u8;
                if !conn.read_eof
                    && !conn.closing
                    && conn.in_flight < depth
                    && conn.buf.len() < read_cap
                {
                    want |= READ;
                }
                if conn.out_pos < conn.out.len() {
                    want |= WRITE;
                }
                if want != conn.interest {
                    let stream = &conn.stream;
                    if self.poller.modify(token, stream, want).is_ok() {
                        conn.interest = want;
                    }
                }
            }
        }
        if dead || finished {
            self.close_conn(token);
        }
    }

    fn apply_completions(&mut self) {
        let done: Vec<Done> = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        let mut touched = Vec::new();
        for d in done {
            if let Some(conn) = self.conns.get_mut(&d.conn) {
                conn.ready.insert(d.seq, d.response);
                if !touched.contains(&d.conn) {
                    touched.push(d.conn);
                }
            }
            // else: the connection died while its request computed;
            // the answer has no one to go to.
        }
        for token in touched {
            self.service(token);
        }
    }

    /// Evicts stalled and idle connections. Connections with requests
    /// in flight are exempt — compute time is governed by deadlines,
    /// not socket timeouts.
    fn sweep_timeouts(&mut self) {
        let now = Instant::now();
        let read_to = Duration::from_millis(self.cfg.read_timeout_ms.max(1));
        let idle_to = Duration::from_millis(self.cfg.idle_timeout_ms.max(1));
        let mut evict: Vec<(u64, &'static str)> = Vec::new();
        for (&token, conn) in &self.conns {
            if conn.in_flight > 0 {
                continue;
            }
            let stale = now.saturating_duration_since(conn.last_activity);
            if conn.is_quiet() {
                if stale >= idle_to {
                    evict.push((token, "serve.timeouts.idle"));
                }
            } else if stale >= read_to {
                // A partial request or an unread response, stalled:
                // the slow-loris bound.
                evict.push((token, "serve.timeouts.read"));
            }
        }
        for (token, counter) in evict {
            self.shared.app.inc(counter.into(), 1);
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.remove(token, &conn.stream);
        }
    }
}

/// The fixed latency-histogram family a request path belongs to. Paths
/// map onto a closed set of endpoint classes so a scanning client
/// cannot mint unbounded metric families.
fn endpoint_class(path: &str) -> &'static str {
    match path {
        "/schedule" => "schedule",
        "/batch" => "batch",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/" => "index",
        _ => "other",
    }
}

/// Counts the response, records the per-endpoint latency histograms
/// and emits the access-log event.
fn record(
    shared: &Shared,
    method: &str,
    path: &str,
    response: &Response,
    started: Instant,
    queue_ns: u64,
    compute_ns: u64,
) {
    let dur_ns = started.elapsed().as_nanos() as u64;
    shared.app.inc("serve.requests".into(), 1);
    shared.app.inc(format!("serve.http.{}", response.status), 1);
    shared.app.observe("serve.request.wall_ns", dur_ns);
    let ep = endpoint_class(path);
    shared
        .app
        .observe(format!("serve.latency.{ep}.ns"), queue_ns + dur_ns);
    shared
        .app
        .observe(format!("serve.queue_wait.{ep}.ns"), queue_ns);
    shared
        .app
        .observe(format!("serve.compute.{ep}.ns"), compute_ns);
    let deadline_remaining_ms = response.deadline.map(|at| {
        let now = Instant::now();
        if now <= at {
            (at - now).as_millis() as i64
        } else {
            -((now - at).as_millis() as i64)
        }
    });
    // Recover a poisoned lock: a panic in one access-log write must not
    // take logging (or the worker that trips over it) down with it.
    let mut sink = shared
        .sink
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if sink.enabled() {
        sink.record(TraceEvent::HttpRequest {
            method: method.into(),
            path: path.into(),
            status: response.status,
            bytes: response.body.len() as u64,
            dur_ns,
            queue_ns,
            deadline_remaining_ms,
        });
    }
}
