//! SIGINT/SIGTERM notification for the daemon's graceful shutdown.
//!
//! The only `unsafe` in the workspace: registering a C signal handler
//! via libc's `signal(2)` (already linked through std — the offline
//! container has no signal-handling crate). The handler does the one
//! thing that is async-signal-safe: a relaxed atomic store. The daemon
//! main loop polls [`triggered`] and runs the actual drain-and-join
//! shutdown on its own thread.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Registers the SIGINT/SIGTERM handlers (no-op off Unix; ctrl-c then
/// terminates the process the default way).
pub fn install() {
    imp::install();
}

/// Whether a shutdown signal has arrived since [`install`].
pub fn triggered() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Sets the flag programmatically (tests; also lets a future admin
/// endpoint reuse the same shutdown path).
pub fn trigger() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_flips_the_flag() {
        install();
        assert!(!triggered() || triggered(), "load never panics");
        trigger();
        assert!(triggered());
    }
}
