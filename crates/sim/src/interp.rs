//! The behavioural reference interpreter.

use std::collections::BTreeMap;

use hls_dfg::{Dfg, NodeKind, SignalId, SignalSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{eval_op, SimError};

/// Evaluates the graph on the given primary-input values, returning the
/// value of **every** signal (inputs, constants and operation results).
///
/// Structural-pipeline stage chains compute their base operation at
/// stage 1 and forward the value through later stages, so an expanded
/// graph evaluates to the same values as its source.
///
/// # Errors
///
/// [`SimError::MissingInput`] if a consumed primary input has no value;
/// [`SimError::Unsupported`] for folded loop bodies.
pub fn interpret(
    dfg: &Dfg,
    inputs: &BTreeMap<SignalId, i64>,
) -> Result<BTreeMap<SignalId, i64>, SimError> {
    let mut values: BTreeMap<SignalId, i64> = BTreeMap::new();
    for (sid, sig) in dfg.signals() {
        match sig.source() {
            SignalSource::Constant(v) => {
                values.insert(sid, v);
            }
            SignalSource::PrimaryInput => {
                if let Some(&v) = inputs.get(&sid) {
                    values.insert(sid, v);
                }
            }
            SignalSource::Node(_) => {}
        }
    }
    for &id in dfg.topo_order() {
        let node = dfg.node(id);
        let operand = |i: usize| -> Result<i64, SimError> {
            let sig = node.inputs()[i];
            values.get(&sig).copied().ok_or(SimError::MissingInput(sig))
        };
        let value = match node.kind() {
            NodeKind::Op(k) => {
                let a = operand(0)?;
                let b = if k.arity() == 2 { operand(1)? } else { 0 };
                eval_op(k, a, b)
            }
            NodeKind::Stage { base, index, .. } => {
                if index == 0 {
                    let a = operand(0)?;
                    let b = if base.arity() == 2 { operand(1)? } else { 0 };
                    eval_op(base, a, b)
                } else {
                    // Later stages forward the pipeline value.
                    operand(0)?
                }
            }
            NodeKind::LoopBody { .. } => return Err(SimError::Unsupported(id)),
        };
        values.insert(node.output(), value);
    }
    Ok(values)
}

/// Generates a deterministic pseudo-random input vector for `dfg`
/// (small magnitudes, so products stay meaningful).
pub fn random_inputs(dfg: &Dfg, seed: u64) -> BTreeMap<SignalId, i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    dfg.signals()
        .filter(|(_, s)| matches!(s.source(), SignalSource::PrimaryInput))
        .map(|(id, _)| (id, rng.gen_range(-1000..=1000)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::{OpKind, TimingSpec};
    use hls_dfg::DfgBuilder;

    #[test]
    fn evaluates_a_small_program() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let k = b.constant("k", 10);
        let p = b.op("p", OpKind::Mul, &[x, y]).unwrap();
        let q = b.op("q", OpKind::Add, &[p, k]).unwrap();
        b.op("r", OpKind::Gt, &[q, x]).unwrap();
        let g = b.finish().unwrap();
        let inputs = [(x, 6), (y, 7)].into_iter().collect();
        let values = interpret(&g, &inputs).unwrap();
        assert_eq!(values[&g.signal_by_name("p").unwrap()], 42);
        assert_eq!(values[&g.signal_by_name("q").unwrap()], 52);
        assert_eq!(values[&g.signal_by_name("r").unwrap()], 1);
    }

    #[test]
    fn missing_input_is_reported() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("p", OpKind::Inc, &[x]).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(
            interpret(&g, &BTreeMap::new()),
            Err(SimError::MissingInput(x))
        );
    }

    #[test]
    fn stage_expansion_preserves_values() {
        use hls_dfg::transform::expand_structural_stages;
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.op("m", OpKind::Mul, &[x, y]).unwrap();
        b.op("a", OpKind::Add, &[m, y]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let (expanded, _) =
            expand_structural_stages(&g, &spec, &[OpKind::Mul].into_iter().collect()).unwrap();
        let inputs_g = [(x, 11), (y, 5)].into_iter().collect();
        let base = interpret(&g, &inputs_g).unwrap();
        // Map inputs by name onto the expanded graph.
        let inputs_e = [
            (expanded.signal_by_name("x").unwrap(), 11),
            (expanded.signal_by_name("y").unwrap(), 5),
        ]
        .into_iter()
        .collect();
        let exp = interpret(&expanded, &inputs_e).unwrap();
        assert_eq!(
            base[&g.signal_by_name("a").unwrap()],
            exp[&expanded.signal_by_name("a").unwrap()]
        );
        assert_eq!(exp[&expanded.signal_by_name("m.s2").unwrap()], 55);
    }

    #[test]
    fn random_inputs_cover_all_primary_inputs_deterministically() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        b.op("p", OpKind::Add, &[x, y]).unwrap();
        let g = b.finish().unwrap();
        let a = random_inputs(&g, 3);
        let c = random_inputs(&g, 3);
        assert_eq!(a.len(), 2);
        assert_eq!(a, c);
        assert_ne!(a, random_inputs(&g, 4));
    }
}
