//! The behavioural reference interpreter.

use std::collections::BTreeMap;

use hls_dfg::{ArrayId, Dfg, NodeKind, SignalId, SignalSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{eval_op, SimError};

/// Final contents of every declared array, keyed by array id.
pub type MemoryState = BTreeMap<ArrayId, Vec<i64>>;

/// Zero-initialised backing storage for every declared array.
pub(crate) fn initial_memory(dfg: &Dfg) -> MemoryState {
    dfg.memory()
        .arrays()
        .iter()
        .map(|a| (a.id(), vec![0i64; a.size() as usize]))
        .collect()
}

/// Euclidean index wrap: arrays behave as circular buffers, matching the
/// emitted Verilog's `((i % n) + n) % n` addressing on negative indices.
pub(crate) fn wrap_index(index: i64, size: usize) -> usize {
    index.rem_euclid(size as i64) as usize
}

/// Evaluates the graph on the given primary-input values, returning the
/// value of **every** signal (inputs, constants and operation results).
///
/// Structural-pipeline stage chains compute their base operation at
/// stage 1 and forward the value through later stages, so an expanded
/// graph evaluates to the same values as its source.
///
/// # Errors
///
/// [`SimError::MissingInput`] if a consumed primary input has no value;
/// [`SimError::Unsupported`] for folded loop bodies.
pub fn interpret(
    dfg: &Dfg,
    inputs: &BTreeMap<SignalId, i64>,
) -> Result<BTreeMap<SignalId, i64>, SimError> {
    interpret_with_memory(dfg, inputs).map(|(values, _)| values)
}

/// Like [`interpret`], but also returns the final contents of every
/// declared array (all elements start at zero). This is the behavioural
/// reference the RTL simulation's final memory state is compared
/// against.
///
/// Loads and stores execute in topological order; the graph's ordering
/// tokens (read-after-write, write-after-write, write-after-read) make
/// every order the sort can pick observationally equivalent.
///
/// # Errors
///
/// As [`interpret`].
pub fn interpret_with_memory(
    dfg: &Dfg,
    inputs: &BTreeMap<SignalId, i64>,
) -> Result<(BTreeMap<SignalId, i64>, MemoryState), SimError> {
    let mut memory = initial_memory(dfg);
    let mut values: BTreeMap<SignalId, i64> = BTreeMap::new();
    for (sid, sig) in dfg.signals() {
        match sig.source() {
            SignalSource::Constant(v) => {
                values.insert(sid, v);
            }
            SignalSource::PrimaryInput => {
                if let Some(&v) = inputs.get(&sid) {
                    values.insert(sid, v);
                }
            }
            SignalSource::Node(_) => {}
        }
    }
    for &id in dfg.topo_order() {
        let node = dfg.node(id);
        let operand = |i: usize| -> Result<i64, SimError> {
            let sig = node.inputs()[i];
            values.get(&sig).copied().ok_or(SimError::MissingInput(sig))
        };
        let value = match node.kind() {
            NodeKind::Op(k) => {
                let a = operand(0)?;
                let b = if k.arity() == 2 { operand(1)? } else { 0 };
                eval_op(k, a, b)
            }
            NodeKind::Stage { base, index, .. } => {
                if index == 0 {
                    let a = operand(0)?;
                    let b = if base.arity() == 2 { operand(1)? } else { 0 };
                    eval_op(base, a, b)
                } else {
                    // Later stages forward the pipeline value.
                    operand(0)?
                }
            }
            NodeKind::Load { array, .. } => {
                let storage = memory.get(&array).ok_or(SimError::Unsupported(id))?;
                storage[wrap_index(operand(0)?, storage.len())]
            }
            NodeKind::Store { array, .. } => {
                let index = operand(0)?;
                let value = operand(1)?;
                let storage = memory.get_mut(&array).ok_or(SimError::Unsupported(id))?;
                let at = wrap_index(index, storage.len());
                storage[at] = value;
                // The store's output *is* the stored value (the ordering
                // token consumed by later accesses).
                value
            }
            NodeKind::LoopBody { .. } => return Err(SimError::Unsupported(id)),
        };
        values.insert(node.output(), value);
    }
    Ok((values, memory))
}

/// Generates a deterministic pseudo-random input vector for `dfg`
/// (small magnitudes, so products stay meaningful).
pub fn random_inputs(dfg: &Dfg, seed: u64) -> BTreeMap<SignalId, i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    dfg.signals()
        .filter(|(_, s)| matches!(s.source(), SignalSource::PrimaryInput))
        .map(|(id, _)| (id, rng.gen_range(-1000..=1000)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::{OpKind, TimingSpec};
    use hls_dfg::DfgBuilder;

    #[test]
    fn evaluates_a_small_program() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let k = b.constant("k", 10);
        let p = b.op("p", OpKind::Mul, &[x, y]).unwrap();
        let q = b.op("q", OpKind::Add, &[p, k]).unwrap();
        b.op("r", OpKind::Gt, &[q, x]).unwrap();
        let g = b.finish().unwrap();
        let inputs = [(x, 6), (y, 7)].into_iter().collect();
        let values = interpret(&g, &inputs).unwrap();
        assert_eq!(values[&g.signal_by_name("p").unwrap()], 42);
        assert_eq!(values[&g.signal_by_name("q").unwrap()], 52);
        assert_eq!(values[&g.signal_by_name("r").unwrap()], 1);
    }

    #[test]
    fn missing_input_is_reported() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("p", OpKind::Inc, &[x]).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(
            interpret(&g, &BTreeMap::new()),
            Err(SimError::MissingInput(x))
        );
    }

    #[test]
    fn stage_expansion_preserves_values() {
        use hls_dfg::transform::expand_structural_stages;
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.op("m", OpKind::Mul, &[x, y]).unwrap();
        b.op("a", OpKind::Add, &[m, y]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let (expanded, _) =
            expand_structural_stages(&g, &spec, &[OpKind::Mul].into_iter().collect()).unwrap();
        let inputs_g = [(x, 11), (y, 5)].into_iter().collect();
        let base = interpret(&g, &inputs_g).unwrap();
        // Map inputs by name onto the expanded graph.
        let inputs_e = [
            (expanded.signal_by_name("x").unwrap(), 11),
            (expanded.signal_by_name("y").unwrap(), 5),
        ]
        .into_iter()
        .collect();
        let exp = interpret(&expanded, &inputs_e).unwrap();
        assert_eq!(
            base[&g.signal_by_name("a").unwrap()],
            exp[&expanded.signal_by_name("a").unwrap()]
        );
        assert_eq!(exp[&expanded.signal_by_name("m.s2").unwrap()], 55);
    }

    #[test]
    fn random_inputs_cover_all_primary_inputs_deterministically() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        b.op("p", OpKind::Add, &[x, y]).unwrap();
        let g = b.finish().unwrap();
        let a = random_inputs(&g, 3);
        let c = random_inputs(&g, 3);
        assert_eq!(a.len(), 2);
        assert_eq!(a, c);
        assert_ne!(a, random_inputs(&g, 4));
    }
}
