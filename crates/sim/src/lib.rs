//! Functional verification for `moveframe-hls` synthesis results.
//!
//! Scheduling and allocation must preserve *behaviour*: the RTL
//! structure MFSA emits has to compute exactly the values the input
//! data-flow graph describes. This crate closes that loop:
//!
//! * [`interpret`] — a reference interpreter for data-flow graphs
//!   (64-bit wrapping integer semantics, comparisons to 0/1);
//! * [`simulate`] — a cycle-accurate simulator for the synthesised
//!   design (schedule + [`hls_rtl::Datapath`] +
//!   [`hls_control::Controller`]): registers are only written by the
//!   controller's write-enables and read through the allocated register
//!   file, so register-sharing or lifetime bugs surface as wrong
//!   values;
//! * [`check_equivalence`] — runs both on the same inputs and reports
//!   every operation whose RTL value differs from its behavioural
//!   value.
//!
//! The property tests in `tests/` drive this over random graphs,
//! schedules and input vectors: *synthesis is semantics-preserving*.
//!
//! ```
//! use hls_celllib::{Library, OpKind, TimingSpec};
//! use hls_dfg::DfgBuilder;
//! use hls_sim::{check_equivalence, random_inputs};
//! use moveframe::mfsa::{self, MfsaConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DfgBuilder::new("g");
//! let x = b.input("x");
//! let y = b.input("y");
//! let p = b.op("p", OpKind::Mul, &[x, y])?;
//! let _q = b.op("q", OpKind::Add, &[p, y])?;
//! let dfg = b.finish()?;
//! let spec = TimingSpec::uniform_single_cycle();
//! let out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(2, Library::ncr_like()))?;
//! let inputs = random_inputs(&dfg, 7);
//! let mismatches = check_equivalence(&dfg, &out.schedule, &out.datapath, &spec, &inputs)?;
//! assert!(mismatches.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod eval;
mod interp;
mod rtl_sim;
mod vcd;

/// Alias used internally for the trace maps (re-exported id type).
pub(crate) use hls_rtl::AluId as AluIdAlias;

pub use error::SimError;
pub use eval::eval_op;
pub use interp::{interpret, interpret_with_memory, random_inputs, MemoryState};
pub use rtl_sim::{check_equivalence, simulate, Mismatch, SimOutcome, StepTrace};
pub use vcd::write_vcd;
