//! Cycle-accurate simulation of the synthesised design.

use std::collections::BTreeMap;

use hls_celllib::TimingSpec;
use hls_control::Controller;
use hls_dfg::{ArrayId, Dfg, NodeId, NodeKind, SignalId, SignalSource};
use hls_rtl::{Datapath, RegId};
use hls_schedule::Schedule;

use crate::interp::{initial_memory, interpret_with_memory, wrap_index, MemoryState};
use crate::{eval_op, SimError};

/// The state visible at the end of one control step (for waveform
/// dumps and debugging).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepTrace {
    /// The 1-based control step.
    pub step: u32,
    /// Combinational ALU outputs driven during the step (by the
    /// operations issued in it).
    pub alu_values: BTreeMap<crate::AluIdAlias, i64>,
    /// Register-file contents after the step's writes latched.
    pub registers: BTreeMap<RegId, i64>,
    /// Array contents after the step's stores latched (empty map for
    /// designs without memory).
    pub memory: MemoryState,
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// The value computed by every operation.
    pub node_values: BTreeMap<NodeId, i64>,
    /// Register-file contents after the last step.
    pub final_registers: BTreeMap<RegId, i64>,
    /// Final contents of every declared array.
    pub final_memory: MemoryState,
    /// The design outputs (signals without consumers).
    pub outputs: BTreeMap<SignalId, i64>,
    /// Per-step machine state, in step order.
    pub trace: Vec<StepTrace>,
}

/// One behavioural/RTL disagreement found by [`check_equivalence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mismatch {
    /// The disagreeing operation.
    pub node: NodeId,
    /// The behavioural (interpreter) value.
    pub expected: i64,
    /// The RTL (simulator) value.
    pub got: i64,
}

/// Simulates the synthesised design step by step.
///
/// The simulation is *structural*: operations read their operands from
/// the allocated register file (written only by the controller's
/// write-enables), from input/constant ports, or — when chained — from
/// the producing ALU's combinational output within the same step.
/// Register sharing, life-span and write-timing bugs therefore surface
/// as wrong values rather than being papered over.
///
/// # Errors
///
/// [`SimError::MissingInput`] when the input vector is incomplete;
/// [`SimError::ValueUnavailable`] when a value is read before the
/// controller made it available (a synthesis bug).
pub fn simulate(
    dfg: &Dfg,
    schedule: &Schedule,
    datapath: &Datapath,
    controller: &Controller,
    spec: &TimingSpec,
    inputs: &BTreeMap<SignalId, i64>,
) -> Result<SimOutcome, SimError> {
    let cs = schedule.control_steps();
    // External values (inputs + constants).
    let mut external: BTreeMap<SignalId, i64> = BTreeMap::new();
    for (sid, sig) in dfg.signals() {
        match sig.source() {
            SignalSource::Constant(v) => {
                external.insert(sid, v);
            }
            SignalSource::PrimaryInput => {
                if dfg.consumers(sid).is_empty() {
                    continue;
                }
                let v = *inputs.get(&sid).ok_or(SimError::MissingInput(sid))?;
                external.insert(sid, v);
            }
            SignalSource::Node(_) => {}
        }
    }

    // Register file, pre-loaded with inputs.
    let mut registers: BTreeMap<RegId, i64> = BTreeMap::new();
    for load in controller.input_loads() {
        let v = *inputs
            .get(&load.signal)
            .ok_or(SimError::MissingInput(load.signal))?;
        registers.insert(load.register, v);
    }

    // Topological rank, to order same-step (chained) activities.
    let rank: BTreeMap<NodeId, usize> = dfg
        .topo_order()
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i))
        .collect();

    let mut node_values: BTreeMap<NodeId, i64> = BTreeMap::new();
    let mut memory = initial_memory(dfg);
    let mut trace: Vec<StepTrace> = Vec::with_capacity(cs as usize);

    for step in 1..=cs {
        let mut alu_values: BTreeMap<crate::AluIdAlias, i64> = BTreeMap::new();
        let word = controller.word(hls_schedule::CStep::new(step));
        let mut activities = word.activities.clone();
        activities.sort_by_key(|a| rank[&a.node]);

        // Structural operand resolution, shared by ALU operations and
        // memory accesses.
        let resolve = |consumer: NodeId,
                       sig: SignalId,
                       registers: &BTreeMap<RegId, i64>,
                       node_values: &BTreeMap<NodeId, i64>|
         -> Result<i64, SimError> {
            match dfg.signal(sig).source() {
                SignalSource::Constant(_) | SignalSource::PrimaryInput => {
                    // Stored inputs read through their register;
                    // constants and unstored inputs through ports.
                    match datapath.register_allocation().register_of(sig) {
                        Some(r) => registers
                            .get(&r)
                            .copied()
                            .ok_or(SimError::ValueUnavailable {
                                node: consumer,
                                signal: sig,
                            }),
                        None => external
                            .get(&sig)
                            .copied()
                            .ok_or(SimError::MissingInput(sig)),
                    }
                }
                SignalSource::Node(producer) => {
                    let p_finish = schedule
                        .finish(producer, dfg, spec)
                        .ok_or(SimError::Unbound(producer))?;
                    if p_finish.get() >= step {
                        // Chained: combinational read of the producing
                        // ALU within this step.
                        node_values
                            .get(&producer)
                            .copied()
                            .ok_or(SimError::ValueUnavailable {
                                node: consumer,
                                signal: sig,
                            })
                    } else {
                        let r = datapath.register_allocation().register_of(sig).ok_or(
                            SimError::ValueUnavailable {
                                node: consumer,
                                signal: sig,
                            },
                        )?;
                        registers
                            .get(&r)
                            .copied()
                            .ok_or(SimError::ValueUnavailable {
                                node: consumer,
                                signal: sig,
                            })
                    }
                }
            }
        };

        for activity in &activities {
            let node = dfg.node(activity.node);
            let mut vals = [0i64; 2];
            for (i, &sig) in node.inputs().iter().enumerate() {
                vals[i] = resolve(activity.node, sig, &registers, &node_values)?;
            }
            let value = match node.kind() {
                NodeKind::Op(k) => eval_op(k, vals[0], vals[1]),
                NodeKind::Stage { base, index, .. } => {
                    if index == 0 {
                        eval_op(base, vals[0], vals[1])
                    } else {
                        vals[0]
                    }
                }
                _ => return Err(SimError::Unsupported(activity.node)),
            };
            node_values.insert(activity.node, value);
            alu_values.insert(activity.alu, value);
        }

        // Memory accesses: loads read the pre-step array contents;
        // stores latch at the end of the step (non-blocking assignment
        // semantics, matching the emitted Verilog). Ordering tokens in
        // the graph rule out same-step read-after-write hazards, so the
        // in-step order is immaterial.
        let mut pending_stores: Vec<(ArrayId, usize, i64)> = Vec::new();
        let mut accesses = word.mem.clone();
        accesses.sort_by_key(|m| rank[&m.node]);
        for access in &accesses {
            let node = dfg.node(access.node);
            let array = node
                .kind()
                .array()
                .ok_or(SimError::Unsupported(access.node))?;
            let len = memory
                .get(&array)
                .ok_or(SimError::Unsupported(access.node))?
                .len();
            let index = wrap_index(
                resolve(access.node, node.inputs()[0], &registers, &node_values)?,
                len,
            );
            let value = if access.write {
                let v = resolve(access.node, node.inputs()[1], &registers, &node_values)?;
                pending_stores.push((array, index, v));
                v
            } else {
                memory[&array][index]
            };
            node_values.insert(access.node, value);
        }
        for (array, index, v) in pending_stores {
            memory.get_mut(&array).expect("validated above")[index] = v;
        }

        // End of step: latch register writes.
        for write in &word.writes {
            let producer =
                dfg.signal(write.signal)
                    .source()
                    .node()
                    .ok_or(SimError::ValueUnavailable {
                        node: dfg.topo_order()[0],
                        signal: write.signal,
                    })?;
            let v = *node_values
                .get(&producer)
                .ok_or(SimError::ValueUnavailable {
                    node: producer,
                    signal: write.signal,
                })?;
            registers.insert(write.register, v);
        }
        trace.push(StepTrace {
            step,
            alu_values,
            registers: registers.clone(),
            memory: memory.clone(),
        });
    }

    // Collect design outputs.
    let mut outputs = BTreeMap::new();
    for (sid, sig) in dfg.signals() {
        if let SignalSource::Node(p) = sig.source() {
            if dfg.consumers(sid).is_empty() {
                if let Some(&v) = node_values.get(&p) {
                    outputs.insert(sid, v);
                }
            }
        }
    }

    Ok(SimOutcome {
        node_values,
        final_registers: registers,
        final_memory: memory,
        outputs,
        trace,
    })
}

/// Runs the behavioural interpreter and the RTL simulator on the same
/// inputs and returns every operation whose values disagree (empty =
/// the synthesis run is semantics-preserving on this vector). For
/// designs with memory, the final contents of every array are compared
/// too: a differing element is reported against a store to that array.
///
/// The controller is generated internally with
/// [`Controller::generate`].
///
/// # Errors
///
/// Propagates interpreter/simulator errors; controller generation
/// failures surface as [`SimError::Unbound`].
pub fn check_equivalence(
    dfg: &Dfg,
    schedule: &Schedule,
    datapath: &Datapath,
    spec: &TimingSpec,
    inputs: &BTreeMap<SignalId, i64>,
) -> Result<Vec<Mismatch>, SimError> {
    let controller = Controller::generate(dfg, schedule, datapath, spec)
        .map_err(|_| SimError::Unbound(dfg.topo_order()[0]))?;
    let (expected, expected_memory) = interpret_with_memory(dfg, inputs)?;
    let got = simulate(dfg, schedule, datapath, &controller, spec, inputs)?;
    let mut mismatches = Vec::new();
    for (id, node) in dfg.nodes() {
        let want = expected[&node.output()];
        match got.node_values.get(&id) {
            Some(&have) if have == want => {}
            Some(&have) => mismatches.push(Mismatch {
                node: id,
                expected: want,
                got: have,
            }),
            None => mismatches.push(Mismatch {
                node: id,
                expected: want,
                got: i64::MIN,
            }),
        }
    }
    for (array, want) in &expected_memory {
        let have = got.final_memory.get(array).cloned().unwrap_or_default();
        if &have == want {
            continue;
        }
        let at = (0..want.len())
            .find(|&i| have.get(i) != Some(&want[i]))
            .unwrap_or(0);
        let culprit = dfg
            .node_ids()
            .find(|&id| {
                matches!(dfg.node(id).kind(),
                    NodeKind::Store { array: a, .. } if a == *array)
            })
            .unwrap_or(dfg.topo_order()[0]);
        mismatches.push(Mismatch {
            node: culprit,
            expected: want[at],
            got: have.get(at).copied().unwrap_or(i64::MIN),
        });
    }
    Ok(mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_inputs;
    use hls_celllib::{Library, OpKind};
    use hls_dfg::DfgBuilder;
    use hls_rtl::AluAllocation;
    use hls_schedule::{CStep, Slot, UnitId};

    fn manual_design() -> (Dfg, Schedule, Datapath, TimingSpec) {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let p = b.op("p", OpKind::Add, &[x, y]).unwrap();
        let q = b.op("q", OpKind::Sub, &[p, y]).unwrap();
        b.op("r", OpKind::Mul, &[q, p]).unwrap();
        let dfg = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let mut s = Schedule::new(&dfg, 3);
        let lib = Library::ncr_like();
        let mut alloc = AluAllocation::new();
        alloc.push(lib.alu_by_name("add_sub").unwrap().clone());
        alloc.push(lib.alu_by_name("mul").unwrap().clone());
        for (name, step, inst) in [("p", 1, 0), ("q", 2, 0), ("r", 3, 1)] {
            s.assign(
                dfg.node_by_name(name).unwrap(),
                Slot {
                    step: CStep::new(step),
                    unit: UnitId::Alu { instance: inst },
                },
            );
        }
        let dp = Datapath::build(&dfg, &s, &alloc, &spec).unwrap();
        (dfg, s, dp, spec)
    }

    #[test]
    fn manual_design_is_equivalent() {
        let (dfg, s, dp, spec) = manual_design();
        let inputs = random_inputs(&dfg, 99);
        let mismatches = check_equivalence(&dfg, &s, &dp, &spec, &inputs).unwrap();
        assert!(mismatches.is_empty(), "{mismatches:?}");
    }

    #[test]
    fn outputs_are_collected() {
        let (dfg, s, dp, spec) = manual_design();
        let controller = Controller::generate(&dfg, &s, &dp, &spec).unwrap();
        let x = dfg.signal_by_name("x").unwrap();
        let y = dfg.signal_by_name("y").unwrap();
        let inputs = [(x, 10), (y, 3)].into_iter().collect();
        let out = simulate(&dfg, &s, &dp, &controller, &spec, &inputs).unwrap();
        // p = 13, q = 10, r = 130.
        let r_sig = dfg.signal_by_name("r").unwrap();
        assert_eq!(out.outputs[&r_sig], 130);
    }

    #[test]
    fn missing_input_is_reported() {
        let (dfg, s, dp, spec) = manual_design();
        let controller = Controller::generate(&dfg, &s, &dp, &spec).unwrap();
        let err = simulate(&dfg, &s, &dp, &controller, &spec, &BTreeMap::new()).unwrap_err();
        assert!(matches!(err, SimError::MissingInput(_)));
    }

    #[test]
    fn equivalence_detects_a_corrupted_schedule() {
        // Move `q` to share p's step on a different ALU: q would read
        // the p register before it is written, so either the simulator
        // errors or the values mismatch — it must NOT silently agree.
        let (dfg, mut s, _, spec) = manual_design();
        let lib = Library::ncr_like();
        let mut alloc = AluAllocation::new();
        alloc.push(lib.alu_by_name("add_sub").unwrap().clone());
        alloc.push(lib.alu_by_name("add_sub").unwrap().clone());
        alloc.push(lib.alu_by_name("mul").unwrap().clone());
        s.assign(
            dfg.node_by_name("q").unwrap(),
            Slot {
                step: CStep::new(1),
                unit: UnitId::Alu { instance: 1 },
            },
        );
        s.assign(
            dfg.node_by_name("r").unwrap(),
            Slot {
                step: CStep::new(3),
                unit: UnitId::Alu { instance: 2 },
            },
        );
        // Datapath::build treats the same-step read as chaining, which
        // the verifier would flag; simulation then reads p's ALU output
        // combinationally. Use the *schedule-level* verifier to reject
        // instead — and confirm it does.
        let violations =
            hls_schedule::verify(&dfg, &s, &spec, hls_schedule::VerifyOptions::default());
        assert!(!violations.is_empty(), "corrupted schedule must not verify");
    }
}
