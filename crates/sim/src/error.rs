//! Error type for interpretation and simulation.

use std::fmt;

use hls_dfg::{NodeId, SignalId};

/// Error produced by the interpreter or the RTL simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A primary input has no value in the supplied input map.
    MissingInput(SignalId),
    /// The graph contains a node the simulator cannot execute (a folded
    /// loop body — expand or schedule it hierarchically first).
    Unsupported(NodeId),
    /// The schedule/data path is incomplete for this node.
    Unbound(NodeId),
    /// A consumed value was not present where the data path said it
    /// would be (register never written, or read out of its life span).
    ValueUnavailable {
        /// The consuming operation.
        node: NodeId,
        /// The missing signal.
        signal: SignalId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingInput(s) => write!(f, "no value supplied for primary input {s}"),
            SimError::Unsupported(n) => write!(f, "node {n} cannot be simulated"),
            SimError::Unbound(n) => write!(f, "node {n} is not fully scheduled/allocated"),
            SimError::ValueUnavailable { node, signal } => {
                write!(
                    f,
                    "operation {node} read signal {signal} before it was available"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let mut b = hls_dfg::DfgBuilder::new("x");
        let s = b.input("s");
        assert!(SimError::MissingInput(s).to_string().contains("input"));
    }
}
