//! Reference semantics of the operator set.

use hls_celllib::OpKind;

/// Evaluates one operation on 64-bit integers: wrapping arithmetic,
/// comparisons yielding 0/1, shift counts masked to 0–63, and division
/// by zero defined as 0 (hardware-friendly total semantics).
///
/// Unary operators ignore `b` (pass 0 by convention).
///
/// ```
/// use hls_celllib::OpKind;
/// use hls_sim::eval_op;
///
/// assert_eq!(eval_op(OpKind::Add, 3, 4), 7);
/// assert_eq!(eval_op(OpKind::Lt, 3, 4), 1);
/// assert_eq!(eval_op(OpKind::Div, 10, 0), 0);
/// assert_eq!(eval_op(OpKind::Neg, 5, 0), -5);
/// ```
pub fn eval_op(kind: OpKind, a: i64, b: i64) -> i64 {
    match kind {
        OpKind::Add => a.wrapping_add(b),
        OpKind::Sub => a.wrapping_sub(b),
        OpKind::Mul => a.wrapping_mul(b),
        OpKind::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        OpKind::And => a & b,
        OpKind::Or => a | b,
        OpKind::Xor => a ^ b,
        OpKind::Not => !a,
        OpKind::Eq => i64::from(a == b),
        OpKind::Ne => i64::from(a != b),
        OpKind::Lt => i64::from(a < b),
        OpKind::Gt => i64::from(a > b),
        OpKind::Shl => a.wrapping_shl((b & 63) as u32),
        OpKind::Shr => a.wrapping_shr((b & 63) as u32),
        OpKind::Inc => a.wrapping_add(1),
        OpKind::Dec => a.wrapping_sub(1),
        OpKind::Neg => a.wrapping_neg(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(eval_op(OpKind::Add, i64::MAX, 1), i64::MIN);
        assert_eq!(eval_op(OpKind::Mul, i64::MAX, 2), -2);
        assert_eq!(eval_op(OpKind::Neg, i64::MIN, 0), i64::MIN);
    }

    #[test]
    fn comparisons_are_boolean() {
        assert_eq!(eval_op(OpKind::Eq, 5, 5), 1);
        assert_eq!(eval_op(OpKind::Ne, 5, 5), 0);
        assert_eq!(eval_op(OpKind::Gt, -1, -2), 1);
    }

    #[test]
    fn division_is_total() {
        assert_eq!(eval_op(OpKind::Div, 42, 0), 0);
        assert_eq!(
            eval_op(OpKind::Div, i64::MIN, -1),
            i64::MIN.wrapping_div(-1)
        );
    }

    #[test]
    fn shifts_mask_their_count() {
        assert_eq!(eval_op(OpKind::Shl, 1, 64), 1);
        assert_eq!(eval_op(OpKind::Shl, 1, 65), 2);
        assert_eq!(eval_op(OpKind::Shr, 8, 2), 2);
    }

    #[test]
    fn unary_ops_ignore_b() {
        assert_eq!(eval_op(OpKind::Inc, 7, 999), 8);
        assert_eq!(eval_op(OpKind::Not, 0, 999), -1);
    }
}
