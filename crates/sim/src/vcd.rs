//! VCD (value-change-dump) waveform export of a simulation run, for
//! viewing in GTKWave and friends.

use std::fmt::Write as _;

use hls_dfg::Dfg;
use hls_rtl::Datapath;

use crate::SimOutcome;

fn vcd_id(index: usize) -> String {
    // Printable VCD identifier characters: '!'..='~'.
    let mut index = index;
    let mut id = String::new();
    loop {
        id.push((b'!' + (index % 94) as u8) as char);
        index /= 94;
        if index == 0 {
            break;
        }
    }
    id
}

fn bits64(value: i64) -> String {
    format!("b{:064b}", value as u64)
}

/// Renders the simulation trace as a VCD document: one timestep per
/// control step, with the state counter, every register and every ALU
/// output as 64-bit variables.
///
/// ```
/// # use hls_celllib::{Library, OpKind, TimingSpec};
/// # use hls_dfg::DfgBuilder;
/// # use hls_sim::{simulate, write_vcd, random_inputs};
/// # use moveframe::mfsa::{self, MfsaConfig};
/// # use hls_control::Controller;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("g");
/// let x = b.input("x");
/// let p = b.op("p", OpKind::Inc, &[x])?;
/// let _q = b.op("q", OpKind::Dec, &[p])?;
/// let dfg = b.finish()?;
/// let spec = TimingSpec::uniform_single_cycle();
/// let out = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(2, Library::ncr_like()))?;
/// let ctl = Controller::generate(&dfg, &out.schedule, &out.datapath, &spec)?;
/// let sim = simulate(&dfg, &out.schedule, &out.datapath, &ctl, &spec, &random_inputs(&dfg, 1))?;
/// let vcd = write_vcd(&dfg, &out.datapath, &sim);
/// assert!(vcd.contains("$enddefinitions"));
/// # Ok(())
/// # }
/// ```
pub fn write_vcd(dfg: &Dfg, datapath: &Datapath, outcome: &SimOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$version moveframe-hls simulator $end");
    let _ = writeln!(out, "$timescale 1 ns $end");
    let _ = writeln!(out, "$scope module {} $end", dfg.name().replace(' ', "_"));

    // Variable declarations: state, registers, ALU outputs.
    let mut vars: Vec<(String, String)> = Vec::new(); // (vcd id, kind)
    let state_id = vcd_id(0);
    let _ = writeln!(out, "$var wire 32 {state_id} state $end");
    let mut next = 1usize;
    let mut reg_ids = Vec::new();
    for reg in datapath.registers() {
        let id = vcd_id(next);
        next += 1;
        let _ = writeln!(out, "$var wire 64 {id} {} $end", reg.id);
        reg_ids.push((reg.id, id.clone()));
        vars.push((id, "reg".into()));
    }
    let mut alu_ids = Vec::new();
    for alu in datapath.alus() {
        let id = vcd_id(next);
        next += 1;
        let _ = writeln!(out, "$var wire 64 {id} {}_y $end", alu.id);
        alu_ids.push((alu.id, id.clone()));
        vars.push((id, "alu".into()));
    }
    // One variable per array element, named `array[i]`, so stores are
    // visible in the waveform as they latch.
    let mut mem_ids = Vec::new();
    for arr in dfg.memory().arrays() {
        for i in 0..arr.size() as usize {
            let id = vcd_id(next);
            next += 1;
            let _ = writeln!(out, "$var wire 64 {id} {}[{i}] $end", arr.name());
            mem_ids.push((arr.id(), i, id.clone()));
            vars.push((id, "mem".into()));
        }
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Initial values: x (unknown).
    let _ = writeln!(out, "#0");
    let _ = writeln!(out, "b0 {state_id}");
    for (id, _) in &vars {
        let _ = writeln!(out, "bx {id}");
    }

    for trace in &outcome.trace {
        let _ = writeln!(out, "#{}", trace.step * 10);
        let _ = writeln!(out, "{} {state_id}", bits64(trace.step as i64));
        for (reg, id) in &reg_ids {
            if let Some(&v) = trace.registers.get(reg) {
                let _ = writeln!(out, "{} {id}", bits64(v));
            }
        }
        for (alu, id) in &alu_ids {
            match trace.alu_values.get(alu) {
                Some(&v) => {
                    let _ = writeln!(out, "{} {id}", bits64(v));
                }
                None => {
                    let _ = writeln!(out, "bx {id}");
                }
            }
        }
        for (array, i, id) in &mem_ids {
            if let Some(storage) = trace.memory.get(array) {
                let _ = writeln!(out, "{} {id}", bits64(storage[*i]));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random_inputs, simulate};
    use hls_celllib::{Library, OpKind, TimingSpec};
    use hls_control::Controller;
    use hls_dfg::DfgBuilder;
    use hls_rtl::AluAllocation;
    use hls_schedule::{CStep, Schedule, Slot, UnitId};

    #[test]
    fn vcd_contains_headers_steps_and_values() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let p = b.op("p", OpKind::Add, &[x, x]).unwrap();
        b.op("q", OpKind::Sub, &[p, x]).unwrap();
        let dfg = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let mut s = Schedule::new(&dfg, 2);
        for (i, name) in ["p", "q"].iter().enumerate() {
            s.assign(
                dfg.node_by_name(name).unwrap(),
                Slot {
                    step: CStep::new(i as u32 + 1),
                    unit: UnitId::Alu { instance: 0 },
                },
            );
        }
        let lib = Library::ncr_like();
        let mut alloc = AluAllocation::new();
        alloc.push(lib.alu_by_name("add_sub").unwrap().clone());
        let dp = hls_rtl::Datapath::build(&dfg, &s, &alloc, &spec).unwrap();
        let ctl = Controller::generate(&dfg, &s, &dp, &spec).unwrap();
        let sim = simulate(&dfg, &s, &dp, &ctl, &spec, &random_inputs(&dfg, 5)).unwrap();
        let vcd = write_vcd(&dfg, &dp, &sim);
        assert!(vcd.contains("$timescale"));
        assert!(vcd.contains("$var wire 32"));
        assert!(vcd.contains("$var wire 64"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("#10"));
        assert!(vcd.contains("#20"));
        // Two steps traced.
        assert_eq!(sim.trace.len(), 2);
    }

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let ids: Vec<String> = (0..200).map(vcd_id).collect();
        let set: std::collections::BTreeSet<&String> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
        for id in &ids {
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
        }
    }
}
