//! Baseline schedulers for the `moveframe-hls` workspace.
//!
//! The DAC-1992 paper positions MFS/MFSA against three families of prior
//! work (its §1): list scheduling, force-directed scheduling (HAL) and
//! probabilistic energy methods (simulated annealing). This crate
//! implements one representative of each, over the same substrates, so
//! the runtime and quality comparisons of `EXPERIMENTS.md` are
//! apples-to-apples:
//!
//! * [`list_schedule`] — resource-constrained list scheduling with
//!   mobility priorities (after Pangrle & Gajski's Slicer);
//! * [`force_directed_schedule`] — time-constrained force-directed
//!   scheduling (after Paulin & Knight's HAL);
//! * [`anneal_schedule`] — simulated-annealing scheduling over the same
//!   move space as MFS, with an area cost (after Devadas & Newton);
//! * [`asap_schedule`] — the trivial ASAP baseline (FACET-style).
//!
//! All baselines produce an [`hls_schedule::Schedule`] that passes the
//! shared verifier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod asap;
mod fds;
mod list;
mod traced;

pub use anneal::{anneal_schedule, AnnealParams, AnnealStats};
pub use asap::{alap_schedule, asap_schedule};
pub use fds::force_directed_schedule;
pub use list::list_schedule;
pub use traced::{anneal_schedule_traced, force_directed_schedule_traced, list_schedule_traced};
