//! ASAP/ALAP baselines (FACET-style): schedule every operation at its
//! earliest (or latest) feasible step, binding units greedily.

use std::collections::BTreeMap;

use hls_celllib::TimingSpec;
use hls_dfg::{Dfg, FuClass};
use hls_schedule::{alap, asap, CStep, FuIndex, Schedule, ScheduleError, Slot, UnitId};

fn bind(dfg: &Dfg, spec: &TimingSpec, starts: &[CStep], cs: u32) -> Schedule {
    let mut sched = Schedule::new(dfg, cs);
    // Greedy per-class unit binding: reuse the first unit free over the
    // operation's span.
    let mut busy: BTreeMap<(FuClass, u32, u32), ()> = BTreeMap::new();
    let mut unit_count: BTreeMap<FuClass, u32> = BTreeMap::new();
    for &id in dfg.topo_order() {
        let class = dfg.node(id).kind().fu_class();
        let cycles = dfg.node(id).kind().cycles(spec) as u32;
        let start = starts[id.index()];
        let max_units = unit_count.entry(class).or_insert(0);
        let mut chosen = None;
        for u in 1..=*max_units {
            let free = (0..cycles).all(|k| !busy.contains_key(&(class, u, start.get() + k)));
            if free {
                chosen = Some(u);
                break;
            }
        }
        let u = chosen.unwrap_or_else(|| {
            *max_units += 1;
            *max_units
        });
        for k in 0..cycles {
            busy.insert((class, u, start.get() + k), ());
        }
        sched.assign(
            id,
            Slot {
                step: start,
                unit: UnitId::Fu {
                    class,
                    index: FuIndex::new(u),
                },
            },
        );
    }
    sched
}

/// The ASAP baseline: every operation starts as early as possible.
///
/// # Errors
///
/// [`ScheduleError::MemoryUnsupported`] for graphs with banked arrays:
/// ASAP binding invents units on demand and cannot honour a bank's
/// port limit.
pub fn asap_schedule(dfg: &Dfg, spec: &TimingSpec, cs: u32) -> Result<Schedule, ScheduleError> {
    if !dfg.memory().is_empty() {
        return Err(ScheduleError::MemoryUnsupported);
    }
    let starts = asap(dfg, spec);
    // Check the horizon.
    for (i, &s) in starts.iter().enumerate() {
        let id = dfg.node_ids().nth(i).expect("dense ids");
        let cycles = dfg.node(id).kind().cycles(spec) as u32;
        if s.get() + cycles - 1 > cs {
            return Err(ScheduleError::InfeasibleTime {
                needed: s.get() + cycles - 1,
                given: cs,
            });
        }
    }
    Ok(bind(dfg, spec, &starts, cs))
}

/// The ALAP baseline: every operation starts as late as possible.
///
/// # Errors
///
/// [`ScheduleError::InfeasibleTime`] when the critical path exceeds
/// `cs`; [`ScheduleError::MemoryUnsupported`] for graphs with banked
/// arrays.
pub fn alap_schedule(dfg: &Dfg, spec: &TimingSpec, cs: u32) -> Result<Schedule, ScheduleError> {
    if !dfg.memory().is_empty() {
        return Err(ScheduleError::MemoryUnsupported);
    }
    let starts = alap(dfg, spec, cs)?;
    Ok(bind(dfg, spec, &starts, cs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;
    use hls_schedule::{verify, VerifyOptions};

    fn graph() -> Dfg {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let p = b.op("p", OpKind::Mul, &[x, x]).unwrap();
        b.op("q", OpKind::Add, &[p, x]).unwrap();
        b.op("r", OpKind::Add, &[x, x]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn asap_is_valid_and_front_loaded() {
        let g = graph();
        let spec = TimingSpec::uniform_single_cycle();
        let s = asap_schedule(&g, &spec, 3).unwrap();
        assert!(verify(&g, &s, &spec, VerifyOptions::default()).is_empty());
        let r = g.node_by_name("r").unwrap();
        assert_eq!(s.start(r), Some(CStep::new(1)));
    }

    #[test]
    fn alap_is_valid_and_back_loaded() {
        let g = graph();
        let spec = TimingSpec::uniform_single_cycle();
        let s = alap_schedule(&g, &spec, 4).unwrap();
        assert!(verify(&g, &s, &spec, VerifyOptions::default()).is_empty());
        let r = g.node_by_name("r").unwrap();
        assert_eq!(s.start(r), Some(CStep::new(4)));
    }

    #[test]
    fn infeasible_horizon_is_reported() {
        let g = graph();
        let spec = TimingSpec::uniform_single_cycle();
        assert!(asap_schedule(&g, &spec, 1).is_err());
        assert!(alap_schedule(&g, &spec, 1).is_err());
    }

    #[test]
    fn multicycle_binding_blocks_the_unit() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("m1", OpKind::Mul, &[x, x]).unwrap();
        b.op("m2", OpKind::Mul, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let s = asap_schedule(&g, &spec, 2).unwrap();
        assert!(verify(&g, &s, &spec, VerifyOptions::default()).is_empty());
        // Both start at t1: two multipliers.
        assert_eq!(s.fu_counts()[&FuClass::Op(OpKind::Mul)], 2);
    }
}
