//! Resource-constrained list scheduling (after Slicer, paper ref. [4]).

use std::collections::BTreeMap;

use hls_celllib::TimingSpec;
use hls_dfg::{Dfg, FuClass, NodeId};
use hls_schedule::{asap, CStep, FuIndex, Schedule, ScheduleError, Slot, UnitId};

/// List scheduling under per-class unit limits: operations become ready
/// when their predecessors finish; each step executes the highest-
/// priority ready operations up to the unit budget of their class.
/// Priority is least mobility first (mobility from an unconstrained
/// ALAP at the `cs_bound` horizon), ties by node id.
///
/// Returns a schedule of minimal-ish length within `cs_bound` steps.
/// For graphs with banked arrays, each bank's port count is merged
/// into the limits as a hard cap on its `Mem` class, so the result is
/// always port-safe.
///
/// ```
/// use hls_celllib::{OpKind, TimingSpec};
/// use hls_dfg::{DfgBuilder, FuClass};
/// use hls_baselines::list_schedule;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("g");
/// let x = b.input("x");
/// for i in 0..4 {
///     b.op(&format!("a{i}"), OpKind::Add, &[x, x])?;
/// }
/// let dfg = b.finish()?;
/// let limits = [(FuClass::Op(OpKind::Add), 2)].into_iter().collect();
/// let spec = TimingSpec::uniform_single_cycle();
/// let sched = list_schedule(&dfg, &spec, &limits, 8)?;
/// // 4 adds on 2 adders: 2 steps.
/// assert!(sched.iter().all(|(_, s)| s.step.get() <= 2));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// [`ScheduleError::InfeasibleTime`] when the schedule does not fit in
/// `cs_bound` steps under the given limits.
pub fn list_schedule(
    dfg: &Dfg,
    spec: &TimingSpec,
    limits: &BTreeMap<FuClass, u32>,
    cs_bound: u32,
) -> Result<Schedule, ScheduleError> {
    // Bank port counts are implicit hard limits on their Mem classes:
    // memory graphs stay port-safe even with an empty limit map.
    let mut limits = limits.clone();
    for bank in dfg.memory().banks() {
        let class = FuClass::Mem(bank.id());
        let cap = limits
            .get(&class)
            .copied()
            .unwrap_or(u32::MAX)
            .min(bank.ports());
        limits.insert(class, cap);
    }
    let limits = &limits;
    let asap_starts = asap(dfg, spec);
    // Mobility against the bound horizon (for priorities only).
    let alap_starts = hls_schedule::alap(dfg, spec, cs_bound)?;
    let mobility = |n: NodeId| {
        alap_starts[n.index()]
            .get()
            .saturating_sub(asap_starts[n.index()].get())
    };

    let mut sched = Schedule::new(dfg, cs_bound);
    let mut remaining_preds: Vec<usize> = dfg.node_ids().map(|n| dfg.preds(n).len()).collect();
    let mut ready: Vec<NodeId> = dfg
        .node_ids()
        .filter(|&n| remaining_preds[n.index()] == 0)
        .collect();
    // Unit busy-until step per (class, unit index).
    let mut busy_until: BTreeMap<(FuClass, u32), u32> = BTreeMap::new();
    let mut finished_at: Vec<u32> = vec![0; dfg.node_count()];
    let mut scheduled = 0usize;

    for step in 1..=cs_bound {
        // Newly ready ops whose predecessors finished before this step.
        ready.sort_by_key(|&n| (mobility(n), n));
        let mut next_ready = Vec::new();
        for &n in &ready {
            let preds_done = dfg
                .preds(n)
                .iter()
                .all(|&p| finished_at[p.index()] != 0 && finished_at[p.index()] < step);
            let class = dfg.node(n).kind().fu_class();
            let cycles = dfg.node(n).kind().cycles(spec) as u32;
            let limit = limits.get(&class).copied().unwrap_or(u32::MAX);
            let mut placed = false;
            if preds_done && step + cycles - 1 <= cs_bound {
                // Find a unit idle through the whole span.
                for u in 1..=limit.min(dfg.node_count() as u32) {
                    let free = busy_until.get(&(class, u)).copied().unwrap_or(0) < step;
                    if free {
                        busy_until.insert((class, u), step + cycles - 1);
                        finished_at[n.index()] = step + cycles - 1;
                        sched.assign(
                            n,
                            Slot {
                                step: CStep::new(step),
                                unit: UnitId::Fu {
                                    class,
                                    index: FuIndex::new(u),
                                },
                            },
                        );
                        scheduled += 1;
                        placed = true;
                        break;
                    }
                }
            }
            if !placed {
                next_ready.push(n);
            }
        }
        // Deferred ops plus ops released by this step's completions.
        ready = next_ready;
        for n in dfg.node_ids() {
            if finished_at[n.index()] == step {
                for &s in dfg.succs(n) {
                    remaining_preds[s.index()] -= 1;
                    if remaining_preds[s.index()] == 0 {
                        ready.push(s);
                    }
                }
            }
        }
        if scheduled == dfg.node_count() {
            break;
        }
    }

    if scheduled != dfg.node_count() {
        return Err(ScheduleError::InfeasibleTime {
            needed: cs_bound + 1,
            given: cs_bound,
        });
    }
    Ok(sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;
    use hls_schedule::{verify, VerifyOptions};

    fn independent_adds(n: usize) -> Dfg {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        for i in 0..n {
            b.op(&format!("a{i}"), OpKind::Add, &[x, x]).unwrap();
        }
        b.finish().unwrap()
    }

    fn steps_used(dfg: &Dfg, spec: &TimingSpec, s: &Schedule) -> u32 {
        dfg.node_ids()
            .filter_map(|n| s.finish(n, dfg, spec))
            .map(|c| c.get())
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn respects_unit_limits() {
        let g = independent_adds(6);
        let spec = TimingSpec::uniform_single_cycle();
        let limits = [(FuClass::Op(OpKind::Add), 2)].into_iter().collect();
        let s = list_schedule(&g, &spec, &limits, 10).unwrap();
        assert!(verify(&g, &s, &spec, VerifyOptions::default()).is_empty());
        assert_eq!(s.fu_counts()[&FuClass::Op(OpKind::Add)], 2);
        assert_eq!(steps_used(&g, &spec, &s), 3);
    }

    #[test]
    fn dependencies_delay_readiness() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let p = b.op("p", OpKind::Add, &[x, x]).unwrap();
        b.op("q", OpKind::Add, &[p, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let limits = [(FuClass::Op(OpKind::Add), 2)].into_iter().collect();
        let s = list_schedule(&g, &spec, &limits, 4).unwrap();
        assert!(verify(&g, &s, &spec, VerifyOptions::default()).is_empty());
        assert_eq!(steps_used(&g, &spec, &s), 2);
    }

    #[test]
    fn critical_ops_preempt_mobile_ones() {
        // One adder; a 3-add chain plus a free add at cs=4: the free op
        // must yield to the chain heads and land in step 4.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let a1 = b.op("a1", OpKind::Add, &[x, x]).unwrap();
        let a2 = b.op("a2", OpKind::Add, &[a1, x]).unwrap();
        b.op("a3", OpKind::Add, &[a2, x]).unwrap();
        b.op("free", OpKind::Add, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let limits = [(FuClass::Op(OpKind::Add), 1)].into_iter().collect();
        let s = list_schedule(&g, &spec, &limits, 4).unwrap();
        assert!(verify(&g, &s, &spec, VerifyOptions::default()).is_empty());
        let free = g.node_by_name("free").unwrap();
        assert_eq!(s.start(free), Some(CStep::new(4)));
    }

    #[test]
    fn multicycle_ops_hold_units_across_steps() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("m1", OpKind::Mul, &[x, x]).unwrap();
        b.op("m2", OpKind::Mul, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let limits = [(FuClass::Op(OpKind::Mul), 1)].into_iter().collect();
        let s = list_schedule(&g, &spec, &limits, 4).unwrap();
        assert!(verify(&g, &s, &spec, VerifyOptions::default()).is_empty());
        assert_eq!(steps_used(&g, &spec, &s), 4);
    }

    #[test]
    fn over_constrained_budget_fails() {
        let g = independent_adds(8);
        let spec = TimingSpec::uniform_single_cycle();
        let limits = [(FuClass::Op(OpKind::Add), 1)].into_iter().collect();
        assert!(list_schedule(&g, &spec, &limits, 4).is_err());
    }
}
