//! Simulated-annealing scheduling (after Devadas & Newton, paper
//! ref. [8]) — the probabilistic energy method MFS/MFSA are compared
//! against for runtime and tuning sensitivity.

use hls_celllib::{Library, TimingSpec};
use hls_dfg::{Dfg, FuClass, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hls_schedule::{CStep, FuIndex, Schedule, ScheduleError, Slot, TimeFrames, UnitId};

/// Annealing hyper-parameters — the "tuning problems" the paper
/// attributes to probabilistic methods are real: results depend on all
/// four of these.
#[derive(Debug, Clone, Copy)]
pub struct AnnealParams {
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
    /// Moves attempted per temperature level.
    pub moves_per_temp: u32,
    /// Initial temperature.
    pub t0: f64,
    /// Geometric cooling factor per level (0 < alpha < 1).
    pub alpha: f64,
    /// Temperature levels.
    pub levels: u32,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            seed: 0xDAC1992,
            moves_per_temp: 200,
            t0: 5_000.0,
            alpha: 0.9,
            levels: 60,
        }
    }
}

/// Run statistics, for the comparison benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealStats {
    /// Accepted moves.
    pub accepted: u64,
    /// Attempted moves.
    pub attempted: u64,
    /// Final energy (FU area in µm²).
    pub final_energy: f64,
}

/// Time-constrained scheduling by simulated annealing over start steps:
/// the energy is the total single-function-unit area implied by the
/// per-step concurrency (the same objective MFS minimises), moves pick a
/// random operation and a random step within its current dependency
/// slack, and acceptance follows the Metropolis criterion.
///
/// The returned schedule binds unit indices greedily from the final
/// step assignment.
///
/// # Errors
///
/// [`ScheduleError::InfeasibleTime`] when the critical path exceeds
/// `cs`; [`ScheduleError::MemoryUnsupported`] for graphs with banked
/// arrays (the annealer's greedy binder invents units on demand and
/// cannot honour a bank's port limit).
pub fn anneal_schedule(
    dfg: &Dfg,
    spec: &TimingSpec,
    cs: u32,
    library: &Library,
    params: &AnnealParams,
) -> Result<(Schedule, AnnealStats), ScheduleError> {
    if !dfg.memory().is_empty() {
        return Err(ScheduleError::MemoryUnsupported);
    }
    let tf = TimeFrames::compute(dfg, spec, cs)?;
    let cycles: Vec<u32> = dfg
        .node_ids()
        .map(|n| dfg.node(n).kind().cycles(spec) as u32)
        .collect();
    // Start from ASAP.
    let mut starts: Vec<u32> = dfg.node_ids().map(|n| tf.asap(n).get()).collect();

    let unit_area = |class: FuClass| -> f64 {
        class
            .base_op()
            .and_then(|k| library.fu_area(k).ok())
            .map(|a| a.as_u64() as f64)
            .unwrap_or(1_000.0)
    };

    let energy = |starts: &[u32]| -> f64 {
        // FU count per class = peak concurrency; energy = Σ count·area.
        let mut peak: std::collections::BTreeMap<FuClass, u32> = Default::default();
        let mut per_step: std::collections::BTreeMap<(FuClass, u32), u32> = Default::default();
        for n in dfg.node_ids() {
            let class = dfg.node(n).kind().fu_class();
            for k in 0..cycles[n.index()] {
                let e = per_step.entry((class, starts[n.index()] + k)).or_insert(0);
                *e += 1;
                let p = peak.entry(class).or_insert(0);
                *p = (*p).max(*e);
            }
        }
        peak.into_iter().map(|(c, n)| n as f64 * unit_area(c)).sum()
    };

    // Dependency slack of node n under the current assignment.
    let slack = |starts: &[u32], n: NodeId| -> (u32, u32) {
        let mut lo = tf.asap(n).get();
        let mut hi = tf.alap(n).get();
        for &p in dfg.preds(n) {
            lo = lo.max(starts[p.index()] + cycles[p.index()]);
        }
        for &s in dfg.succs(n) {
            hi = hi.min(starts[s.index()].saturating_sub(cycles[n.index()]));
        }
        (lo, hi)
    };

    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut current = energy(&starts);
    let mut stats = AnnealStats {
        accepted: 0,
        attempted: 0,
        final_energy: current,
    };
    let mut temp = params.t0;
    let node_ids: Vec<NodeId> = dfg.node_ids().collect();
    for _ in 0..params.levels {
        for _ in 0..params.moves_per_temp {
            stats.attempted += 1;
            let n = node_ids[rng.gen_range(0..node_ids.len())];
            let (lo, hi) = slack(&starts, n);
            if lo > hi {
                continue;
            }
            let new_step = rng.gen_range(lo..=hi);
            if new_step == starts[n.index()] {
                continue;
            }
            let old = starts[n.index()];
            starts[n.index()] = new_step;
            let proposed = energy(&starts);
            let delta = proposed - current;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
            if accept {
                current = proposed;
                stats.accepted += 1;
            } else {
                starts[n.index()] = old;
            }
        }
        temp *= params.alpha;
    }
    stats.final_energy = current;

    // Bind units greedily.
    let mut sched = Schedule::new(dfg, cs);
    let mut busy: std::collections::BTreeMap<(FuClass, u32, u32), ()> = Default::default();
    let mut unit_count: std::collections::BTreeMap<FuClass, u32> = Default::default();
    for &n in dfg.topo_order() {
        let class = dfg.node(n).kind().fu_class();
        let start = starts[n.index()];
        let span = cycles[n.index()];
        let max_units = unit_count.entry(class).or_insert(0);
        let mut chosen = None;
        for u in 1..=*max_units {
            if (0..span).all(|k| !busy.contains_key(&(class, u, start + k))) {
                chosen = Some(u);
                break;
            }
        }
        let u = chosen.unwrap_or_else(|| {
            *max_units += 1;
            *max_units
        });
        for k in 0..span {
            busy.insert((class, u, start + k), ());
        }
        sched.assign(
            n,
            Slot {
                step: CStep::new(start),
                unit: UnitId::Fu {
                    class,
                    index: FuIndex::new(u),
                },
            },
        );
    }
    Ok((sched, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;
    use hls_schedule::{verify, VerifyOptions};

    fn workload() -> Dfg {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        for i in 0..6 {
            let m = b.op(&format!("m{i}"), OpKind::Mul, &[x, x]).unwrap();
            b.op(&format!("a{i}"), OpKind::Add, &[m, x]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn result_is_always_a_valid_schedule() {
        let g = workload();
        let spec = TimingSpec::uniform_single_cycle();
        let lib = Library::ncr_like();
        let (s, stats) = anneal_schedule(&g, &spec, 6, &lib, &AnnealParams::default()).unwrap();
        assert!(verify(&g, &s, &spec, VerifyOptions::default()).is_empty());
        assert!(stats.attempted > 0);
        assert!(stats.final_energy > 0.0);
    }

    #[test]
    fn annealing_improves_on_asap_packing() {
        // 6 multiplies ASAP-packed into step 1 need 6 multipliers; with
        // 6 steps of slack annealing should spread them out.
        let g = workload();
        let spec = TimingSpec::uniform_single_cycle();
        let lib = Library::ncr_like();
        let (s, _) = anneal_schedule(&g, &spec, 7, &lib, &AnnealParams::default()).unwrap();
        let muls = s.fu_counts()[&FuClass::Op(OpKind::Mul)];
        assert!(muls < 6, "annealing left {muls} multipliers");
    }

    #[test]
    fn deterministic_given_a_seed() {
        let g = workload();
        let spec = TimingSpec::uniform_single_cycle();
        let lib = Library::ncr_like();
        let p = AnnealParams {
            seed: 42,
            ..Default::default()
        };
        let (s1, st1) = anneal_schedule(&g, &spec, 6, &lib, &p).unwrap();
        let (s2, st2) = anneal_schedule(&g, &spec, 6, &lib, &p).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(st1.final_energy, st2.final_energy);
    }

    #[test]
    fn seeds_change_the_trajectory() {
        let g = workload();
        let spec = TimingSpec::uniform_single_cycle();
        let lib = Library::ncr_like();
        let (_, a) = anneal_schedule(
            &g,
            &spec,
            6,
            &lib,
            &AnnealParams {
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let (_, b) = anneal_schedule(
            &g,
            &spec,
            6,
            &lib,
            &AnnealParams {
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a.accepted, b.accepted);
    }

    #[test]
    fn infeasible_budget_errors() {
        let g = workload();
        let spec = TimingSpec::uniform_single_cycle();
        let lib = Library::ncr_like();
        assert!(anneal_schedule(&g, &spec, 1, &lib, &AnnealParams::default()).is_err());
    }
}
