//! Instrumented wrappers around the baseline schedulers.
//!
//! The wrappers time each baseline as a phase span and record counters
//! under the same naming scheme the MFS/MFSA schedulers use, so a bench
//! harness can put `mfs.moves_committed` next to
//! `baseline.list.ops_scheduled` in one report.

use std::collections::BTreeMap;

use hls_celllib::{Library, TimingSpec};
use hls_dfg::{Dfg, FuClass};
use hls_schedule::{Schedule, ScheduleError};
use hls_telemetry::Instrument;

use crate::anneal::{anneal_schedule, AnnealParams, AnnealStats};
use crate::fds::force_directed_schedule;
use crate::list::list_schedule;

/// [`list_schedule`] as the `baseline.list` phase span, counting runs
/// and scheduled operations.
///
/// # Errors
///
/// As for [`list_schedule`].
pub fn list_schedule_traced(
    dfg: &Dfg,
    spec: &TimingSpec,
    limits: &BTreeMap<FuClass, u32>,
    cs_bound: u32,
    instr: &mut Instrument<'_>,
) -> Result<Schedule, ScheduleError> {
    instr.span("baseline.list", |instr| {
        let sched = list_schedule(dfg, spec, limits, cs_bound)?;
        instr.inc("baseline.list.runs", 1);
        instr.inc("baseline.list.ops_scheduled", dfg.node_count() as u64);
        Ok(sched)
    })
}

/// [`force_directed_schedule`] as the `baseline.fds` phase span,
/// counting runs and scheduled operations.
///
/// # Errors
///
/// As for [`force_directed_schedule`].
pub fn force_directed_schedule_traced(
    dfg: &Dfg,
    spec: &TimingSpec,
    cs: u32,
    instr: &mut Instrument<'_>,
) -> Result<Schedule, ScheduleError> {
    instr.span("baseline.fds", |instr| {
        let sched = force_directed_schedule(dfg, spec, cs)?;
        instr.inc("baseline.fds.runs", 1);
        instr.inc("baseline.fds.ops_scheduled", dfg.node_count() as u64);
        Ok(sched)
    })
}

/// [`anneal_schedule`] as the `baseline.anneal` phase span. The
/// annealer's own statistics flow into `baseline.anneal.accepted` /
/// `.attempted` counters and a `baseline.anneal.final_energy` histogram
/// (energies truncate to integral µm²), making its move budget directly
/// comparable with `mfs.moves_committed`.
///
/// # Errors
///
/// As for [`anneal_schedule`].
pub fn anneal_schedule_traced(
    dfg: &Dfg,
    spec: &TimingSpec,
    cs: u32,
    library: &Library,
    params: &AnnealParams,
    instr: &mut Instrument<'_>,
) -> Result<(Schedule, AnnealStats), ScheduleError> {
    instr.span("baseline.anneal", |instr| {
        let (sched, stats) = anneal_schedule(dfg, spec, cs, library, params)?;
        instr.inc("baseline.anneal.runs", 1);
        instr.inc("baseline.anneal.accepted", stats.accepted);
        instr.inc("baseline.anneal.attempted", stats.attempted);
        instr.observe("baseline.anneal.final_energy", stats.final_energy as u64);
        Ok((sched, stats))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;
    use hls_telemetry::{MemorySink, Metrics, TraceEvent};

    fn adds(n: usize) -> Dfg {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        for i in 0..n {
            b.op(&format!("a{i}"), OpKind::Add, &[x, x]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn wrappers_record_spans_and_match_untraced_results() {
        let g = adds(4);
        let spec = TimingSpec::uniform_single_cycle();
        let limits = [(FuClass::Op(OpKind::Add), 2)].into_iter().collect();

        let mut sink = MemorySink::new();
        let mut metrics = Metrics::new();
        let mut instr = Instrument::new(&mut sink, &mut metrics);

        let traced = list_schedule_traced(&g, &spec, &limits, 8, &mut instr).unwrap();
        let plain = list_schedule(&g, &spec, &limits, 8).unwrap();
        assert_eq!(traced, plain);

        let traced = force_directed_schedule_traced(&g, &spec, 2, &mut instr).unwrap();
        let plain = force_directed_schedule(&g, &spec, 2).unwrap();
        assert_eq!(traced, plain);

        assert_eq!(metrics.counter("baseline.list.runs"), 1);
        assert_eq!(metrics.counter("baseline.list.ops_scheduled"), 4);
        assert_eq!(metrics.counter("baseline.fds.runs"), 1);
        let phases: Vec<_> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::PhaseSpan { phase, .. } => Some(phase.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(phases, vec!["baseline.list", "baseline.fds"]);
    }

    #[test]
    fn anneal_wrapper_reports_the_annealer_stats() {
        let g = adds(3);
        let spec = TimingSpec::uniform_single_cycle();
        let library = Library::ncr_like();
        let params = AnnealParams::default();

        let mut sink = MemorySink::new();
        let mut metrics = Metrics::new();
        let mut instr = Instrument::new(&mut sink, &mut metrics);
        let (_, stats) =
            anneal_schedule_traced(&g, &spec, 3, &library, &params, &mut instr).unwrap();
        assert_eq!(
            metrics.counter("baseline.anneal.attempted"),
            stats.attempted
        );
        assert_eq!(metrics.counter("baseline.anneal.accepted"), stats.accepted);
        assert_eq!(
            metrics
                .histogram("baseline.anneal.final_energy")
                .unwrap()
                .count(),
            1
        );
    }
}
