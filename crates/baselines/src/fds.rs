//! Time-constrained force-directed scheduling (after HAL, paper ref. [6]).

use std::collections::BTreeMap;

use hls_celllib::TimingSpec;
use hls_dfg::{Dfg, FuClass, NodeId};
use hls_schedule::{CStep, FuIndex, Schedule, ScheduleError, Slot, TimeFrames, UnitId};

/// Per-node current time frame (start-step interval).
#[derive(Debug, Clone, Copy)]
struct Frame {
    lo: u32,
    hi: u32,
}

impl Frame {
    fn width(&self) -> u32 {
        self.hi - self.lo + 1
    }
}

/// Paulin & Knight's force-directed scheduling: balances the per-class
/// *distribution graphs* by repeatedly committing the (operation, step)
/// pair with minimal force — self force plus the predecessor/successor
/// forces induced by frame tightening.
///
/// Like HAL, it assumes single-function units; the result is a complete
/// MFS-comparable schedule with greedily bound unit indices.
///
/// # Errors
///
/// [`ScheduleError::InfeasibleTime`] when the critical path exceeds
/// `cs`; [`ScheduleError::MemoryUnsupported`] for graphs with banked
/// arrays (FDS binding invents units on demand and cannot honour a
/// bank's port limit).
pub fn force_directed_schedule(
    dfg: &Dfg,
    spec: &TimingSpec,
    cs: u32,
) -> Result<Schedule, ScheduleError> {
    if !dfg.memory().is_empty() {
        return Err(ScheduleError::MemoryUnsupported);
    }
    let tf = TimeFrames::compute(dfg, spec, cs)?;
    let mut frames: Vec<Frame> = dfg
        .node_ids()
        .map(|n| Frame {
            lo: tf.asap(n).get(),
            hi: tf.alap(n).get(),
        })
        .collect();
    let cycles: Vec<u32> = dfg
        .node_ids()
        .map(|n| dfg.node(n).kind().cycles(spec) as u32)
        .collect();

    // Distribution graph: expected occupancy per (class, step).
    let dg = |frames: &[Frame]| -> BTreeMap<(FuClass, u32), f64> {
        let mut dg: BTreeMap<(FuClass, u32), f64> = BTreeMap::new();
        for n in dfg.node_ids() {
            let f = frames[n.index()];
            let class = dfg.node(n).kind().fu_class();
            let p = 1.0 / f.width() as f64;
            for start in f.lo..=f.hi {
                for k in 0..cycles[n.index()] {
                    *dg.entry((class, start + k)).or_insert(0.0) += p;
                }
            }
        }
        dg
    };

    // Force of fixing node n at step t, given current frames: the
    // classic DG(t') − mean(DG over frame) summed over occupied steps,
    // plus the induced forces on predecessors/successors via frame
    // tightening (evaluated by recomputing DGs on the tightened frames —
    // small graphs make the direct evaluation affordable).
    let force_of = |frames: &[Frame], n: NodeId, t: u32| -> f64 {
        let mut tightened = frames.to_vec();
        tightened[n.index()] = Frame { lo: t, hi: t };
        // Propagate: preds must finish before t; succs start after.
        propagate(dfg, &cycles, &mut tightened);
        let before = dg(frames);
        let after = dg(&tightened);
        // Total force = Σ DG·Δp over all (class, step) — equivalently
        // the DG-weighted change in expected occupancy.
        let mut force = 0.0;
        for (key, &p_after) in &after {
            let p_before = before.get(key).copied().unwrap_or(0.0);
            let dg_val = before.get(key).copied().unwrap_or(0.0);
            force += dg_val * (p_after - p_before);
        }
        force
    };

    let order: Vec<NodeId> = dfg.node_ids().collect();
    // Commit ops one at a time (widest frames carry real choice; fixed
    // ops are committed implicitly by propagation).
    for _ in 0..order.len() {
        // Pick the unfixed (op, step) with minimal force.
        let mut best: Option<(f64, NodeId, u32)> = None;
        for &n in &order {
            let f = frames[n.index()];
            if f.width() == 1 {
                continue;
            }
            for t in f.lo..=f.hi {
                let force = force_of(&frames, n, t);
                let candidate = (force, n, t);
                if best.is_none_or(|(bf, bn, bt)| (force, n.index(), t) < (bf, bn.index(), bt)) {
                    best = Some(candidate);
                }
            }
        }
        match best {
            None => break, // everything fixed
            Some((_, n, t)) => {
                frames[n.index()] = Frame { lo: t, hi: t };
                propagate(dfg, &cycles, &mut frames);
            }
        }
    }

    // Bind units greedily per class.
    let mut sched = Schedule::new(dfg, cs);
    let mut busy: BTreeMap<(FuClass, u32, u32), ()> = BTreeMap::new();
    let mut unit_count: BTreeMap<FuClass, u32> = BTreeMap::new();
    for &n in dfg.topo_order() {
        let class = dfg.node(n).kind().fu_class();
        let start = frames[n.index()].lo;
        let span = cycles[n.index()];
        let max_units = unit_count.entry(class).or_insert(0);
        let mut chosen = None;
        for u in 1..=*max_units {
            if (0..span).all(|k| !busy.contains_key(&(class, u, start + k))) {
                chosen = Some(u);
                break;
            }
        }
        let u = chosen.unwrap_or_else(|| {
            *max_units += 1;
            *max_units
        });
        for k in 0..span {
            busy.insert((class, u, start + k), ());
        }
        sched.assign(
            n,
            Slot {
                step: CStep::new(start),
                unit: UnitId::Fu {
                    class,
                    index: FuIndex::new(u),
                },
            },
        );
    }
    Ok(sched)
}

/// Tightens all frames to dependency-consistency (interval propagation).
fn propagate(dfg: &Dfg, cycles: &[u32], frames: &mut [Frame]) {
    // Forward: lo(n) ≥ lo(p) + cycles(p).
    for &n in dfg.topo_order() {
        for &p in dfg.preds(n) {
            let bound = frames[p.index()].lo + cycles[p.index()];
            if frames[n.index()].lo < bound {
                frames[n.index()].lo = bound;
            }
        }
        if frames[n.index()].hi < frames[n.index()].lo {
            frames[n.index()].hi = frames[n.index()].lo;
        }
    }
    // Backward: hi(n) ≤ hi(s) − cycles(n).
    for &n in dfg.topo_order().iter().rev() {
        for &s in dfg.succs(n) {
            let bound = frames[s.index()].hi.saturating_sub(cycles[n.index()]);
            if frames[n.index()].hi > bound {
                frames[n.index()].hi = bound;
            }
        }
        if frames[n.index()].lo > frames[n.index()].hi {
            frames[n.index()].lo = frames[n.index()].hi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;
    use hls_schedule::{verify, VerifyOptions};

    #[test]
    fn balances_independent_ops_across_steps() {
        // 4 independent multiplies in 2 steps: FDS must put 2 in each.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        for i in 0..4 {
            b.op(&format!("m{i}"), OpKind::Mul, &[x, x]).unwrap();
        }
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let s = force_directed_schedule(&g, &spec, 2).unwrap();
        assert!(verify(&g, &s, &spec, VerifyOptions::default()).is_empty());
        assert_eq!(s.fu_counts()[&FuClass::Op(OpKind::Mul)], 2);
    }

    #[test]
    fn respects_dependencies() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let p = b.op("p", OpKind::Mul, &[x, x]).unwrap();
        let q = b.op("q", OpKind::Add, &[p, x]).unwrap();
        b.op("r", OpKind::Sub, &[q, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let s = force_directed_schedule(&g, &spec, 4).unwrap();
        assert!(verify(&g, &s, &spec, VerifyOptions::default()).is_empty());
    }

    #[test]
    fn infeasible_budget_errors() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let p = b.op("p", OpKind::Add, &[x, x]).unwrap();
        b.op("q", OpKind::Add, &[p, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        assert!(force_directed_schedule(&g, &spec, 1).is_err());
    }

    #[test]
    fn multicycle_distribution() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("m1", OpKind::Mul, &[x, x]).unwrap();
        b.op("m2", OpKind::Mul, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let s = force_directed_schedule(&g, &spec, 4).unwrap();
        assert!(verify(&g, &s, &spec, VerifyOptions::default()).is_empty());
        // 2-cycle each over 4 steps: one multiplier suffices when they
        // do not overlap.
        assert_eq!(s.fu_counts()[&FuClass::Op(OpKind::Mul)], 1);
    }
}
