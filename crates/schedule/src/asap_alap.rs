//! ASAP/ALAP schedules, time frames and mobility (paper §3.2, step 1).

use hls_celllib::TimingSpec;
use hls_dfg::{Dfg, NodeId};

use crate::{CStep, ScheduleError};

/// As-soon-as-possible start step of every node (1-based, multi-cycle
/// aware): an operation starts one step after the latest finish of its
/// predecessors.
///
/// ```
/// use hls_celllib::{OpKind, TimingSpec};
/// use hls_dfg::DfgBuilder;
/// use hls_schedule::{asap, CStep};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("g");
/// let x = b.input("x");
/// let m = b.op("m", OpKind::Mul, &[x, x])?;
/// let _a = b.op("a", OpKind::Add, &[m, x])?;
/// let dfg = b.finish()?;
/// let starts = asap(&dfg, &TimingSpec::two_cycle_multiply());
/// let a = dfg.node_by_name("a").unwrap();
/// assert_eq!(starts[a.index()], CStep::new(3)); // mul occupies t1–t2
/// # Ok(())
/// # }
/// ```
pub fn asap(dfg: &Dfg, spec: &TimingSpec) -> Vec<CStep> {
    let mut start = vec![CStep::FIRST; dfg.node_count()];
    for &id in dfg.topo_order() {
        let mut earliest = 1u32;
        for &p in dfg.preds(id) {
            let p_cycles = dfg.node(p).kind().cycles(spec) as u32;
            let p_finish = start[p.index()].get() + p_cycles - 1;
            earliest = earliest.max(p_finish + 1);
        }
        start[id.index()] = CStep::new(earliest);
    }
    start
}

/// As-late-as-possible start step of every node within `cs` control
/// steps.
///
/// # Errors
///
/// Returns [`ScheduleError::InfeasibleTime`] when the critical path does
/// not fit in `cs` steps.
pub fn alap(dfg: &Dfg, spec: &TimingSpec, cs: u32) -> Result<Vec<CStep>, ScheduleError> {
    let mut start = vec![0i64; dfg.node_count()];
    for &id in dfg.topo_order().iter().rev() {
        let cycles = dfg.node(id).kind().cycles(spec) as i64;
        let mut latest = cs as i64 - cycles + 1;
        for &s in dfg.succs(id) {
            latest = latest.min(start[s.index()] - cycles);
        }
        start[id.index()] = latest;
    }
    let min = start.iter().copied().min().unwrap_or(1);
    if min < 1 {
        let needed = cs as i64 + (1 - min);
        return Err(ScheduleError::InfeasibleTime {
            needed: needed as u32,
            given: cs,
        });
    }
    Ok(start.into_iter().map(|s| CStep::new(s as u32)).collect())
}

/// ASAP/ALAP time frames of every operation within a time constraint —
/// the `[ASAP_cstep, ALAP_cstep]` interval the paper's primary frame is
/// built from — plus mobilities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeFrames {
    cs: u32,
    asap: Vec<CStep>,
    alap: Vec<CStep>,
}

impl TimeFrames {
    /// Computes frames for `dfg` under `spec` within `cs` steps.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InfeasibleTime`] when the critical path
    /// exceeds `cs`.
    pub fn compute(dfg: &Dfg, spec: &TimingSpec, cs: u32) -> Result<TimeFrames, ScheduleError> {
        let asap = asap(dfg, spec);
        let alap = alap(dfg, spec, cs)?;
        Ok(TimeFrames { cs, asap, alap })
    }

    /// Builds frames from precomputed ASAP/ALAP vectors (used by the
    /// chaining analysis, which derives steps from delays).
    pub(crate) fn from_parts(cs: u32, asap: Vec<CStep>, alap: Vec<CStep>) -> TimeFrames {
        TimeFrames { cs, asap, alap }
    }

    /// The time constraint the frames were computed for.
    pub fn control_steps(&self) -> u32 {
        self.cs
    }

    /// Earliest start step of `node`.
    pub fn asap(&self, node: NodeId) -> CStep {
        self.asap[node.index()]
    }

    /// Latest start step of `node`.
    pub fn alap(&self, node: NodeId) -> CStep {
        self.alap[node.index()]
    }

    /// The paper's mobility: `ALAP_cstep − ASAP_cstep`.
    pub fn mobility(&self, node: NodeId) -> u32 {
        self.alap[node.index()].get() - self.asap[node.index()].get()
    }

    /// Tightens the earliest start of `node` (used when predecessors get
    /// fixed during move-frame scheduling).
    pub fn raise_asap(&mut self, node: NodeId, to: CStep) {
        if to > self.asap[node.index()] {
            self.asap[node.index()] = to;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;

    fn diamond() -> Dfg {
        let mut b = DfgBuilder::new("d");
        let x = b.input("x");
        let y = b.input("y");
        let p = b.op("p", OpKind::Mul, &[x, y]).unwrap();
        let q = b.op("q", OpKind::Add, &[x, y]).unwrap();
        b.op("r", OpKind::Sub, &[p, q]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn asap_respects_dependencies() {
        let g = diamond();
        let spec = TimingSpec::uniform_single_cycle();
        let starts = asap(&g, &spec);
        let r = g.node_by_name("r").unwrap();
        assert_eq!(starts[r.index()], CStep::new(2));
    }

    #[test]
    fn alap_pushes_late() {
        let g = diamond();
        let spec = TimingSpec::uniform_single_cycle();
        let starts = alap(&g, &spec, 4).unwrap();
        let r = g.node_by_name("r").unwrap();
        let p = g.node_by_name("p").unwrap();
        assert_eq!(starts[r.index()], CStep::new(4));
        assert_eq!(starts[p.index()], CStep::new(3));
    }

    #[test]
    fn infeasible_time_is_reported_with_the_needed_length() {
        let g = diamond();
        let spec = TimingSpec::uniform_single_cycle();
        assert_eq!(
            alap(&g, &spec, 1),
            Err(ScheduleError::InfeasibleTime {
                needed: 2,
                given: 1
            })
        );
    }

    #[test]
    fn mobility_is_zero_on_the_critical_path() {
        let g = diamond();
        let spec = TimingSpec::uniform_single_cycle();
        let frames = TimeFrames::compute(&g, &spec, 2).unwrap();
        for n in g.node_ids() {
            assert_eq!(frames.mobility(n), 0);
        }
    }

    #[test]
    fn mobility_grows_with_slack() {
        let g = diamond();
        let spec = TimingSpec::uniform_single_cycle();
        let frames = TimeFrames::compute(&g, &spec, 5).unwrap();
        for n in g.node_ids() {
            assert_eq!(frames.mobility(n), 3);
        }
    }

    #[test]
    fn multicycle_alap_reserves_room() {
        let mut b = DfgBuilder::new("mc");
        let x = b.input("x");
        b.op("m", OpKind::Mul, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let starts = alap(&g, &spec, 4).unwrap();
        let m = g.node_by_name("m").unwrap();
        // A 2-cycle op can start at t3 at the latest in a 4-step budget.
        assert_eq!(starts[m.index()], CStep::new(3));
    }

    #[test]
    fn raise_asap_never_lowers() {
        let g = diamond();
        let spec = TimingSpec::uniform_single_cycle();
        let mut frames = TimeFrames::compute(&g, &spec, 5).unwrap();
        let p = g.node_by_name("p").unwrap();
        frames.raise_asap(p, CStep::new(3));
        assert_eq!(frames.asap(p), CStep::new(3));
        frames.raise_asap(p, CStep::new(2));
        assert_eq!(frames.asap(p), CStep::new(3));
    }
}
