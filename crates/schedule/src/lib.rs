//! Scheduling substrate for the `moveframe-hls` workspace.
//!
//! This crate hosts everything MFS, MFSA and the baseline schedulers
//! share:
//!
//! * the 2-D/3-D *placement table* of the paper ([`Grid`]) — control
//!   steps × functional-unit index, one table per [`hls_dfg::FuClass`],
//!   with mutual-exclusion-aware occupancy and optional modulo-latency
//!   wrap-around for functional pipelining;
//! * the [`Schedule`] produced by every algorithm (start step plus bound
//!   unit per operation);
//! * ASAP/ALAP schedules, time frames and mobility
//!   ([`asap`], [`alap`], [`TimeFrames`]), including the chaining-aware
//!   variants driven by operation delays and a clock period;
//! * the paper's priority order ([`priority_order`]);
//! * an independent schedule verifier ([`verify`]) used by the test
//!   suite and the harnesses; and
//! * FU-usage statistics and ASCII rendering of placement tables.
//!
//! ```
//! use hls_celllib::{OpKind, TimingSpec};
//! use hls_dfg::DfgBuilder;
//! use hls_schedule::TimeFrames;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DfgBuilder::new("g");
//! let x = b.input("x");
//! let t = b.op("t", OpKind::Mul, &[x, x])?;
//! let _u = b.op("u", OpKind::Add, &[t, x])?;
//! let dfg = b.finish()?;
//! let spec = TimingSpec::uniform_single_cycle();
//! let frames = TimeFrames::compute(&dfg, &spec, 4)?;
//! let t = dfg.node_by_name("t").unwrap();
//! assert_eq!(frames.mobility(t), 2); // ASAP 1, ALAP 3
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asap_alap;
mod error;
mod grid;
mod lifetime;
mod priority;
mod render;
mod schedule;
mod stats;
mod svg;
mod timing;
mod verify;

pub use asap_alap::{alap, asap, TimeFrames};
pub use error::ScheduleError;
pub use grid::Grid;
pub use lifetime::{peak_live, signal_lifetimes, Lifetime};
pub use priority::{priority_order, priority_order_with, PriorityRule};
pub use render::{render_grid, render_schedule};
pub use schedule::{CStep, FuIndex, Schedule, Slot, UnitId};
pub use stats::{fu_mix, step_concurrency, ScheduleStats};
pub use svg::render_svg;
pub use timing::{chained_frames, ChainedFrames};
pub use verify::{verify, verify_traced, VerifyOptions, Violation};
