//! Chaining-aware time frames (paper §5.4).
//!
//! With chaining, "ASAP and ALAP schedules (and consequently the
//! mobilities and priorities) are determined based on the given execution
//! time of operations and the length of control step clock (T)". The
//! model is the classic one: an operation may start mid-step after its
//! predecessor if its combinational delay still fits before the step
//! boundary; no operation crosses a boundary mid-flight — if it does not
//! fit, it waits for the next step. Operations slower than the clock
//! period occupy `⌈delay / T⌉` full steps, starting at a boundary.

use hls_celllib::{ClockPeriod, TimingSpec};
use hls_dfg::{Dfg, NodeId};

use crate::asap_alap::TimeFrames;
use crate::{CStep, ScheduleError};

/// Chaining-aware frames: the usual [`TimeFrames`] plus each node's
/// *effective* cycle count under the clock period (1 for chainable ops,
/// `⌈delay/T⌉` for slow ones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainedFrames {
    frames: TimeFrames,
    eff_cycles: Vec<u8>,
}

impl ChainedFrames {
    /// The embedded ASAP/ALAP frames.
    pub fn frames(&self) -> &TimeFrames {
        &self.frames
    }

    /// Consumes self, returning the frames.
    pub fn into_frames(self) -> TimeFrames {
        self.frames
    }

    /// Effective cycles of `node` under the clock period.
    pub fn effective_cycles(&self, node: NodeId) -> u8 {
        self.eff_cycles[node.index()]
    }
}

/// Computes chaining-aware ASAP/ALAP frames for `dfg` under `spec` and
/// clock period `clock`, within `cs` control steps.
///
/// ```
/// use hls_celllib::{ClockPeriod, OpKind, TimingSpec};
/// use hls_dfg::DfgBuilder;
/// use hls_schedule::{chained_frames, CStep};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("g");
/// let x = b.input("x");
/// let y = b.input("y");
/// let a = b.op("a", OpKind::Add, &[x, y])?;   // 48 ns
/// let _c = b.op("c", OpKind::Add, &[a, y])?;  // chains: 96 ≤ 100
/// let dfg = b.finish()?;
/// let spec = TimingSpec::with_delays();
/// let fr = chained_frames(&dfg, &spec, ClockPeriod::new(100), 2)?;
/// let c = dfg.node_by_name("c").unwrap();
/// // Both adds fit in step 1 back to back.
/// assert_eq!(fr.frames().asap(c), CStep::new(1));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// [`ScheduleError::InfeasibleTime`] when even the fully chained critical
/// path does not fit in `cs` steps.
pub fn chained_frames(
    dfg: &Dfg,
    spec: &TimingSpec,
    clock: ClockPeriod,
    cs: u32,
) -> Result<ChainedFrames, ScheduleError> {
    let t = clock.as_u32() as u64;
    let n = dfg.node_count();
    let mut eff_cycles = vec![1u8; n];
    for (id, node) in dfg.nodes() {
        let d = node.kind().delay(spec).as_u32() as u64;
        // Multi-cycle by declaration wins; otherwise derive from delay.
        let declared = node.kind().cycles(spec);
        let derived = if d == 0 { 1 } else { d.div_ceil(t) as u8 };
        eff_cycles[id.index()] = declared.max(derived);
    }

    // Forward pass: earliest finish *time* of each node.
    let mut finish = vec![0u64; n];
    let mut asap = vec![CStep::FIRST; n];
    for &id in dfg.topo_order() {
        let node = dfg.node(id);
        let d = node.kind().delay(spec).as_u32() as u64;
        let cycles = eff_cycles[id.index()] as u64;
        let ready: u64 = dfg
            .preds(id)
            .iter()
            .map(|&p| finish[p.index()])
            .max()
            .unwrap_or(0);
        let (start, end) = if cycles > 1 || d == 0 {
            // Occupies whole steps; start at the next boundary.
            let start = ready.div_ceil(t) * t;
            (start, start + cycles * t)
        } else {
            // Chainable single-cycle op: fit before the boundary or wait.
            let mut start = ready;
            let boundary = (start / t + 1) * t;
            if start + d > boundary {
                start = boundary;
            }
            (start, start + d)
        };
        finish[id.index()] = end;
        asap[id.index()] = CStep::new((start / t) as u32 + 1);
    }

    // Feasibility: latest finish time must fit in cs steps.
    let horizon = cs as u64 * t;
    let worst = finish.iter().copied().max().unwrap_or(0);
    if worst > horizon {
        return Err(ScheduleError::InfeasibleTime {
            needed: worst.div_ceil(t) as u32,
            given: cs,
        });
    }

    // Backward pass: latest start *time* of each node.
    let mut late_start = vec![0u64; n];
    let mut alap = vec![CStep::FIRST; n];
    for &id in dfg.topo_order().iter().rev() {
        let node = dfg.node(id);
        let d = node.kind().delay(spec).as_u32() as u64;
        let cycles = eff_cycles[id.index()] as u64;
        let due: u64 = dfg
            .succs(id)
            .iter()
            .map(|&s| late_start[s.index()])
            .min()
            .unwrap_or(horizon);
        let start = if cycles > 1 || d == 0 {
            // Must start at a boundary and finish (at a boundary) by due.
            let finish_boundary = due / t * t;
            finish_boundary.saturating_sub(cycles * t)
        } else {
            let mut start = due.saturating_sub(d);
            // The op must not cross a step boundary; if ending at `due`
            // would make it straddle one, finish at the last boundary
            // at or before `due` instead (it then fits entirely in the
            // preceding step because d ≤ T).
            let base = start / t * t;
            if start + d > base + t {
                start = (due / t * t).saturating_sub(d);
            }
            start
        };
        late_start[id.index()] = start;
        alap[id.index()] = CStep::new((start / t) as u32 + 1);
    }

    // Guarantee ALAP ≥ ASAP even under the conservative backward pass.
    for i in 0..n {
        if alap[i] < asap[i] {
            alap[i] = asap[i];
        }
    }

    Ok(ChainedFrames {
        frames: TimeFrames::from_parts(cs, asap, alap),
        eff_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;

    fn chain_of_adds(len: usize) -> Dfg {
        let mut b = DfgBuilder::new("adds");
        let x = b.input("x");
        let y = b.input("y");
        let mut prev = b.op("a0", OpKind::Add, &[x, y]).unwrap();
        for i in 1..len {
            prev = b.op(&format!("a{i}"), OpKind::Add, &[prev, y]).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn two_adds_chain_into_one_step() {
        let g = chain_of_adds(2);
        let spec = TimingSpec::with_delays(); // add = 48
        let fr = chained_frames(&g, &spec, ClockPeriod::new(100), 1).unwrap();
        for n in g.node_ids() {
            assert_eq!(fr.frames().asap(n), CStep::new(1));
        }
    }

    #[test]
    fn third_add_spills_to_the_next_step() {
        let g = chain_of_adds(3);
        let spec = TimingSpec::with_delays();
        let fr = chained_frames(&g, &spec, ClockPeriod::new(100), 2).unwrap();
        let a2 = g.node_by_name("a2").unwrap();
        assert_eq!(fr.frames().asap(a2), CStep::new(2));
    }

    #[test]
    fn infeasible_when_chain_exceeds_budget() {
        let g = chain_of_adds(5); // 240 ns of adds
        let spec = TimingSpec::with_delays();
        let err = chained_frames(&g, &spec, ClockPeriod::new(100), 2).unwrap_err();
        assert!(matches!(err, ScheduleError::InfeasibleTime { .. }));
    }

    #[test]
    fn slow_op_becomes_multicycle() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let m = b.op("m", OpKind::Mul, &[x, x]).unwrap(); // 163 ns
        b.op("a", OpKind::Add, &[m, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::with_delays();
        let fr = chained_frames(&g, &spec, ClockPeriod::new(100), 3).unwrap();
        let m = g.node_by_name("m").unwrap();
        assert_eq!(fr.effective_cycles(m), 2);
        let a = g.node_by_name("a").unwrap();
        assert_eq!(fr.frames().asap(a), CStep::new(3));
    }

    #[test]
    fn alap_is_never_below_asap() {
        let g = chain_of_adds(4);
        let spec = TimingSpec::with_delays();
        let fr = chained_frames(&g, &spec, ClockPeriod::new(100), 3).unwrap();
        for n in g.node_ids() {
            assert!(fr.frames().alap(n) >= fr.frames().asap(n));
        }
    }

    #[test]
    fn zero_delay_ops_occupy_whole_steps() {
        let g = chain_of_adds(3);
        let spec = TimingSpec::uniform_single_cycle(); // zero delays
        let fr = chained_frames(&g, &spec, ClockPeriod::new(100), 3).unwrap();
        let a2 = g.node_by_name("a2").unwrap();
        assert_eq!(fr.frames().asap(a2), CStep::new(3));
    }
}
