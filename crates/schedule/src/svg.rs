//! SVG Gantt rendering of schedules — a visual artefact for reports and
//! debugging, complementing the ASCII renderers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use hls_celllib::TimingSpec;
use hls_dfg::Dfg;

use crate::{Schedule, UnitId};

const STEP_W: u32 = 90;
const ROW_H: u32 = 26;
const LEFT_W: u32 = 110;
const TOP_H: u32 = 30;

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a complete schedule as an SVG Gantt chart: one row per
/// hardware unit, one column per control step, one box per operation
/// (spanning its cycles). Colours cycle per unit row.
///
/// ```
/// use hls_celllib::{OpKind, TimingSpec};
/// use hls_dfg::{DfgBuilder, FuClass};
/// use hls_schedule::{render_svg, CStep, FuIndex, Schedule, Slot, UnitId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("g");
/// let x = b.input("x");
/// let _t = b.op("t", OpKind::Inc, &[x])?;
/// let dfg = b.finish()?;
/// let mut s = Schedule::new(&dfg, 2);
/// s.assign(dfg.node_by_name("t").unwrap(), Slot {
///     step: CStep::new(1),
///     unit: UnitId::Fu { class: FuClass::Op(OpKind::Inc), index: FuIndex::new(1) },
/// });
/// let svg = render_svg(&dfg, &s, &TimingSpec::uniform_single_cycle());
/// assert!(svg.starts_with("<svg"));
/// # Ok(())
/// # }
/// ```
pub fn render_svg(dfg: &Dfg, schedule: &Schedule, spec: &TimingSpec) -> String {
    // Collect rows: one per distinct unit, sorted.
    let mut rows: Vec<UnitId> = schedule.iter().map(|(_, slot)| slot.unit).collect();
    rows.sort();
    rows.dedup();
    let row_of: BTreeMap<UnitId, usize> = rows.iter().enumerate().map(|(i, &u)| (u, i)).collect();

    let cs = schedule.control_steps();
    let width = LEFT_W + cs * STEP_W + 10;
    let height = TOP_H + rows.len() as u32 * ROW_H + 10;
    let palette = [
        "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2", "#edc948", "#b07aa1", "#9c755f",
    ];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" \
         font-family=\"monospace\" font-size=\"12\">"
    );
    let _ = writeln!(
        out,
        "  <text x=\"4\" y=\"16\" font-weight=\"bold\">{}</text>",
        escape(dfg.name())
    );
    // Step grid and headers.
    for t in 1..=cs {
        let x = LEFT_W + (t - 1) * STEP_W;
        let _ = writeln!(
            out,
            "  <line x1=\"{x}\" y1=\"{TOP_H}\" x2=\"{x}\" y2=\"{height}\" stroke=\"#ddd\"/>"
        );
        let _ = writeln!(
            out,
            "  <text x=\"{}\" y=\"{}\" fill=\"#555\">t{t}</text>",
            x + STEP_W / 2 - 8,
            TOP_H - 6
        );
    }
    // Unit rows.
    for (i, unit) in rows.iter().enumerate() {
        let y = TOP_H + i as u32 * ROW_H;
        let _ = writeln!(
            out,
            "  <text x=\"4\" y=\"{}\" fill=\"#333\">{}</text>",
            y + ROW_H - 8,
            escape(&unit.to_string())
        );
        let _ = writeln!(
            out,
            "  <line x1=\"0\" y1=\"{y}\" x2=\"{width}\" y2=\"{y}\" stroke=\"#eee\"/>"
        );
    }
    // Operation boxes.
    for (node, slot) in schedule.iter() {
        let row = row_of[&slot.unit];
        let cycles = dfg.node(node).kind().cycles(spec) as u32;
        let x = LEFT_W + (slot.step.get() - 1) * STEP_W + 2;
        let y = TOP_H + row as u32 * ROW_H + 2;
        let w = cycles * STEP_W - 4;
        let h = ROW_H - 4;
        let colour = palette[row % palette.len()];
        let _ = writeln!(
            out,
            "  <rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{h}\" rx=\"4\" \
             fill=\"{colour}\" fill-opacity=\"0.85\"/>"
        );
        let _ = writeln!(
            out,
            "  <text x=\"{}\" y=\"{}\" fill=\"#fff\">{}</text>",
            x + 6,
            y + h - 6,
            escape(dfg.node(node).name())
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CStep, FuIndex, Slot};
    use hls_celllib::OpKind;
    use hls_dfg::{DfgBuilder, FuClass};

    #[test]
    fn svg_contains_all_operations_and_steps() {
        let mut b = DfgBuilder::new("gantt");
        let x = b.input("x");
        let m = b.op("mul_op", OpKind::Mul, &[x, x]).unwrap();
        b.op("add_op", OpKind::Add, &[m, x]).unwrap();
        let dfg = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let mut s = Schedule::new(&dfg, 3);
        s.assign(
            dfg.node_by_name("mul_op").unwrap(),
            Slot {
                step: CStep::new(1),
                unit: UnitId::Fu {
                    class: FuClass::Op(OpKind::Mul),
                    index: FuIndex::new(1),
                },
            },
        );
        s.assign(
            dfg.node_by_name("add_op").unwrap(),
            Slot {
                step: CStep::new(3),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        let svg = render_svg(&dfg, &s, &spec);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("mul_op"));
        assert!(svg.contains("add_op"));
        assert!(svg.contains(">t3<"));
        // The 2-cycle multiply box spans two step widths minus padding.
        assert!(svg.contains(&format!("width=\"{}\"", 2 * STEP_W - 4)));
    }

    #[test]
    fn names_are_escaped() {
        let mut b = DfgBuilder::new("a<b&c");
        let x = b.input("x");
        b.op("n", OpKind::Inc, &[x]).unwrap();
        let dfg = b.finish().unwrap();
        let s = Schedule::new(&dfg, 1);
        let svg = render_svg(&dfg, &s, &TimingSpec::uniform_single_cycle());
        assert!(svg.contains("a&lt;b&amp;c"));
    }
}
