//! Independent schedule verification.
//!
//! Every scheduler in the workspace (MFS, MFSA and the baselines) is
//! checked against this verifier in the test suite; it re-derives all
//! constraints from the DFG and the timing spec rather than trusting the
//! scheduler's internal bookkeeping.

use std::collections::BTreeMap;

use hls_celllib::{ClockPeriod, TimingSpec};
use hls_dfg::{Dfg, NodeId, NodeKind};

use crate::{CStep, Schedule, UnitId};

/// What to verify beyond the core constraints.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyOptions {
    /// Functional-pipelining initiation interval: resource conflicts are
    /// evaluated modulo this latency.
    pub latency: Option<u32>,
    /// Chaining clock period: dependent single-cycle operations may share
    /// a step when their accumulated delay fits within one period.
    /// Without it, dependencies must be strictly ordered by step.
    pub clock: Option<ClockPeriod>,
}

/// A constraint violation found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// An operation has no slot.
    Unscheduled(NodeId),
    /// A successor starts before (or, without chaining, not after) its
    /// predecessor finishes.
    DependencyOrder {
        /// The producing operation.
        pred: NodeId,
        /// The consuming operation.
        succ: NodeId,
    },
    /// The accumulated combinational delay within a step exceeds the
    /// clock period.
    ChainingOverflow {
        /// The step whose delay path overflows.
        step: CStep,
        /// Accumulated delay on the worst path, in time units.
        delay: u32,
        /// The clock period, in time units.
        clock: u32,
    },
    /// Two non-exclusive operations overlap on the same unit.
    ResourceConflict {
        /// First operation.
        a: NodeId,
        /// Second operation.
        b: NodeId,
    },
    /// An operation finishes after the time constraint.
    TimeExceeded {
        /// The late operation.
        node: NodeId,
        /// Its finish step.
        finish: CStep,
    },
    /// A pipeline stage does not start exactly one step after its
    /// predecessor stage.
    StageNotConsecutive {
        /// The earlier stage.
        prev: NodeId,
        /// The later stage.
        next: NodeId,
    },
    /// An operation is bound to a single-function unit of the wrong
    /// class.
    UnitClassMismatch {
        /// The mis-bound operation.
        node: NodeId,
    },
}

/// Checks `schedule` against `dfg` and `spec`; returns every violation
/// found (empty = valid).
///
/// ```
/// use hls_celllib::{OpKind, TimingSpec};
/// use hls_dfg::{DfgBuilder, FuClass};
/// use hls_schedule::{verify, CStep, FuIndex, Schedule, Slot, UnitId, VerifyOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("g");
/// let x = b.input("x");
/// let t = b.op("t", OpKind::Inc, &[x])?;
/// let _u = b.op("u", OpKind::Dec, &[t])?;
/// let dfg = b.finish()?;
/// let t = dfg.node_by_name("t").unwrap();
/// let u = dfg.node_by_name("u").unwrap();
/// let spec = TimingSpec::uniform_single_cycle();
///
/// let mut s = Schedule::new(&dfg, 2);
/// let unit = |k, i| UnitId::Fu { class: FuClass::Op(k), index: FuIndex::new(i) };
/// s.assign(t, Slot { step: CStep::new(1), unit: unit(OpKind::Inc, 1) });
/// s.assign(u, Slot { step: CStep::new(2), unit: unit(OpKind::Dec, 1) });
/// assert!(verify(&dfg, &s, &spec, VerifyOptions::default()).is_empty());
/// # Ok(())
/// # }
/// ```
pub fn verify(
    dfg: &Dfg,
    schedule: &Schedule,
    spec: &TimingSpec,
    options: VerifyOptions,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let cs = schedule.control_steps();

    // Completeness & horizon.
    for id in dfg.node_ids() {
        match schedule.slot(id) {
            None => violations.push(Violation::Unscheduled(id)),
            Some(slot) => {
                let finish = slot.step.finish(dfg.node(id).kind().cycles(spec));
                if finish.get() > cs {
                    violations.push(Violation::TimeExceeded { node: id, finish });
                }
                if let UnitId::Fu { class, .. } = slot.unit {
                    if class != dfg.node(id).kind().fu_class() {
                        violations.push(Violation::UnitClassMismatch { node: id });
                    }
                }
            }
        }
    }

    // Dependency ordering (and stage consecutiveness).
    for id in dfg.node_ids() {
        let Some(slot) = schedule.slot(id) else {
            continue;
        };
        let node = dfg.node(id);
        let chainable_succ = options.clock.is_some()
            && node.kind().cycles(spec) == 1
            && node.kind().delay(spec).as_u32() > 0;
        for &p in dfg.preds(id) {
            let Some(p_slot) = schedule.slot(p) else {
                continue;
            };
            let p_node = dfg.node(p);
            let p_finish = p_slot.step.finish(p_node.kind().cycles(spec));
            let chainable_pred = options.clock.is_some()
                && p_node.kind().cycles(spec) == 1
                && p_node.kind().delay(spec).as_u32() > 0;
            let ok = if chainable_succ && chainable_pred {
                slot.step >= p_finish
            } else {
                slot.step > p_finish
            };
            if !ok {
                violations.push(Violation::DependencyOrder { pred: p, succ: id });
            }
            if let NodeKind::Stage { index, .. } = node.kind() {
                if index > 0
                    && matches!(p_node.kind(), NodeKind::Stage { .. })
                    && slot.step.get() != p_slot.step.get() + 1
                {
                    violations.push(Violation::StageNotConsecutive { prev: p, next: id });
                }
            }
        }
    }

    // Chaining delay budget per step: longest within-step delay path.
    if let Some(clock) = options.clock {
        // Only effectively single-cycle ops participate; edges within
        // the same step. An op whose delay exceeds the period is
        // multicycled by the clock (effective `⌈delay/T⌉` cycles, the
        // same rule the schedulers' bounds cache applies) — it executes
        // sequentially and joins no combinational chain.
        let mut path = vec![0u32; dfg.node_count()];
        let mut worst: BTreeMap<u32, u32> = BTreeMap::new();
        for &id in dfg.topo_order() {
            let Some(slot) = schedule.slot(id) else {
                continue;
            };
            let node = dfg.node(id);
            if node.kind().cycles(spec) != 1 {
                continue;
            }
            let d = node.kind().delay(spec).as_u32();
            if d > clock.as_u32() {
                continue;
            }
            let mut start = 0u32;
            for &p in dfg.preds(id) {
                if schedule.slot(p).map(|s| s.step) == Some(slot.step)
                    && dfg.node(p).kind().cycles(spec) == 1
                {
                    start = start.max(path[p.index()]);
                }
            }
            path[id.index()] = start + d;
            let w = worst.entry(slot.step.get()).or_insert(0);
            *w = (*w).max(path[id.index()]);
        }
        for (step, delay) in worst {
            if delay > clock.as_u32() {
                violations.push(Violation::ChainingOverflow {
                    step: CStep::new(step),
                    delay,
                    clock: clock.as_u32(),
                });
            }
        }
    }

    // Resource conflicts: same unit, overlapping (wrapped) spans, not
    // mutually exclusive.
    let mut by_unit: BTreeMap<UnitId, Vec<NodeId>> = BTreeMap::new();
    for (n, slot) in schedule.iter() {
        by_unit.entry(slot.unit).or_default().push(n);
    }
    let wrap = |s: u32| match options.latency {
        Some(l) => (s - 1) % l,
        None => s - 1,
    };
    for nodes in by_unit.values() {
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                if dfg.mutually_exclusive(a, b) {
                    continue;
                }
                let (sa, sb) = (
                    schedule.slot(a).expect("in map"),
                    schedule.slot(b).expect("in map"),
                );
                let ca = dfg.node(a).kind().cycles(spec) as u32;
                let cb = dfg.node(b).kind().cycles(spec) as u32;
                let steps_a: Vec<u32> = (0..ca).map(|k| wrap(sa.step.get() + k)).collect();
                let overlap = (0..cb)
                    .map(|k| wrap(sb.step.get() + k))
                    .any(|s| steps_a.contains(&s));
                if overlap {
                    violations.push(Violation::ResourceConflict { a, b });
                }
            }
        }
    }

    violations
}

/// [`verify`] with instrumentation: the check runs as the
/// `schedule.verify` phase span, and the counters
/// `schedule.verify.runs` / `schedule.verify.violations` accumulate in
/// the registry — a cheap health signal for batch harnesses.
pub fn verify_traced(
    dfg: &Dfg,
    schedule: &Schedule,
    spec: &TimingSpec,
    options: VerifyOptions,
    instr: &mut hls_telemetry::Instrument<'_>,
) -> Vec<Violation> {
    instr.span("schedule.verify", |instr| {
        let violations = verify(dfg, schedule, spec, options);
        instr.inc("schedule.verify.runs", 1);
        instr.inc("schedule.verify.violations", violations.len() as u64);
        violations
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FuIndex, Slot};
    use hls_celllib::OpKind;
    use hls_dfg::{DfgBuilder, FuClass};

    fn unit(k: OpKind, i: u32) -> UnitId {
        UnitId::Fu {
            class: FuClass::Op(k),
            index: FuIndex::new(i),
        }
    }

    fn pair() -> (Dfg, NodeId, NodeId) {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let t = b.op("t", OpKind::Add, &[x, x]).unwrap();
        b.op("u", OpKind::Add, &[t, x]).unwrap();
        let g = b.finish().unwrap();
        let t = g.node_by_name("t").unwrap();
        let u = g.node_by_name("u").unwrap();
        (g, t, u)
    }

    #[test]
    fn missing_slot_is_reported() {
        let (g, t, u) = pair();
        let spec = TimingSpec::uniform_single_cycle();
        let mut s = Schedule::new(&g, 2);
        s.assign(
            t,
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Add, 1),
            },
        );
        let v = verify(&g, &s, &spec, VerifyOptions::default());
        assert_eq!(v, vec![Violation::Unscheduled(u)]);
    }

    #[test]
    fn dependency_violation_is_reported() {
        let (g, t, u) = pair();
        let spec = TimingSpec::uniform_single_cycle();
        let mut s = Schedule::new(&g, 2);
        s.assign(
            t,
            Slot {
                step: CStep::new(2),
                unit: unit(OpKind::Add, 1),
            },
        );
        s.assign(
            u,
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Add, 2),
            },
        );
        let v = verify(&g, &s, &spec, VerifyOptions::default());
        assert!(v.contains(&Violation::DependencyOrder { pred: t, succ: u }));
    }

    #[test]
    fn same_step_dependency_needs_chaining() {
        let (g, t, u) = pair();
        let mut s = Schedule::new(&g, 1);
        s.assign(
            t,
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Add, 1),
            },
        );
        s.assign(
            u,
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Add, 2),
            },
        );
        // Without chaining: violation.
        let spec0 = TimingSpec::uniform_single_cycle();
        let v = verify(&g, &s, &spec0, VerifyOptions::default());
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::DependencyOrder { .. })));
        // With chaining and a generous clock: fine.
        let spec = TimingSpec::with_delays();
        let opts = VerifyOptions {
            clock: Some(ClockPeriod::new(200)),
            ..Default::default()
        };
        assert!(verify(&g, &s, &spec, opts).is_empty());
        // With a tight clock: chaining overflow.
        let opts = VerifyOptions {
            clock: Some(ClockPeriod::new(90)),
            ..Default::default()
        };
        let v = verify(&g, &s, &spec, opts);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::ChainingOverflow { .. })));
    }

    #[test]
    fn clock_multicycled_ops_join_no_chain() {
        // A 1-cycle op whose delay exceeds the period is multicycled by
        // the clock (effective `⌈delay/T⌉` cycles) — scheduling it alone
        // in a step is not a chaining overflow, matching the effective-
        // cycles rule the schedulers' bounds cache applies.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("m", OpKind::Mul, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let m = g.node_by_name("m").unwrap();
        let spec = TimingSpec::with_delays();
        let delay = g.node(m).kind().delay(&spec).as_u32();
        assert!(delay > 100, "with_delays muls must exceed the clock");
        let mut s = Schedule::new(&g, 2);
        s.assign(
            m,
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Mul, 1),
            },
        );
        let opts = VerifyOptions {
            clock: Some(ClockPeriod::new(100)),
            ..Default::default()
        };
        assert!(verify(&g, &s, &spec, opts).is_empty());
    }

    #[test]
    fn resource_conflicts_are_reported() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("a", OpKind::Add, &[x, x]).unwrap();
        b.op("b", OpKind::Add, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let a = g.node_by_name("a").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let mut s = Schedule::new(&g, 2);
        s.assign(
            a,
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Add, 1),
            },
        );
        s.assign(
            bb,
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Add, 1),
            },
        );
        let v = verify(&g, &s, &spec, VerifyOptions::default());
        assert_eq!(v, vec![Violation::ResourceConflict { a, b: bb }]);
    }

    #[test]
    fn exclusive_ops_may_share_a_unit_and_step() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let branch = b.begin_branch();
        b.enter_arm(branch, 0);
        b.op("a", OpKind::Add, &[x, x]).unwrap();
        b.exit_arm();
        b.enter_arm(branch, 1);
        b.op("b", OpKind::Add, &[x, x]).unwrap();
        b.exit_arm();
        let g = b.finish().unwrap();
        let a = g.node_by_name("a").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let mut s = Schedule::new(&g, 1);
        s.assign(
            a,
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Add, 1),
            },
        );
        s.assign(
            bb,
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Add, 1),
            },
        );
        assert!(verify(&g, &s, &spec, VerifyOptions::default()).is_empty());
    }

    #[test]
    fn latency_wrap_finds_modulo_conflicts() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("a", OpKind::Add, &[x, x]).unwrap();
        b.op("b", OpKind::Add, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let a = g.node_by_name("a").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let mut s = Schedule::new(&g, 4);
        s.assign(
            a,
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Add, 1),
            },
        );
        s.assign(
            bb,
            Slot {
                step: CStep::new(3),
                unit: unit(OpKind::Add, 1),
            },
        );
        assert!(verify(&g, &s, &spec, VerifyOptions::default()).is_empty());
        let opts = VerifyOptions {
            latency: Some(2),
            ..Default::default()
        };
        let v = verify(&g, &s, &spec, opts);
        assert_eq!(v, vec![Violation::ResourceConflict { a, b: bb }]);
    }

    #[test]
    fn time_overrun_is_reported() {
        let (g, t, u) = pair();
        let spec = TimingSpec::uniform_single_cycle();
        let mut s = Schedule::new(&g, 1);
        s.assign(
            t,
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Add, 1),
            },
        );
        s.assign(
            u,
            Slot {
                step: CStep::new(2),
                unit: unit(OpKind::Add, 1),
            },
        );
        let v = verify(&g, &s, &spec, VerifyOptions::default());
        assert!(v.contains(&Violation::TimeExceeded {
            node: u,
            finish: CStep::new(2)
        }));
    }

    #[test]
    fn wrong_unit_class_is_reported() {
        let (g, t, u) = pair();
        let spec = TimingSpec::uniform_single_cycle();
        let mut s = Schedule::new(&g, 2);
        s.assign(
            t,
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Mul, 1),
            },
        );
        s.assign(
            u,
            Slot {
                step: CStep::new(2),
                unit: unit(OpKind::Add, 1),
            },
        );
        let v = verify(&g, &s, &spec, VerifyOptions::default());
        assert_eq!(v, vec![Violation::UnitClassMismatch { node: t }]);
    }

    #[test]
    fn multicycle_overlap_is_a_conflict() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("a", OpKind::Mul, &[x, x]).unwrap();
        b.op("b", OpKind::Mul, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let a = g.node_by_name("a").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let mut s = Schedule::new(&g, 3);
        s.assign(
            a,
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Mul, 1),
            },
        );
        s.assign(
            bb,
            Slot {
                step: CStep::new(2),
                unit: unit(OpKind::Mul, 1),
            },
        );
        let v = verify(&g, &s, &spec, VerifyOptions::default());
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::ResourceConflict { .. }));
    }
}
