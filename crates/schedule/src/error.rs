//! Error type for scheduling computations.

use std::fmt;

use hls_dfg::NodeId;

/// Error produced by the scheduling substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The time constraint is shorter than the critical path: no ALAP
    /// schedule exists.
    InfeasibleTime {
        /// Control steps required by the critical path.
        needed: u32,
        /// Control steps allowed by the constraint.
        given: u32,
    },
    /// A computation required `node` to be scheduled but it is not.
    NotScheduled(NodeId),
    /// The requested latency is invalid (zero, or larger than the time
    /// constraint).
    InvalidLatency {
        /// The requested initiation interval.
        latency: u32,
        /// The time constraint it must not exceed.
        cs: u32,
    },
    /// Chaining analysis found a single operation slower than the clock
    /// period, so no chained schedule can exist.
    OpSlowerThanClock {
        /// The offending node.
        node: NodeId,
    },
    /// The graph declares banked arrays but the scheduler has no notion
    /// of memory-port capacity, so any schedule it produced could
    /// oversubscribe a bank. Port-aware schedulers: MFS, MFSA, list.
    MemoryUnsupported,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InfeasibleTime { needed, given } => write!(
                f,
                "time constraint of {given} control step(s) is below the critical path of {needed}"
            ),
            ScheduleError::NotScheduled(node) => {
                write!(f, "operation {node} has not been scheduled")
            }
            ScheduleError::InvalidLatency { latency, cs } => {
                write!(f, "latency {latency} is invalid for a {cs}-step schedule")
            }
            ScheduleError::OpSlowerThanClock { node } => {
                write!(f, "operation {node} is slower than the clock period")
            }
            ScheduleError::MemoryUnsupported => write!(
                f,
                "this scheduler is memory-port unaware; use mfs, mfsa or list for graphs with banked arrays"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_numbers() {
        let e = ScheduleError::InfeasibleTime {
            needed: 17,
            given: 12,
        };
        let s = e.to_string();
        assert!(s.contains("17") && s.contains("12"));
    }
}
