//! ASCII rendering of placement tables and schedules (the harnesses'
//! Figure 1/Figure 2 output builds on these).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use hls_celllib::TimingSpec;
use hls_dfg::Dfg;

use crate::{CStep, FuIndex, Grid, Schedule, UnitId};

/// Renders one class grid as an ASCII table: rows are control steps,
/// columns are FU indices; cells show the occupying operation names
/// (several when mutually exclusive operations share).
pub fn render_grid(grid: &Grid, dfg: &Dfg) -> String {
    let mut cell_text: BTreeMap<(u32, u32), String> = BTreeMap::new();
    for step in 1..=grid.control_steps() {
        for fu in 1..=grid.max_fu() {
            let occ = grid.occupants(CStep::new(step), FuIndex::new(fu));
            if !occ.is_empty() {
                let names: Vec<&str> = occ.iter().map(|&n| dfg.node(n).name()).collect();
                cell_text.insert((step, fu), names.join("/"));
            }
        }
    }
    let width = cell_text
        .values()
        .map(String::len)
        .max()
        .unwrap_or(1)
        .max(3);
    let mut out = String::new();
    let _ = writeln!(out, "class {}  (steps x units)", grid.class());
    let _ = write!(out, "      ");
    for fu in 1..=grid.max_fu() {
        let _ = write!(out, " {:^width$}", format!("u{fu}"));
    }
    out.push('\n');
    for step in 1..=grid.control_steps() {
        let _ = write!(out, "  t{step:<3}");
        for fu in 1..=grid.max_fu() {
            let text = cell_text
                .get(&(step, fu))
                .map(String::as_str)
                .unwrap_or(".");
            let _ = write!(out, " {text:^width$}");
        }
        out.push('\n');
    }
    out
}

/// Renders a complete schedule step by step: each row lists the
/// operations starting in that step with their bound units.
pub fn render_schedule(dfg: &Dfg, schedule: &Schedule, spec: &TimingSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "schedule of `{}` in {} control steps",
        dfg.name(),
        schedule.control_steps()
    );
    for step in 1..=schedule.control_steps() {
        let mut entries: Vec<String> = Vec::new();
        for (node, slot) in schedule.iter() {
            if slot.step.get() != step {
                continue;
            }
            let n = dfg.node(node);
            let cycles = n.kind().cycles(spec);
            let span = if cycles > 1 {
                format!(" (..t{})", slot.step.finish(cycles).get())
            } else {
                String::new()
            };
            let unit = match slot.unit {
                UnitId::Fu { class, index } => format!("{class}[{}]", index.get()),
                UnitId::Alu { instance } => format!("ALU{instance}"),
            };
            entries.push(format!("{}:{} @{unit}{span}", n.name(), n.kind()));
        }
        entries.sort();
        let _ = writeln!(out, "  t{step:<3} {}", entries.join("  "));
    }
    // Per-class FU counts footer, paper Table-1 style.
    let counts = schedule.fu_counts();
    if !counts.is_empty() {
        let mix: Vec<String> = counts
            .iter()
            .map(|(class, count)| format!("{count}x{class}"))
            .collect();
        let _ = writeln!(out, "  FUs: {}", mix.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Slot;
    use hls_celllib::OpKind;
    use hls_dfg::{DfgBuilder, FuClass};

    #[test]
    fn grid_rendering_shows_occupants() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("alpha", OpKind::Add, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let a = g.node_by_name("alpha").unwrap();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 2, 2);
        grid.occupy(a, CStep::new(2), FuIndex::new(1), 1);
        let text = render_grid(&grid, &g);
        assert!(text.contains("alpha"));
        assert!(text.contains("t2"));
        assert!(text.contains("u1"));
        assert!(text.contains('.'));
    }

    #[test]
    fn schedule_rendering_lists_steps_and_units() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let m = b.op("m", OpKind::Mul, &[x, x]).unwrap();
        b.op("a", OpKind::Add, &[m, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let mut s = Schedule::new(&g, 3);
        s.assign(
            g.node_by_name("m").unwrap(),
            Slot {
                step: CStep::new(1),
                unit: UnitId::Fu {
                    class: FuClass::Op(OpKind::Mul),
                    index: FuIndex::new(1),
                },
            },
        );
        s.assign(
            g.node_by_name("a").unwrap(),
            Slot {
                step: CStep::new(3),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        let text = render_schedule(&g, &s, &spec);
        assert!(text.contains("m:* @*[1] (..t2)"));
        assert!(text.contains("a:+ @ALU0"));
        assert!(text.contains("FUs: 1x*"));
    }
}
