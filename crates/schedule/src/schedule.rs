//! Control steps, units and the schedule container.

use std::collections::BTreeMap;
use std::fmt;

use hls_celllib::TimingSpec;
use hls_dfg::{Dfg, FuClass, NodeId};

/// A 1-based control step (`y` coordinate of the paper's placement
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CStep(u32);

impl CStep {
    /// The first control step.
    pub const FIRST: CStep = CStep(1);

    /// Creates a control step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero — steps are 1-based, as in the paper.
    pub fn new(step: u32) -> Self {
        assert!(step >= 1, "control steps are 1-based");
        CStep(step)
    }

    /// The raw 1-based value.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The step `delta` cycles later.
    pub fn offset(self, delta: u32) -> CStep {
        CStep(self.0 + delta)
    }

    /// The last step occupied by an operation of `cycles` cycles that
    /// starts here.
    pub fn finish(self, cycles: u8) -> CStep {
        CStep(self.0 + cycles as u32 - 1)
    }

    /// The previous step, or `None` at step 1.
    pub fn prev(self) -> Option<CStep> {
        (self.0 > 1).then(|| CStep(self.0 - 1))
    }
}

impl fmt::Display for CStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A 1-based functional-unit column index (`x` coordinate of the paper's
/// placement table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuIndex(u32);

impl FuIndex {
    /// The first column.
    pub const FIRST: FuIndex = FuIndex(1);

    /// Creates a column index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is zero — columns are 1-based, as in the paper.
    pub fn new(index: u32) -> Self {
        assert!(index >= 1, "FU indices are 1-based");
        FuIndex(index)
    }

    /// The raw 1-based value.
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FuIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// The hardware unit an operation is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnitId {
    /// MFS binding: the `index`-th single-function unit of `class`.
    Fu {
        /// The functional-unit class ("type j").
        class: FuClass,
        /// 1-based unit index within the class.
        index: FuIndex,
    },
    /// MFSA binding: a concrete (possibly multifunction) ALU instance,
    /// numbered globally across the data path.
    Alu {
        /// 0-based global ALU instance number.
        instance: u32,
    },
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitId::Fu { class, index } => write!(f, "{class}[{}]", index.get()),
            UnitId::Alu { instance } => write!(f, "ALU{instance}"),
        }
    }
}

/// One operation's placement: the step its first cycle executes in, plus
/// the unit it runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot {
    /// Start control step.
    pub step: CStep,
    /// Bound hardware unit.
    pub unit: UnitId,
}

/// A (partial or complete) schedule: per-operation slots within a fixed
/// number of control steps.
///
/// Produced by MFS, MFSA and all baselines; consumed by the verifier,
/// the statistics helpers, the RTL builder and the renderers.
///
/// ```
/// use hls_celllib::OpKind;
/// use hls_dfg::{DfgBuilder, FuClass};
/// use hls_schedule::{CStep, FuIndex, Schedule, Slot, UnitId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("g");
/// let x = b.input("x");
/// let _t = b.op("t", OpKind::Inc, &[x])?;
/// let dfg = b.finish()?;
/// let t = dfg.node_by_name("t").unwrap();
///
/// let mut sched = Schedule::new(&dfg, 3);
/// assert!(!sched.is_complete());
/// sched.assign(t, Slot {
///     step: CStep::new(2),
///     unit: UnitId::Fu { class: FuClass::Op(OpKind::Inc), index: FuIndex::new(1) },
/// });
/// assert!(sched.is_complete());
/// assert_eq!(sched.start(t), Some(CStep::new(2)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    cs: u32,
    node_count: usize,
    /// `NodeId`-indexed slots (`node_count` entries) — O(1) lookup and
    /// assignment; iteration in index order matches the previous
    /// `BTreeMap<NodeId, _>` key order exactly.
    slots: Vec<Option<Slot>>,
    assigned: usize,
}

impl Schedule {
    /// An empty schedule for `dfg` over `cs` control steps.
    ///
    /// # Panics
    ///
    /// Panics if `cs` is zero.
    pub fn new(dfg: &Dfg, cs: u32) -> Self {
        assert!(cs >= 1, "a schedule needs at least one control step");
        Schedule {
            cs,
            node_count: dfg.node_count(),
            slots: vec![None; dfg.node_count()],
            assigned: 0,
        }
    }

    /// The time constraint (total control steps).
    pub fn control_steps(&self) -> u32 {
        self.cs
    }

    /// Assigns (or reassigns) a slot to `node`.
    pub fn assign(&mut self, node: NodeId, slot: Slot) {
        if self.slots[node.index()].replace(slot).is_none() {
            self.assigned += 1;
        }
    }

    /// Removes `node`'s slot (local rescheduling).
    pub fn unassign(&mut self, node: NodeId) -> Option<Slot> {
        let old = self.slots[node.index()].take();
        if old.is_some() {
            self.assigned -= 1;
        }
        old
    }

    /// The slot of `node`, if assigned.
    pub fn slot(&self, node: NodeId) -> Option<Slot> {
        self.slots[node.index()]
    }

    /// The start step of `node`, if assigned.
    pub fn start(&self, node: NodeId) -> Option<CStep> {
        self.slot(node).map(|s| s.step)
    }

    /// The last step occupied by `node` under `spec`, if assigned.
    pub fn finish(&self, node: NodeId, dfg: &Dfg, spec: &TimingSpec) -> Option<CStep> {
        self.slot(node)
            .map(|s| s.step.finish(dfg.node(node).kind().cycles(spec)))
    }

    /// Whether every operation has a slot.
    pub fn is_complete(&self) -> bool {
        self.assigned == self.node_count
    }

    /// Number of assigned operations.
    pub fn assigned_count(&self) -> usize {
        self.assigned
    }

    /// Iterates `(node, slot)` over assigned operations in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Slot)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (NodeId::from_index(i), s)))
    }

    /// Operations starting in `step`.
    pub fn starting_in(&self, step: CStep) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, s)| s.step == step)
            .map(|(n, _)| n)
            .collect()
    }

    /// The number of distinct ALU instances bound (MFSA schedules).
    pub fn alu_instance_count(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for (_, slot) in self.iter() {
            if let UnitId::Alu { instance } = slot.unit {
                set.insert(instance);
            }
        }
        set.len()
    }

    /// Per-class highest bound FU index (MFS schedules): the number of
    /// functional units of each type the schedule requires.
    pub fn fu_counts(&self) -> BTreeMap<FuClass, u32> {
        let mut counts = BTreeMap::new();
        for (_, slot) in self.iter() {
            if let UnitId::Fu { class, index } = slot.unit {
                let entry = counts.entry(class).or_insert(0);
                *entry = (*entry).max(index.get());
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;

    fn graph() -> Dfg {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let t = b.op("t", OpKind::Mul, &[x, x]).unwrap();
        b.op("u", OpKind::Add, &[t, x]).unwrap();
        b.finish().unwrap()
    }

    fn fu(class: FuClass, index: u32) -> UnitId {
        UnitId::Fu {
            class,
            index: FuIndex::new(index),
        }
    }

    #[test]
    fn assign_and_query() {
        let g = graph();
        let t = g.node_by_name("t").unwrap();
        let mut s = Schedule::new(&g, 4);
        s.assign(
            t,
            Slot {
                step: CStep::new(1),
                unit: fu(FuClass::Op(OpKind::Mul), 1),
            },
        );
        assert_eq!(s.start(t), Some(CStep::new(1)));
        assert_eq!(s.assigned_count(), 1);
        assert!(!s.is_complete());
        assert_eq!(s.starting_in(CStep::new(1)), vec![t]);
    }

    #[test]
    fn finish_accounts_for_multicycle() {
        let g = graph();
        let t = g.node_by_name("t").unwrap();
        let mut s = Schedule::new(&g, 4);
        s.assign(
            t,
            Slot {
                step: CStep::new(2),
                unit: fu(FuClass::Op(OpKind::Mul), 1),
            },
        );
        let spec = hls_celllib::TimingSpec::two_cycle_multiply();
        assert_eq!(s.finish(t, &g, &spec), Some(CStep::new(3)));
    }

    #[test]
    fn unassign_supports_rescheduling() {
        let g = graph();
        let t = g.node_by_name("t").unwrap();
        let mut s = Schedule::new(&g, 4);
        s.assign(
            t,
            Slot {
                step: CStep::new(1),
                unit: fu(FuClass::Op(OpKind::Mul), 1),
            },
        );
        assert!(s.unassign(t).is_some());
        assert_eq!(s.start(t), None);
        assert!(s.unassign(t).is_none());
    }

    #[test]
    fn fu_counts_take_max_index() {
        let g = graph();
        let t = g.node_by_name("t").unwrap();
        let u = g.node_by_name("u").unwrap();
        let mut s = Schedule::new(&g, 4);
        s.assign(
            t,
            Slot {
                step: CStep::new(1),
                unit: fu(FuClass::Op(OpKind::Mul), 2),
            },
        );
        s.assign(
            u,
            Slot {
                step: CStep::new(2),
                unit: fu(FuClass::Op(OpKind::Add), 1),
            },
        );
        let counts = s.fu_counts();
        assert_eq!(counts[&FuClass::Op(OpKind::Mul)], 2);
        assert_eq!(counts[&FuClass::Op(OpKind::Add)], 1);
    }

    #[test]
    fn alu_instances_are_counted_distinctly() {
        let g = graph();
        let t = g.node_by_name("t").unwrap();
        let u = g.node_by_name("u").unwrap();
        let mut s = Schedule::new(&g, 4);
        s.assign(
            t,
            Slot {
                step: CStep::new(1),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        s.assign(
            u,
            Slot {
                step: CStep::new(2),
                unit: UnitId::Alu { instance: 0 },
            },
        );
        assert_eq!(s.alu_instance_count(), 1);
    }

    #[test]
    fn cstep_helpers() {
        let s = CStep::new(3);
        assert_eq!(s.finish(1), CStep::new(3));
        assert_eq!(s.finish(2), CStep::new(4));
        assert_eq!(s.offset(2), CStep::new(5));
        assert_eq!(s.prev(), Some(CStep::new(2)));
        assert_eq!(CStep::FIRST.prev(), None);
        assert_eq!(s.to_string(), "t3");
    }

    #[test]
    fn unit_display() {
        assert_eq!(UnitId::Alu { instance: 3 }.to_string(), "ALU3");
        let u = fu(FuClass::Op(OpKind::Mul), 2);
        assert_eq!(u.to_string(), "*[2]");
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_step_panics() {
        let _ = CStep::new(0);
    }
}
