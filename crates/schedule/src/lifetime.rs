//! Signal life spans over control steps (paper §5.8).
//!
//! "We use an expanded version of the activity selection algorithm … the
//! signal with the smallest death time is selected and if it is
//! compatible (no time conflict) with other signals in the register it
//! will be assigned to that register." The *life spans* themselves are
//! algorithm-neutral — they depend only on a (complete) [`Schedule`] —
//! so they live here, in the substrate both MFS and MFSA build on.
//! `hls-rtl` packs them into registers with the left-edge algorithm;
//! [`crate::ScheduleStats`] reports the optimal register count directly
//! via [`peak_live`], which the left-edge packing always meets exactly.

use hls_celllib::TimingSpec;
use hls_dfg::{Dfg, SignalId, SignalSource};

use crate::Schedule;

/// The life span of one stored signal: the register is occupied during
/// control steps `[birth, death]`, both inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// The stored signal.
    pub signal: SignalId,
    /// First step the value sits in a register (the step after its
    /// producer finishes; step 1 for primary inputs).
    pub birth: u32,
    /// Last step the value is read.
    pub death: u32,
}

impl Lifetime {
    /// Whether two life spans overlap (cannot share a register).
    pub fn overlaps(&self, other: &Lifetime) -> bool {
        self.birth <= other.death && other.birth <= self.death
    }
}

/// Computes the life span of every signal that needs storage under the
/// given (complete) schedule.
///
/// Rules (documented in `DESIGN.md`):
///
/// * an operation result is born one step after its producer finishes
///   and dies at its last consumer's start step; consumers reading in
///   the producer's own finish step (chaining) read the ALU output
///   directly and do not extend the span;
/// * results nobody consumes (design outputs) are held for one step;
/// * primary inputs are born at step 1 and die at their last consumer
///   (they occupy registers, matching the paper's REG counts);
/// * constants are hardwired and never stored.
///
/// The same function serves the MFS path (via
/// [`crate::ScheduleStats`]) and the MFSA/RTL path (via the register
/// allocator in `hls-rtl`), so the two report identical counts for
/// identical schedules.
pub fn signal_lifetimes(dfg: &Dfg, schedule: &Schedule, spec: &TimingSpec) -> Vec<Lifetime> {
    let mut lifetimes = Vec::new();
    for (sid, sig) in dfg.signals() {
        let consumers = dfg.consumers(sid);
        match sig.source() {
            SignalSource::Constant(_) => {}
            SignalSource::PrimaryInput => {
                let death = consumers
                    .iter()
                    .filter_map(|&c| schedule.start(c))
                    .map(|s| s.get())
                    .max();
                if let Some(death) = death {
                    lifetimes.push(Lifetime {
                        signal: sid,
                        birth: 1,
                        death,
                    });
                }
            }
            SignalSource::Node(producer) => {
                let Some(finish) = schedule.finish(producer, dfg, spec) else {
                    continue;
                };
                let birth = finish.get() + 1;
                let death = consumers
                    .iter()
                    .filter_map(|&c| schedule.start(c))
                    .map(|s| s.get())
                    // Same-step (chained) consumers read the ALU output.
                    .filter(|&s| s > finish.get())
                    .max();
                match death {
                    Some(death) => lifetimes.push(Lifetime {
                        signal: sid,
                        birth,
                        death,
                    }),
                    None if consumers.is_empty() => {
                        // A design output: latch it for one step.
                        lifetimes.push(Lifetime {
                            signal: sid,
                            birth,
                            death: birth,
                        });
                    }
                    None => {} // all consumers chained: no storage
                }
            }
        }
    }
    lifetimes
}

/// The interval-graph lower bound: the peak number of simultaneously
/// live values. Left-edge packing (in `hls-rtl`) always meets it
/// exactly — the property tests assert this — so this *is* the register
/// count of an optimally packed schedule.
pub fn peak_live(lifetimes: &[Lifetime]) -> usize {
    let max_step = lifetimes.iter().map(|l| l.death).max().unwrap_or(0);
    (1..=max_step)
        .map(|step| {
            lifetimes
                .iter()
                .filter(|l| l.birth <= step && step <= l.death)
                .count()
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CStep, FuIndex, Slot, UnitId};
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;

    fn life(signal_stub: SignalId, birth: u32, death: u32) -> Lifetime {
        Lifetime {
            signal: signal_stub,
            birth,
            death,
        }
    }

    fn schedule_linear(dfg: &Dfg, steps: &[(&str, u32)]) -> Schedule {
        let mut s = Schedule::new(dfg, steps.iter().map(|&(_, t)| t).max().unwrap_or(1));
        for &(name, t) in steps {
            let id = dfg.node_by_name(name).unwrap();
            s.assign(
                id,
                Slot {
                    step: CStep::new(t),
                    unit: UnitId::Fu {
                        class: dfg.node(id).kind().fu_class(),
                        index: FuIndex::new(1),
                    },
                },
            );
        }
        s
    }

    #[test]
    fn lifetimes_span_producer_to_last_consumer() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let p = b.op("p", OpKind::Inc, &[x]).unwrap();
        b.op("q", OpKind::Dec, &[p]).unwrap();
        b.op("r", OpKind::Neg, &[p]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let s = schedule_linear(&g, &[("p", 1), ("q", 2), ("r", 4)]);
        let lifetimes = signal_lifetimes(&g, &s, &spec);
        let p_sig = g.signal_by_name("p").unwrap();
        let p_life = lifetimes.iter().find(|l| l.signal == p_sig).unwrap();
        assert_eq!((p_life.birth, p_life.death), (2, 4));
        // Primary input x: born at 1, dies at its only consumer (step 1).
        let x_life = lifetimes.iter().find(|l| l.signal == x).unwrap();
        assert_eq!((x_life.birth, x_life.death), (1, 1));
    }

    #[test]
    fn constants_are_never_stored() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let k = b.constant("k", 3);
        b.op("p", OpKind::Add, &[x, k]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let s = schedule_linear(&g, &[("p", 1)]);
        let lifetimes = signal_lifetimes(&g, &s, &spec);
        assert!(lifetimes.iter().all(|l| l.signal != k));
    }

    #[test]
    fn outputs_are_latched_one_step() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("p", OpKind::Inc, &[x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let s = schedule_linear(&g, &[("p", 2)]);
        let lifetimes = signal_lifetimes(&g, &s, &spec);
        let p_sig = g.signal_by_name("p").unwrap();
        let p_life = lifetimes.iter().find(|l| l.signal == p_sig).unwrap();
        assert_eq!((p_life.birth, p_life.death), (3, 3));
    }

    #[test]
    fn multicycle_producers_delay_the_birth() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let m = b.op("m", OpKind::Mul, &[x, x]).unwrap();
        b.op("a", OpKind::Add, &[m, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let s = schedule_linear(&g, &[("m", 1), ("a", 4)]);
        let lifetimes = signal_lifetimes(&g, &s, &spec);
        let m_sig = g.signal_by_name("m").unwrap();
        let m_life = lifetimes.iter().find(|l| l.signal == m_sig).unwrap();
        // mul finishes at step 2 → born at 3.
        assert_eq!((m_life.birth, m_life.death), (3, 4));
    }

    #[test]
    fn overlap_predicate() {
        let mut b = DfgBuilder::new("stub");
        let s0 = b.input("s0");
        let s1 = b.input("s1");
        assert!(life(s0, 1, 3).overlaps(&life(s1, 3, 5)));
        assert!(!life(s0, 1, 2).overlaps(&life(s1, 3, 5)));
    }

    #[test]
    fn peak_live_counts_overlap() {
        let mut b = DfgBuilder::new("stub");
        let ids: Vec<SignalId> = (0..3).map(|i| b.input(&format!("s{i}"))).collect();
        let lifetimes = [life(ids[0], 1, 2), life(ids[1], 3, 4), life(ids[2], 2, 3)];
        assert_eq!(peak_live(&lifetimes), 2);
        assert_eq!(peak_live(&[]), 0);
    }
}
