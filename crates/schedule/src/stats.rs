//! Schedule statistics: FU usage and concurrency profiles.

use hls_celllib::TimingSpec;
use hls_dfg::{Dfg, OpMix};

use crate::lifetime::{peak_live, signal_lifetimes};
use crate::Schedule;

/// Summary statistics of a schedule, as reported in the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Per-class FU counts, paper-notation printable.
    pub mix: OpMix,
    /// Number of operations executing in each step (index 0 = step 1).
    pub concurrency: Vec<usize>,
    /// The time constraint.
    pub control_steps: u32,
    /// Registers needed by an optimal (left-edge) packing of the signal
    /// life spans: the peak number of simultaneously live values. Both
    /// the MFS and MFSA paths report through this one definition, so it
    /// always agrees with the data path's `CostReport::reg_count`.
    pub registers: usize,
}

impl ScheduleStats {
    /// Computes statistics for a (complete) schedule.
    pub fn compute(dfg: &Dfg, schedule: &Schedule, spec: &TimingSpec) -> ScheduleStats {
        ScheduleStats {
            mix: fu_mix(schedule),
            concurrency: step_concurrency(dfg, schedule, spec),
            control_steps: schedule.control_steps(),
            registers: peak_live(&signal_lifetimes(dfg, schedule, spec)),
        }
    }

    /// [`ScheduleStats::compute`] with instrumentation: runs as the
    /// `schedule.stats` phase span, counts the run, and feeds the
    /// per-step concurrency profile into the `schedule.concurrency`
    /// histogram (so batch harnesses see peak/mean load across runs).
    pub fn compute_traced(
        dfg: &Dfg,
        schedule: &Schedule,
        spec: &TimingSpec,
        instr: &mut hls_telemetry::Instrument<'_>,
    ) -> ScheduleStats {
        instr.span("schedule.stats", |instr| {
            let stats = ScheduleStats::compute(dfg, schedule, spec);
            instr.inc("schedule.stats.runs", 1);
            for &c in &stats.concurrency {
                instr.observe("schedule.concurrency", c as u64);
            }
            stats
        })
    }

    /// The largest per-step concurrency.
    pub fn peak_concurrency(&self) -> usize {
        self.concurrency.iter().copied().max().unwrap_or(0)
    }

    /// A balance measure: peak minus average concurrency (0 = perfectly
    /// balanced). MFS aims for "a balanced schedule (minimum
    /// concurrency)".
    pub fn imbalance(&self) -> f64 {
        if self.concurrency.is_empty() {
            return 0.0;
        }
        let total: usize = self.concurrency.iter().sum();
        let avg = total as f64 / self.concurrency.len() as f64;
        self.peak_concurrency() as f64 - avg
    }
}

/// The functional-unit mix a schedule requires: for every class, the
/// highest FU index bound (paper Table 1's per-type FU counts).
pub fn fu_mix(schedule: &Schedule) -> OpMix {
    schedule
        .fu_counts()
        .into_iter()
        .map(|(class, count)| (class, count as usize))
        .collect()
}

/// Number of operations executing (not merely starting) in each step.
/// Mutually exclusive operations both count — the profile measures graph
/// activity, not hardware usage.
pub fn step_concurrency(dfg: &Dfg, schedule: &Schedule, spec: &TimingSpec) -> Vec<usize> {
    let cs = schedule.control_steps() as usize;
    let mut profile = vec![0usize; cs];
    for (node, slot) in schedule.iter() {
        let cycles = dfg.node(node).kind().cycles(spec) as u32;
        for k in 0..cycles {
            let step = slot.step.get() + k;
            if (step as usize) <= cs {
                profile[step as usize - 1] += 1;
            }
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CStep, FuIndex, Slot, UnitId};
    use hls_celllib::OpKind;
    use hls_dfg::{DfgBuilder, FuClass};

    fn unit(k: OpKind, i: u32) -> UnitId {
        UnitId::Fu {
            class: FuClass::Op(k),
            index: FuIndex::new(i),
        }
    }

    #[test]
    fn mix_and_concurrency() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let m = b.op("m", OpKind::Mul, &[x, x]).unwrap();
        b.op("a", OpKind::Add, &[m, x]).unwrap();
        b.op("b", OpKind::Add, &[m, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let mut s = Schedule::new(&g, 3);
        s.assign(
            g.node_by_name("m").unwrap(),
            Slot {
                step: CStep::new(1),
                unit: unit(OpKind::Mul, 1),
            },
        );
        s.assign(
            g.node_by_name("a").unwrap(),
            Slot {
                step: CStep::new(3),
                unit: unit(OpKind::Add, 1),
            },
        );
        s.assign(
            g.node_by_name("b").unwrap(),
            Slot {
                step: CStep::new(3),
                unit: unit(OpKind::Add, 2),
            },
        );
        let stats = ScheduleStats::compute(&g, &s, &spec);
        assert_eq!(stats.mix.to_string(), "*,++");
        assert_eq!(stats.concurrency, vec![1, 1, 2]);
        assert_eq!(stats.peak_concurrency(), 2);
        assert!(stats.imbalance() > 0.0);
        // x lives 1–3, m lives 3–3, a and b latch in step 4: peak 2.
        assert_eq!(stats.registers, 2);
    }

    #[test]
    fn empty_schedule_has_empty_stats() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        b.op("t", OpKind::Inc, &[x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let s = Schedule::new(&g, 2);
        let stats = ScheduleStats::compute(&g, &s, &spec);
        assert_eq!(stats.mix.total(), 0);
        assert_eq!(stats.concurrency, vec![0, 0]);
        assert_eq!(stats.peak_concurrency(), 0);
        assert_eq!(stats.registers, 0);
    }
}
