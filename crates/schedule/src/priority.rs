//! The paper's priority order (§3.2 step 2, adjusted in §5.3).

use hls_celllib::TimingSpec;
use hls_dfg::{Dfg, NodeId};

use crate::asap_alap::TimeFrames;

/// The priority rule used to order operations (for the rule ablation;
/// the paper's rule is [`PriorityRule::AlapThenMobility`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PriorityRule {
    /// The paper's §3.2 rule: ALAP control step ascending, then
    /// mobility ascending (with the §5.3 multi-cycle adjustment).
    #[default]
    AlapThenMobility,
    /// Plain list-scheduling priority: mobility ascending only. Does
    /// *not* guarantee predecessors are placed first; the schedulers
    /// compensate through the scheduled-successor frame cap.
    PlainMobility,
}

/// Orders operations for move-frame scheduling under a chosen rule.
pub fn priority_order_with(
    dfg: &Dfg,
    spec: &TimingSpec,
    frames: &TimeFrames,
    rule: PriorityRule,
) -> Vec<NodeId> {
    match rule {
        PriorityRule::AlapThenMobility => priority_order(dfg, spec, frames),
        PriorityRule::PlainMobility => {
            let mut order: Vec<NodeId> = dfg.node_ids().collect();
            order.sort_by_key(|&n| (frames.mobility(n), frames.alap(n), n));
            order
        }
    }
}

/// Orders operations for move-frame scheduling.
///
/// The base rule (paper §3.2): "Determine the priorities of operations in
/// ALAP schedule based on their mobilities. … If `mob[p] < mob[q]` then p
/// has more priority than q. Priority determination starts from the first
/// control step and will cover all control steps in ALAP." — i.e. sort by
/// ALAP control step ascending, then mobility ascending. Because ALAP
/// respects dependencies, every predecessor precedes its successors.
///
/// The multi-cycle adjustment (§5.3): "If the difference of mobilities
/// between two k-cycle operations is less than k, we will reverse the
/// previous rule … the operation with more mobility has always a better
/// chance to use the empty positions." A pairwise reversal is not a total
/// order, so we use the standard transitive approximation: k-cycle
/// operations compare by `(mobility / k)` ascending and mobility
/// *descending* within each bucket, which reverses exactly the pairs
/// whose mobilities fall in the same k-wide band.
///
/// Ties break by "earlier predecessors (in terms of control steps)" —
/// the smallest maximal predecessor ASAP finish — and finally by node id
/// (the paper breaks ties "arbitrarily"; ids keep runs deterministic).
pub fn priority_order(dfg: &Dfg, spec: &TimingSpec, frames: &TimeFrames) -> Vec<NodeId> {
    let mut order: Vec<NodeId> = dfg.node_ids().collect();
    let key = |n: NodeId| -> (u32, u32, u32, u32, u32) {
        let node = dfg.node(n);
        let cycles = node.kind().cycles(spec) as u32;
        let mob = frames.mobility(n);
        let (m1, m2) = if cycles > 1 {
            // Bucketed reversal: same band → more mobility first.
            (mob / cycles, u32::MAX - mob)
        } else {
            (mob, 0)
        };
        let pred_key = dfg
            .preds(n)
            .iter()
            .map(|&p| frames.asap(p).get() + dfg.node(p).kind().cycles(spec) as u32 - 1)
            .max()
            .unwrap_or(0);
        (frames.alap(n).get(), m1, m2, pred_key, n.index() as u32)
    };
    order.sort_by_key(|&n| key(n));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::{OpKind, OpTiming};
    use hls_dfg::DfgBuilder;

    #[test]
    fn predecessors_come_before_successors() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let t = b.op("t", OpKind::Mul, &[x, x]).unwrap();
        let u = b.op("u", OpKind::Add, &[t, x]).unwrap();
        b.op("v", OpKind::Sub, &[u, t]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let frames = TimeFrames::compute(&g, &spec, 6).unwrap();
        let order = priority_order(&g, &spec, &frames);
        let pos = |name: &str| {
            let id = g.node_by_name(name).unwrap();
            order.iter().position(|&n| n == id).unwrap()
        };
        assert!(pos("t") < pos("u"));
        assert!(pos("u") < pos("v"));
    }

    #[test]
    fn lower_mobility_goes_first_within_a_step() {
        // Two independent ops with the same ALAP step but different
        // mobility: the critical one (mobility 0) must be placed first.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        // Chain of 3 adds: all mobility 0 at cs=3.
        let a1 = b.op("a1", OpKind::Add, &[x, x]).unwrap();
        let a2 = b.op("a2", OpKind::Add, &[a1, x]).unwrap();
        b.op("a3", OpKind::Add, &[a2, x]).unwrap();
        // A free op with mobility 2 whose ALAP is also step 3.
        b.op("free", OpKind::Sub, &[x, x]).unwrap();
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let frames = TimeFrames::compute(&g, &spec, 3).unwrap();
        let order = priority_order(&g, &spec, &frames);
        let pos = |name: &str| {
            let id = g.node_by_name(name).unwrap();
            order.iter().position(|&n| n == id).unwrap()
        };
        assert!(pos("a3") < pos("free"));
    }

    #[test]
    fn close_mobility_multicycle_ops_are_reversed() {
        // Two independent 2-cycle multiplies with mobilities 0 and 1
        // (difference < k = 2): the one with MORE mobility goes first.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let m1 = b.op("m1", OpKind::Mul, &[x, x]).unwrap();
        b.op("tail", OpKind::Add, &[m1, x]).unwrap(); // pins m1 mobility to 0
        b.op("m2", OpKind::Mul, &[x, x]).unwrap(); // mobility 1
        let g = b.finish().unwrap();
        let spec = TimingSpec::two_cycle_multiply();
        let frames = TimeFrames::compute(&g, &spec, 3).unwrap();
        let m1 = g.node_by_name("m1").unwrap();
        let m2 = g.node_by_name("m2").unwrap();
        assert_eq!(frames.mobility(m1), 0);
        assert_eq!(frames.mobility(m2), 1);
        let order = priority_order(&g, &spec, &frames);
        let p1 = order.iter().position(|&n| n == m1).unwrap();
        let p2 = order.iter().position(|&n| n == m2).unwrap();
        // Same ALAP? m1 alap start = 1, m2 alap start = 2 — different
        // steps, so the primary key still applies. Verify at least that
        // the order is deterministic and both are present.
        assert_ne!(p1, p2);
    }

    #[test]
    fn bucketed_reversal_within_same_alap_step() {
        // Force two 2-cycle ops to share an ALAP start step with
        // mobilities 0 and 1: bucket 0 for both, so the mobility-1 op
        // must come first.
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let mut spec = TimingSpec::uniform_single_cycle();
        spec.set(
            OpKind::Mul,
            OpTiming::multi_cycle(2, hls_celllib::Delay::ZERO),
        );
        spec.set(
            OpKind::Div,
            OpTiming::multi_cycle(2, hls_celllib::Delay::ZERO),
        );
        // m: 2-cycle, followed by one single-cycle op => alap start 2 at cs=4... (mob 1)
        let m = b.op("m", OpKind::Mul, &[x, x]).unwrap();
        b.op("after", OpKind::Add, &[m, x]).unwrap();
        // d: 2-cycle followed by a 2-cycle chain => alap start 1 (mob 0).
        let d = b.op("d", OpKind::Div, &[x, x]).unwrap();
        b.op("after2", OpKind::Div, &[d, x]).unwrap();
        let g = b.finish().unwrap();
        let frames = TimeFrames::compute(&g, &spec, 4).unwrap();
        let m = g.node_by_name("m").unwrap();
        let d = g.node_by_name("d").unwrap();
        assert_eq!(frames.mobility(d), 0);
        assert_eq!(frames.mobility(m), 1);
        if frames.alap(m) == frames.alap(d) {
            let order = priority_order(&g, &spec, &frames);
            let pm = order.iter().position(|&n| n == m).unwrap();
            let pd = order.iter().position(|&n| n == d).unwrap();
            assert!(pm < pd, "more mobile multi-cycle op should go first");
        }
    }

    #[test]
    fn order_is_a_permutation() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        for i in 0..10 {
            b.op(&format!("n{i}"), OpKind::Inc, &[x]).unwrap();
        }
        let g = b.finish().unwrap();
        let spec = TimingSpec::uniform_single_cycle();
        let frames = TimeFrames::compute(&g, &spec, 3).unwrap();
        let mut order = priority_order(&g, &spec, &frames);
        order.sort();
        let all: Vec<NodeId> = g.node_ids().collect();
        assert_eq!(order, all);
    }
}
