//! The paper's 2-D placement table (control steps × FU index), one per
//! functional-unit class.

use std::collections::BTreeMap;

use hls_dfg::{Dfg, FuClass, NodeId};

use crate::{CStep, FuIndex};

/// Occupancy table for one FU class: the "grid table" of Figure 1, where
/// an operation occupies `(FU index, control step)` cells.
///
/// The grid optionally wraps control steps modulo a functional-pipelining
/// latency `L`: "for a given latency L, the operations scheduled into
/// control step `t + k·L` run concurrently" (paper §5.5.2), so occupancy
/// conflicts are evaluated on `(step − 1) mod L`.
///
/// Mutual exclusion is honoured: a cell may hold several operations as
/// long as they are pairwise mutually exclusive (paper §5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    class: FuClass,
    cs: u32,
    max_fu: u32,
    latency: Option<u32>,
    cells: BTreeMap<(u32, u32), Vec<NodeId>>,
    placements: BTreeMap<NodeId, (CStep, FuIndex, u8)>,
}

impl Grid {
    /// An empty grid for `class` with `cs` steps and at most `max_fu`
    /// unit columns.
    ///
    /// # Panics
    ///
    /// Panics if `cs` or `max_fu` is zero.
    pub fn new(class: FuClass, cs: u32, max_fu: u32) -> Self {
        assert!(cs >= 1 && max_fu >= 1, "grid dimensions are 1-based");
        Grid {
            class,
            cs,
            max_fu,
            latency: None,
            cells: BTreeMap::new(),
            placements: BTreeMap::new(),
        }
    }

    /// Enables modulo-`latency` occupancy for functional pipelining.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn with_latency(mut self, latency: u32) -> Self {
        assert!(latency >= 1, "latency must be positive");
        self.latency = Some(latency);
        self
    }

    /// The FU class this grid belongs to.
    pub fn class(&self) -> FuClass {
        self.class
    }

    /// Number of control steps.
    pub fn control_steps(&self) -> u32 {
        self.cs
    }

    /// Column budget (`max_j`).
    pub fn max_fu(&self) -> u32 {
        self.max_fu
    }

    /// Raises the column budget (local rescheduling may discover that
    /// the initial `max_j` estimate was too small when it was derived
    /// from ASAP/ALAP concurrency rather than a user constraint).
    pub fn grow_max_fu(&mut self, max_fu: u32) {
        self.max_fu = self.max_fu.max(max_fu);
    }

    fn wrap(&self, step: u32) -> u32 {
        match self.latency {
            Some(l) => (step - 1) % l + 1,
            None => step,
        }
    }

    /// Occupants of the cell `(step, fu)` (after wrap-around).
    pub fn occupants(&self, step: CStep, fu: FuIndex) -> &[NodeId] {
        self.cells
            .get(&(self.wrap(step.get()), fu.get()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `node` (occupying `cycles` steps from `step` on column
    /// `fu`) can be placed: all its cells are inside the grid and every
    /// current occupant is mutually exclusive with it.
    pub fn is_free_for(
        &self,
        dfg: &Dfg,
        node: NodeId,
        step: CStep,
        fu: FuIndex,
        cycles: u8,
    ) -> bool {
        if fu.get() > self.max_fu {
            return false;
        }
        if step.finish(cycles).get() > self.cs {
            return false;
        }
        for c in 0..cycles as u32 {
            for &occ in self.occupants(step.offset(c), fu) {
                if !dfg.mutually_exclusive(node, occ) {
                    return false;
                }
            }
        }
        true
    }

    /// Places `node` at `(step, fu)` for `cycles` steps.
    ///
    /// # Panics
    ///
    /// Panics if the node is already placed or the cells are outside the
    /// grid — schedulers check [`Grid::is_free_for`] first, so either is
    /// a scheduler bug.
    pub fn occupy(&mut self, node: NodeId, step: CStep, fu: FuIndex, cycles: u8) {
        assert!(
            !self.placements.contains_key(&node),
            "node {node} is already placed"
        );
        assert!(fu.get() <= self.max_fu, "column {fu} beyond max_fu");
        assert!(
            step.finish(cycles).get() <= self.cs,
            "placement overruns the time constraint"
        );
        for c in 0..cycles as u32 {
            self.cells
                .entry((self.wrap(step.offset(c).get()), fu.get()))
                .or_default()
                .push(node);
        }
        self.placements.insert(node, (step, fu, cycles));
    }

    /// Removes `node`'s placement (local rescheduling). Returns the old
    /// `(step, fu)` if it was placed.
    pub fn vacate(&mut self, node: NodeId) -> Option<(CStep, FuIndex)> {
        let (step, fu, cycles) = self.placements.remove(&node)?;
        for c in 0..cycles as u32 {
            if let Some(cell) = self
                .cells
                .get_mut(&(self.wrap(step.offset(c).get()), fu.get()))
            {
                cell.retain(|&n| n != node);
            }
        }
        Some((step, fu))
    }

    /// The placement of `node`, if any.
    pub fn placement(&self, node: NodeId) -> Option<(CStep, FuIndex)> {
        self.placements.get(&node).map(|&(s, f, _)| (s, f))
    }

    /// Number of placed nodes.
    pub fn placed_count(&self) -> usize {
        self.placements.len()
    }

    /// Highest column index in use (the FU count this grid implies).
    pub fn columns_used(&self) -> u32 {
        self.placements
            .values()
            .map(|&(_, f, _)| f.get())
            .max()
            .unwrap_or(0)
    }

    /// Iterates over placements `(node, step, fu)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, CStep, FuIndex)> + '_ {
        self.placements.iter().map(|(&n, &(s, f, _))| (n, s, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;

    fn exclusive_pair() -> (Dfg, NodeId, NodeId, NodeId) {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let branch = b.begin_branch();
        b.enter_arm(branch, 0);
        b.op("t", OpKind::Add, &[x, y]).unwrap();
        b.exit_arm();
        b.enter_arm(branch, 1);
        b.op("e", OpKind::Add, &[x, y]).unwrap();
        b.exit_arm();
        b.op("u", OpKind::Add, &[x, y]).unwrap();
        let g = b.finish().unwrap();
        let t = g.node_by_name("t").unwrap();
        let e = g.node_by_name("e").unwrap();
        let u = g.node_by_name("u").unwrap();
        (g, t, e, u)
    }

    #[test]
    fn occupied_cell_blocks_non_exclusive_ops() {
        let (g, t, e, u) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 2);
        grid.occupy(t, CStep::new(1), FuIndex::new(1), 1);
        // Mutually exclusive `e` can share the cell; unrelated `u` cannot.
        assert!(grid.is_free_for(&g, e, CStep::new(1), FuIndex::new(1), 1));
        assert!(!grid.is_free_for(&g, u, CStep::new(1), FuIndex::new(1), 1));
        assert!(grid.is_free_for(&g, u, CStep::new(1), FuIndex::new(2), 1));
        grid.occupy(e, CStep::new(1), FuIndex::new(1), 1);
        assert_eq!(grid.occupants(CStep::new(1), FuIndex::new(1)).len(), 2);
    }

    #[test]
    fn bounds_are_enforced() {
        let (g, t, _, _) = exclusive_pair();
        let grid = Grid::new(FuClass::Op(OpKind::Add), 3, 2);
        assert!(!grid.is_free_for(&g, t, CStep::new(1), FuIndex::new(3), 1));
        assert!(!grid.is_free_for(&g, t, CStep::new(3), FuIndex::new(1), 2));
        assert!(grid.is_free_for(&g, t, CStep::new(3), FuIndex::new(1), 1));
    }

    #[test]
    fn multicycle_occupies_consecutive_cells() {
        let (g, t, _, u) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 1);
        grid.occupy(t, CStep::new(2), FuIndex::new(1), 2);
        assert!(!grid.is_free_for(&g, u, CStep::new(2), FuIndex::new(1), 1));
        assert!(!grid.is_free_for(&g, u, CStep::new(3), FuIndex::new(1), 1));
        assert!(grid.is_free_for(&g, u, CStep::new(1), FuIndex::new(1), 1));
        assert!(grid.is_free_for(&g, u, CStep::new(4), FuIndex::new(1), 1));
    }

    #[test]
    fn vacate_restores_the_cell() {
        let (g, t, _, u) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 1);
        grid.occupy(t, CStep::new(1), FuIndex::new(1), 1);
        assert_eq!(grid.vacate(t), Some((CStep::new(1), FuIndex::new(1))));
        assert!(grid.is_free_for(&g, u, CStep::new(1), FuIndex::new(1), 1));
        assert_eq!(grid.vacate(t), None);
        assert_eq!(grid.placed_count(), 0);
    }

    #[test]
    fn latency_wrap_detects_modulo_conflicts() {
        let (g, t, _, u) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 6, 1).with_latency(2);
        grid.occupy(t, CStep::new(1), FuIndex::new(1), 1);
        // Steps 3 and 5 collide with step 1 modulo L=2.
        assert!(!grid.is_free_for(&g, u, CStep::new(3), FuIndex::new(1), 1));
        assert!(!grid.is_free_for(&g, u, CStep::new(5), FuIndex::new(1), 1));
        assert!(grid.is_free_for(&g, u, CStep::new(2), FuIndex::new(1), 1));
    }

    #[test]
    fn columns_used_tracks_peak() {
        let (_, t, e, u) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 3);
        assert_eq!(grid.columns_used(), 0);
        grid.occupy(t, CStep::new(1), FuIndex::new(1), 1);
        grid.occupy(u, CStep::new(1), FuIndex::new(3), 1);
        grid.occupy(e, CStep::new(2), FuIndex::new(2), 1);
        assert_eq!(grid.columns_used(), 3);
        assert_eq!(grid.placed_count(), 3);
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_placement_panics() {
        let (_, t, _, _) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 1);
        grid.occupy(t, CStep::new(1), FuIndex::new(1), 1);
        grid.occupy(t, CStep::new(2), FuIndex::new(1), 1);
    }

    #[test]
    fn grow_max_fu_never_shrinks() {
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 2);
        grid.grow_max_fu(5);
        assert_eq!(grid.max_fu(), 5);
        grid.grow_max_fu(3);
        assert_eq!(grid.max_fu(), 5);
    }
}
