//! The paper's 2-D placement table (control steps × FU index), one per
//! functional-unit class.

use std::collections::BTreeMap;

use hls_dfg::{Dfg, FuClass, NodeId};

use crate::{CStep, FuIndex};

/// Occupant record of one grid cell.
///
/// Almost every occupied cell holds exactly one operation; only cells
/// shared under mutual exclusion (paper §5.1) spill into the side map,
/// so the dense per-cell storage stays one word wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellOcc {
    Empty,
    One(NodeId),
    /// Two or more occupants — the list lives in [`Grid::shared`].
    Shared,
}

/// Occupancy table for one FU class: the "grid table" of Figure 1, where
/// an operation occupies `(FU index, control step)` cells.
///
/// The grid optionally wraps control steps modulo a functional-pipelining
/// latency `L`: "for a given latency L, the operations scheduled into
/// control step `t + k·L` run concurrently" (paper §5.5.2), so occupancy
/// conflicts are evaluated on `(step − 1) mod L`.
///
/// Mutual exclusion is honoured: a cell may hold several operations as
/// long as they are pairwise mutually exclusive (paper §5.1).
///
/// # Representation
///
/// Occupancy is a flat, column-major bitset (`wpc` words per column, one
/// bit per `(step, fu)` cell), so the hot [`Grid::is_free_for`] probe is
/// a bounds check plus a mask test. Occupant identity lives in a dense
/// one-word-per-cell side table, with a `BTreeMap` only for the rare
/// mutually-exclusive shared cells. Columns are materialised on first
/// touch, so a grid whose `max_fu` budget later grows (local
/// rescheduling) never reallocates more than it uses.
#[derive(Debug, Clone)]
pub struct Grid {
    class: FuClass,
    cs: u32,
    max_fu: u32,
    latency: Option<u32>,
    /// Height of the wrap space: `latency.unwrap_or(cs)` rows.
    rows: u32,
    /// Occupancy words per column.
    wpc: usize,
    /// Materialised columns (`≤ max_fu`).
    cols: u32,
    /// `cols × wpc` occupancy words; a set bit means "≥ 1 occupant".
    occ: Vec<u64>,
    /// `cols × rows` occupant records.
    cell: Vec<CellOcc>,
    /// Occupant lists of mutually-exclusive shared cells, keyed by
    /// `(wrapped row, fu)` in occupancy order.
    shared: BTreeMap<(u32, u32), Vec<NodeId>>,
    /// `NodeId`-indexed placements (grown on demand).
    placements: Vec<Option<(CStep, FuIndex, u8)>>,
    placed: usize,
    /// Placements per materialised column, for the high-water mark.
    col_counts: Vec<u32>,
    /// Highest column currently in use (maintained, not scanned).
    hwm: u32,
}

impl Grid {
    /// An empty grid for `class` with `cs` steps and at most `max_fu`
    /// unit columns.
    ///
    /// # Panics
    ///
    /// Panics if `cs` or `max_fu` is zero.
    pub fn new(class: FuClass, cs: u32, max_fu: u32) -> Self {
        assert!(cs >= 1 && max_fu >= 1, "grid dimensions are 1-based");
        Grid {
            class,
            cs,
            max_fu,
            latency: None,
            rows: cs,
            wpc: (cs as usize).div_ceil(64),
            cols: 0,
            occ: Vec::new(),
            cell: Vec::new(),
            shared: BTreeMap::new(),
            placements: Vec::new(),
            placed: 0,
            col_counts: Vec::new(),
            hwm: 0,
        }
    }

    /// Enables modulo-`latency` occupancy for functional pipelining.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn with_latency(mut self, latency: u32) -> Self {
        assert!(latency >= 1, "latency must be positive");
        debug_assert!(self.placed == 0, "latency is fixed before placement");
        self.latency = Some(latency);
        self.rows = latency;
        self.wpc = (latency as usize).div_ceil(64);
        self
    }

    /// The FU class this grid belongs to.
    pub fn class(&self) -> FuClass {
        self.class
    }

    /// Number of control steps.
    pub fn control_steps(&self) -> u32 {
        self.cs
    }

    /// Column budget (`max_j`).
    pub fn max_fu(&self) -> u32 {
        self.max_fu
    }

    /// Raises the column budget (local rescheduling may discover that
    /// the initial `max_j` estimate was too small when it was derived
    /// from ASAP/ALAP concurrency rather than a user constraint).
    pub fn grow_max_fu(&mut self, max_fu: u32) {
        self.max_fu = self.max_fu.max(max_fu);
    }

    /// 0-based wrapped row of a 1-based step.
    fn row(&self, step: u32) -> u32 {
        match self.latency {
            Some(l) => (step - 1) % l,
            None => step - 1,
        }
    }

    /// Materialises storage up to column `col` (0-based).
    fn ensure_col(&mut self, col: u32) {
        if col >= self.cols {
            let cols = col + 1;
            self.occ.resize(cols as usize * self.wpc, 0);
            self.cell
                .resize(cols as usize * self.rows as usize, CellOcc::Empty);
            self.col_counts.resize(cols as usize, 0);
            self.cols = cols;
        }
    }

    /// Occupants of the cell `(step, fu)` (after wrap-around).
    pub fn occupants(&self, step: CStep, fu: FuIndex) -> &[NodeId] {
        let col = fu.get() - 1;
        if col >= self.cols {
            return &[];
        }
        let row = self.row(step.get());
        match &self.cell[(col * self.rows + row) as usize] {
            CellOcc::Empty => &[],
            CellOcc::One(node) => std::slice::from_ref(node),
            CellOcc::Shared => &self.shared[&(row + 1, fu.get())],
        }
    }

    /// Whether any cell in the `cycles`-step span starting at `step` on
    /// column `col` (0-based, materialised) is occupied.
    fn span_occupied(&self, col: u32, step: CStep, cycles: u8) -> bool {
        let base = col as usize * self.wpc;
        if self.latency.is_none() {
            // Contiguous rows: test whole words of the column bitset.
            let mut r = (step.get() - 1) as usize;
            let end = r + cycles as usize;
            while r < end {
                let span = (64 - r % 64).min(end - r);
                let mask = (!0u64 >> (64 - span)) << (r % 64);
                if self.occ[base + r / 64] & mask != 0 {
                    return true;
                }
                r += span;
            }
            false
        } else {
            (0..cycles as u32).any(|c| {
                let r = self.row(step.get() + c) as usize;
                self.occ[base + r / 64] >> (r % 64) & 1 == 1
            })
        }
    }

    /// Whether `node` (occupying `cycles` steps from `step` on column
    /// `fu`) can be placed: all its cells are inside the grid and every
    /// current occupant is mutually exclusive with it.
    pub fn is_free_for(
        &self,
        dfg: &Dfg,
        node: NodeId,
        step: CStep,
        fu: FuIndex,
        cycles: u8,
    ) -> bool {
        if fu.get() > self.max_fu {
            return false;
        }
        if step.finish(cycles).get() > self.cs {
            return false;
        }
        let col = fu.get() - 1;
        if col >= self.cols || !self.span_occupied(col, step, cycles) {
            return true;
        }
        // Something is there. A node that excludes nothing can never
        // share a cell, so only branched nodes walk the occupant lists.
        if !dfg.has_exclusions(node) {
            return false;
        }
        for c in 0..cycles as u32 {
            for &occ in self.occupants(step.offset(c), fu) {
                if !dfg.mutually_exclusive(node, occ) {
                    return false;
                }
            }
        }
        true
    }

    /// Places `node` at `(step, fu)` for `cycles` steps.
    ///
    /// # Panics
    ///
    /// Panics if the node is already placed or the cells are outside the
    /// grid — schedulers check [`Grid::is_free_for`] first, so either is
    /// a scheduler bug.
    pub fn occupy(&mut self, node: NodeId, step: CStep, fu: FuIndex, cycles: u8) {
        if node.index() >= self.placements.len() {
            self.placements.resize(node.index() + 1, None);
        }
        assert!(
            self.placements[node.index()].is_none(),
            "node {node} is already placed"
        );
        assert!(fu.get() <= self.max_fu, "column {fu} beyond max_fu");
        assert!(
            step.finish(cycles).get() <= self.cs,
            "placement overruns the time constraint"
        );
        let col = fu.get() - 1;
        self.ensure_col(col);
        for c in 0..cycles as u32 {
            let row = self.row(step.get() + c);
            self.occ[col as usize * self.wpc + row as usize / 64] |= 1 << (row % 64);
            let cell = &mut self.cell[(col * self.rows + row) as usize];
            match *cell {
                CellOcc::Empty => *cell = CellOcc::One(node),
                CellOcc::One(first) => {
                    *cell = CellOcc::Shared;
                    self.shared.insert((row + 1, fu.get()), vec![first, node]);
                }
                CellOcc::Shared => {
                    self.shared
                        .get_mut(&(row + 1, fu.get()))
                        .expect("shared cell has a list")
                        .push(node);
                }
            }
        }
        self.placements[node.index()] = Some((step, fu, cycles));
        self.placed += 1;
        self.col_counts[col as usize] += 1;
        self.hwm = self.hwm.max(fu.get());
    }

    /// Removes `node`'s placement (local rescheduling). Returns the old
    /// `(step, fu)` if it was placed.
    ///
    /// Cell and column state is fully reclaimed: no empty occupant lists
    /// linger and the high-water mark drops with the vacated column.
    pub fn vacate(&mut self, node: NodeId) -> Option<(CStep, FuIndex)> {
        let (step, fu, cycles) = self.placements.get_mut(node.index())?.take()?;
        let col = fu.get() - 1;
        for c in 0..cycles as u32 {
            let row = self.row(step.get() + c);
            let cell = &mut self.cell[(col * self.rows + row) as usize];
            match *cell {
                // Already cleared: a multi-cycle op whose span wraps
                // around a short latency touches the same row twice.
                CellOcc::Empty => {}
                CellOcc::One(n) => {
                    debug_assert_eq!(n, node, "cell occupant matches placement");
                    *cell = CellOcc::Empty;
                    self.occ[col as usize * self.wpc + row as usize / 64] &= !(1 << (row % 64));
                }
                CellOcc::Shared => {
                    let key = (row + 1, fu.get());
                    let list = self.shared.get_mut(&key).expect("shared cell has a list");
                    list.retain(|&n| n != node);
                    match list.len() {
                        0 => {
                            self.shared.remove(&key);
                            *cell = CellOcc::Empty;
                            self.occ[col as usize * self.wpc + row as usize / 64] &=
                                !(1 << (row % 64));
                        }
                        1 => {
                            *cell = CellOcc::One(list[0]);
                            self.shared.remove(&key);
                        }
                        _ => {}
                    }
                }
            }
        }
        self.placed -= 1;
        self.col_counts[col as usize] -= 1;
        while self.hwm > 0 && self.col_counts[self.hwm as usize - 1] == 0 {
            self.hwm -= 1;
        }
        Some((step, fu))
    }

    /// The placement of `node`, if any.
    pub fn placement(&self, node: NodeId) -> Option<(CStep, FuIndex)> {
        self.placements
            .get(node.index())
            .and_then(|p| p.map(|(s, f, _)| (s, f)))
    }

    /// Number of placed nodes.
    pub fn placed_count(&self) -> usize {
        self.placed
    }

    /// Highest column index in use (the FU count this grid implies) —
    /// O(1), maintained on occupy/vacate.
    pub fn columns_used(&self) -> u32 {
        self.hwm
    }

    /// Iterates over placements `(node, step, fu)` in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, CStep, FuIndex)> + '_ {
        self.placements
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|(s, f, _)| (NodeId::from_index(i), s, f)))
    }
}

/// Equality compares the logical content (dimensions and placements),
/// not the lazily-materialised storage.
impl PartialEq for Grid {
    fn eq(&self, other: &Self) -> bool {
        self.class == other.class
            && self.cs == other.cs
            && self.max_fu == other.max_fu
            && self.latency == other.latency
            && self.placed == other.placed
            && self.iter().eq(other.iter())
    }
}

impl Eq for Grid {}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;
    use proptest::prelude::*;

    /// The original `BTreeMap`-backed grid, kept verbatim as a
    /// differential-testing oracle for the dense implementation.
    struct ReferenceGrid {
        cs: u32,
        max_fu: u32,
        latency: Option<u32>,
        cells: BTreeMap<(u32, u32), Vec<NodeId>>,
        placements: BTreeMap<NodeId, (CStep, FuIndex, u8)>,
    }

    impl ReferenceGrid {
        fn new(cs: u32, max_fu: u32) -> Self {
            ReferenceGrid {
                cs,
                max_fu,
                latency: None,
                cells: BTreeMap::new(),
                placements: BTreeMap::new(),
            }
        }

        fn with_latency(mut self, latency: u32) -> Self {
            self.latency = Some(latency);
            self
        }

        fn wrap(&self, step: u32) -> u32 {
            match self.latency {
                Some(l) => (step - 1) % l + 1,
                None => step,
            }
        }

        fn occupants(&self, step: CStep, fu: FuIndex) -> &[NodeId] {
            self.cells
                .get(&(self.wrap(step.get()), fu.get()))
                .map(Vec::as_slice)
                .unwrap_or(&[])
        }

        fn is_free_for(
            &self,
            dfg: &Dfg,
            node: NodeId,
            step: CStep,
            fu: FuIndex,
            cycles: u8,
        ) -> bool {
            if fu.get() > self.max_fu || step.finish(cycles).get() > self.cs {
                return false;
            }
            for c in 0..cycles as u32 {
                for &occ in self.occupants(step.offset(c), fu) {
                    if !dfg.mutually_exclusive(node, occ) {
                        return false;
                    }
                }
            }
            true
        }

        fn occupy(&mut self, node: NodeId, step: CStep, fu: FuIndex, cycles: u8) {
            for c in 0..cycles as u32 {
                self.cells
                    .entry((self.wrap(step.offset(c).get()), fu.get()))
                    .or_default()
                    .push(node);
            }
            self.placements.insert(node, (step, fu, cycles));
        }

        fn vacate(&mut self, node: NodeId) -> Option<(CStep, FuIndex)> {
            let (step, fu, cycles) = self.placements.remove(&node)?;
            for c in 0..cycles as u32 {
                if let Some(cell) = self
                    .cells
                    .get_mut(&(self.wrap(step.offset(c).get()), fu.get()))
                {
                    cell.retain(|&n| n != node);
                }
            }
            Some((step, fu))
        }

        fn columns_used(&self) -> u32 {
            self.placements
                .values()
                .map(|&(_, f, _)| f.get())
                .max()
                .unwrap_or(0)
        }
    }

    fn exclusive_pair() -> (Dfg, NodeId, NodeId, NodeId) {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let branch = b.begin_branch();
        b.enter_arm(branch, 0);
        b.op("t", OpKind::Add, &[x, y]).unwrap();
        b.exit_arm();
        b.enter_arm(branch, 1);
        b.op("e", OpKind::Add, &[x, y]).unwrap();
        b.exit_arm();
        b.op("u", OpKind::Add, &[x, y]).unwrap();
        let g = b.finish().unwrap();
        let t = g.node_by_name("t").unwrap();
        let e = g.node_by_name("e").unwrap();
        let u = g.node_by_name("u").unwrap();
        (g, t, e, u)
    }

    #[test]
    fn occupied_cell_blocks_non_exclusive_ops() {
        let (g, t, e, u) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 2);
        grid.occupy(t, CStep::new(1), FuIndex::new(1), 1);
        // Mutually exclusive `e` can share the cell; unrelated `u` cannot.
        assert!(grid.is_free_for(&g, e, CStep::new(1), FuIndex::new(1), 1));
        assert!(!grid.is_free_for(&g, u, CStep::new(1), FuIndex::new(1), 1));
        assert!(grid.is_free_for(&g, u, CStep::new(1), FuIndex::new(2), 1));
        grid.occupy(e, CStep::new(1), FuIndex::new(1), 1);
        assert_eq!(grid.occupants(CStep::new(1), FuIndex::new(1)).len(), 2);
    }

    #[test]
    fn bounds_are_enforced() {
        let (g, t, _, _) = exclusive_pair();
        let grid = Grid::new(FuClass::Op(OpKind::Add), 3, 2);
        assert!(!grid.is_free_for(&g, t, CStep::new(1), FuIndex::new(3), 1));
        assert!(!grid.is_free_for(&g, t, CStep::new(3), FuIndex::new(1), 2));
        assert!(grid.is_free_for(&g, t, CStep::new(3), FuIndex::new(1), 1));
    }

    #[test]
    fn multicycle_occupies_consecutive_cells() {
        let (g, t, _, u) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 1);
        grid.occupy(t, CStep::new(2), FuIndex::new(1), 2);
        assert!(!grid.is_free_for(&g, u, CStep::new(2), FuIndex::new(1), 1));
        assert!(!grid.is_free_for(&g, u, CStep::new(3), FuIndex::new(1), 1));
        assert!(grid.is_free_for(&g, u, CStep::new(1), FuIndex::new(1), 1));
        assert!(grid.is_free_for(&g, u, CStep::new(4), FuIndex::new(1), 1));
    }

    #[test]
    fn vacate_restores_the_cell() {
        let (g, t, _, u) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 1);
        grid.occupy(t, CStep::new(1), FuIndex::new(1), 1);
        assert_eq!(grid.vacate(t), Some((CStep::new(1), FuIndex::new(1))));
        assert!(grid.is_free_for(&g, u, CStep::new(1), FuIndex::new(1), 1));
        assert_eq!(grid.vacate(t), None);
        assert_eq!(grid.placed_count(), 0);
    }

    #[test]
    fn vacate_reclaims_shared_cells() {
        let (g, t, e, u) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 1);
        grid.occupy(t, CStep::new(1), FuIndex::new(1), 1);
        grid.occupy(e, CStep::new(1), FuIndex::new(1), 1);
        assert!(
            grid.shared.len() == 1,
            "two occupants spill to the side map"
        );
        grid.vacate(t);
        assert!(
            grid.shared.is_empty(),
            "single occupant returns to dense storage"
        );
        assert_eq!(grid.occupants(CStep::new(1), FuIndex::new(1)), &[e]);
        grid.vacate(e);
        assert!(grid.is_free_for(&g, u, CStep::new(1), FuIndex::new(1), 1));
        assert!(
            grid.cell.iter().all(|c| *c == CellOcc::Empty),
            "no lingering cells"
        );
    }

    #[test]
    fn latency_wrap_detects_modulo_conflicts() {
        let (g, t, _, u) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 6, 1).with_latency(2);
        grid.occupy(t, CStep::new(1), FuIndex::new(1), 1);
        // Steps 3 and 5 collide with step 1 modulo L=2.
        assert!(!grid.is_free_for(&g, u, CStep::new(3), FuIndex::new(1), 1));
        assert!(!grid.is_free_for(&g, u, CStep::new(5), FuIndex::new(1), 1));
        assert!(grid.is_free_for(&g, u, CStep::new(2), FuIndex::new(1), 1));
    }

    #[test]
    fn columns_used_tracks_peak() {
        let (_, t, e, u) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 3);
        assert_eq!(grid.columns_used(), 0);
        grid.occupy(t, CStep::new(1), FuIndex::new(1), 1);
        grid.occupy(u, CStep::new(1), FuIndex::new(3), 1);
        grid.occupy(e, CStep::new(2), FuIndex::new(2), 1);
        assert_eq!(grid.columns_used(), 3);
        assert_eq!(grid.placed_count(), 3);
    }

    #[test]
    fn columns_used_drops_after_vacating_the_peak() {
        let (_, t, e, u) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 3);
        grid.occupy(t, CStep::new(1), FuIndex::new(1), 1);
        grid.occupy(u, CStep::new(1), FuIndex::new(3), 1);
        grid.occupy(e, CStep::new(2), FuIndex::new(2), 1);
        grid.vacate(u);
        assert_eq!(grid.columns_used(), 2);
        grid.vacate(e);
        assert_eq!(grid.columns_used(), 1);
        grid.vacate(t);
        assert_eq!(grid.columns_used(), 0);
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_placement_panics() {
        let (_, t, _, _) = exclusive_pair();
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 1);
        grid.occupy(t, CStep::new(1), FuIndex::new(1), 1);
        grid.occupy(t, CStep::new(2), FuIndex::new(1), 1);
    }

    #[test]
    fn grow_max_fu_never_shrinks() {
        let mut grid = Grid::new(FuClass::Op(OpKind::Add), 4, 2);
        grid.grow_max_fu(5);
        assert_eq!(grid.max_fu(), 5);
        grid.grow_max_fu(3);
        assert_eq!(grid.max_fu(), 5);
    }

    /// A graph of `n` adds where nodes in the same arm-pair layer are
    /// mutually exclusive — rich enough to exercise shared cells.
    fn branchy_graph(n: usize) -> (Dfg, Vec<NodeId>) {
        let mut b = DfgBuilder::new("branchy");
        let x = b.input("x");
        let y = b.input("y");
        let mut names = Vec::new();
        let mut i = 0;
        while i < n {
            if n - i >= 2 && i % 3 == 0 {
                let branch = b.begin_branch();
                b.enter_arm(branch, 0);
                b.op(&format!("a{i}"), OpKind::Add, &[x, y]).unwrap();
                b.exit_arm();
                b.enter_arm(branch, 1);
                b.op(&format!("b{i}"), OpKind::Add, &[x, y]).unwrap();
                b.exit_arm();
                names.push(format!("a{i}"));
                names.push(format!("b{i}"));
                i += 2;
            } else {
                b.op(&format!("u{i}"), OpKind::Add, &[x, y]).unwrap();
                names.push(format!("u{i}"));
                i += 1;
            }
        }
        let g = b.finish().unwrap();
        let ids = names.iter().map(|s| g.node_by_name(s).unwrap()).collect();
        (g, ids)
    }

    proptest! {
        /// Differential test: random occupy/vacate/probe sequences give
        /// identical answers from the dense grid and the reference.
        #[test]
        fn dense_grid_matches_reference(
            ops in proptest::collection::vec((0usize..12, 1u32..9, 1u32..5, 1u8..3, 0u8..3), 1..60),
            latency in 0u32..4,
        ) {
            let (g, nodes) = branchy_graph(12);
            let cs = 8;
            let max_fu = 4;
            let (mut dense, mut reference) = if latency > 0 {
                (
                    Grid::new(FuClass::Op(OpKind::Add), cs, max_fu).with_latency(latency),
                    ReferenceGrid::new(cs, max_fu).with_latency(latency),
                )
            } else {
                (
                    Grid::new(FuClass::Op(OpKind::Add), cs, max_fu),
                    ReferenceGrid::new(cs, max_fu),
                )
            };
            for &(ni, step, fu, cycles, action) in &ops {
                let node = nodes[ni];
                let (step, fu) = (CStep::new(step), FuIndex::new(fu));
                match action {
                    // Probe.
                    0 => prop_assert_eq!(
                        dense.is_free_for(&g, node, step, fu, cycles),
                        reference.is_free_for(&g, node, step, fu, cycles)
                    ),
                    // Occupy (when legal in the reference semantics).
                    1 => {
                        if dense.placement(node).is_none()
                            && reference.is_free_for(&g, node, step, fu, cycles)
                        {
                            dense.occupy(node, step, fu, cycles);
                            reference.occupy(node, step, fu, cycles);
                        }
                    }
                    // Vacate.
                    _ => {
                        let got = dense.vacate(node);
                        prop_assert_eq!(got, reference.vacate(node));
                    }
                }
                prop_assert_eq!(dense.columns_used(), reference.columns_used());
                prop_assert_eq!(dense.placed_count(), reference.placements.len());
                for s in 1..=cs {
                    for f in 1..=max_fu {
                        prop_assert_eq!(
                            dense.occupants(CStep::new(s), FuIndex::new(f)),
                            reference.occupants(CStep::new(s), FuIndex::new(f)),
                            "occupants diverge at ({}, {})", s, f
                        );
                    }
                }
            }
        }
    }
}
