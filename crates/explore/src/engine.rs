//! The exploration engine: fan a grid of design points over a worker
//! pool, memoize through the content-addressed cache, merge telemetry,
//! and reduce to a Pareto front.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

use hls_celllib::{ClockPeriod, Library, TimingSpec};
use hls_dfg::{Dfg, FuClass};
use hls_schedule::{CStep, Schedule, ScheduleStats, TimeFrames};
use hls_telemetry::{Instrument, Metrics, NullSink};
use moveframe::mfs::{self, MfsConfig};
use moveframe::mfsa::{self, DesignStyle, MfsaConfig, Weights};
use moveframe::pipeline::{pipelined_fu_counts, schedule_structural};
use moveframe::CancelToken;

use crate::cache::{ExploreCache, Tier};
use crate::fingerprint::dfg_fingerprint;
use crate::pareto::{pareto_front, FrontEntry};
use crate::point::{Algorithm, DesignPoint};
use crate::pool::{default_threads, run_indexed};

/// MFSA-specific detail of a scheduled point (Table-2 columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MfsaDetail {
    /// The allocated ALU set in the paper's notation (e.g. `2(+-*),(+)`).
    pub alus: String,
    /// Total data-path cost in µm² (ALUs + registers + muxes).
    pub total_cost: u64,
    /// Real multiplexer count.
    pub mux: usize,
    /// Total multiplexer inputs.
    pub muxin: usize,
}

/// The distilled, cacheable result of one scheduled design point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointMetrics {
    /// Control steps actually used (last finish step).
    pub csteps: u32,
    /// The FU mix (paper notation) or, for MFSA, the ALU signature.
    pub mix: String,
    /// Functional-unit area in µm² (MFSA: ALU area).
    pub fu_cost: u64,
    /// Registers: peak simultaneously live values (MFSA: data-path
    /// register file — identical by the shared lifetime definition).
    pub registers: usize,
    /// Local reschedulings (MFS) — 0 for the other algorithms.
    pub reschedules: u32,
    /// Per-bank port pressure (memory-aware designs; empty otherwise).
    pub mem: Vec<BankPressure>,
    /// Present only for MFSA points.
    pub mfsa: Option<MfsaDetail>,
}

/// Per-bank port pressure of one scheduled point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankPressure {
    /// The bank's name.
    pub bank: String,
    /// Declared port count.
    pub ports: u32,
    /// Peak simultaneous per-step access demand over the schedule.
    pub peak: u32,
}

/// Per-bank pressure of a schedule (empty for pure operator graphs;
/// also empty — rather than failing the point — if the bindings are
/// not analysable, which the schedulers rule out by construction).
fn mem_pressure(dfg: &Dfg, schedule: &Schedule) -> Vec<BankPressure> {
    match hls_mem::port_pressure(dfg, schedule) {
        Ok(p) => dfg
            .memory()
            .banks()
            .iter()
            .map(|b| BankPressure {
                bank: b.name().to_string(),
                ports: b.ports(),
                peak: p.peak(b.id()),
            })
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// The outcome of one grid point.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Position in the input grid.
    pub index: usize,
    /// Display label.
    pub label: String,
    /// The algorithm that ran.
    pub algorithm: Algorithm,
    /// Metrics, or the scheduling error rendered as a string.
    pub outcome: Result<PointMetrics, String>,
    /// Wall time of this lookup in ns (0-ish for cache hits;
    /// **nondeterministic** — never part of committed artifacts).
    pub wall_ns: u64,
}

/// Options for one [`Engine::explore`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreOptions {
    /// Worker threads; 0 means [`default_threads`].
    pub threads: usize,
}

/// The full report of one exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Per-point results, in grid order.
    pub results: Vec<PointResult>,
    /// The Pareto front (see [`pareto_front`]).
    pub front: Vec<FrontEntry>,
    /// Telemetry merged across all workers.
    pub metrics: Metrics,
    /// Worker threads used.
    pub threads: usize,
    /// Wall time of the whole exploration in ns (nondeterministic).
    pub wall_ns: u64,
}

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl ExploreReport {
    /// The Pareto front as JSON — a **pure function of the grid and the
    /// DFG**: identical bytes for any thread count and any cache state.
    /// Wall times and cache hit flags are deliberately excluded.
    pub fn front_json(&self) -> String {
        let errors = self.results.iter().filter(|r| r.outcome.is_err()).count();
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"points\":{},\"errors\":{},\"front\":[",
            self.results.len(),
            errors
        );
        for (i, e) in self.front.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"label\":\"");
            escape_json_into(&mut s, &e.label);
            let _ = write!(
                s,
                "\",\"algorithm\":\"{}\",\"csteps\":{},\"fu_cost\":{},\"registers\":{}}}",
                e.algorithm, e.objectives.csteps, e.objectives.fu_cost, e.objectives.registers
            );
        }
        s.push_str("]}");
        s
    }

    /// A human-readable summary table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "explored {} point(s) on {} thread(s) in {:.2} ms",
            self.results.len(),
            self.threads,
            self.wall_ns as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "{:<40} {:>7} {:>10} {:>5}  mix",
            "point", "csteps", "fu_cost", "regs"
        );
        for r in &self.results {
            match &r.outcome {
                Ok(m) => {
                    let _ = writeln!(
                        out,
                        "{:<40} {:>7} {:>10} {:>5}  {}",
                        r.label, m.csteps, m.fu_cost, m.registers, m.mix
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "{:<40} <{e}>", r.label);
                }
            }
        }
        let _ = writeln!(out, "pareto front ({} point(s)):", self.front.len());
        for e in &self.front {
            let _ = writeln!(
                out,
                "  {:<38} csteps={} fu_cost={} registers={}",
                e.label, e.objectives.csteps, e.objectives.fu_cost, e.objectives.registers
            );
        }
        out
    }
}

/// A reusable exploration engine: holds the cache across
/// [`Engine::explore`] calls, so repeated queries (interactive sweeps,
/// the bench tables) are memoized.
#[derive(Debug, Default)]
pub struct Engine {
    cache: ExploreCache,
}

impl Engine {
    /// An engine with an empty cache at the default caps.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// An engine whose cache holds at most `frames_cap` frame entries
    /// and `results_cap` result entries (LRU-evicted past that).
    pub fn with_caps(frames_cap: usize, results_cap: usize) -> Engine {
        Engine {
            cache: ExploreCache::with_caps(frames_cap, results_cap),
        }
    }

    /// An engine whose result cache is additionally backed by the
    /// content-addressed on-disk tier rooted at `dir` (see
    /// [`ExploreCache::with_disk`]): a fresh engine over a populated
    /// directory serves previously-computed points without scheduling.
    pub fn with_disk(
        frames_cap: usize,
        results_cap: usize,
        dir: &std::path::Path,
    ) -> std::io::Result<Engine> {
        Ok(Engine {
            cache: ExploreCache::with_disk(frames_cap, results_cap, dir)?,
        })
    }

    /// Access to the cache (for tests and diagnostics).
    pub fn cache(&self) -> &ExploreCache {
        &self.cache
    }

    /// Schedules a single design point through the cache, cooperatively
    /// honouring `cancel`.
    ///
    /// Returns the metrics (or the scheduling error as a string) plus
    /// whether the answer came **warm** from the cache (true = cache
    /// hit, nothing recomputed). Cancellation hygiene: a result aborted
    /// by `cancel` is reported to this caller but *forgotten* by the
    /// cache, so a later identical request recomputes instead of
    /// inheriting the timeout; symmetrically, a stale cancelled entry
    /// found by a live (non-cancelled) request is discarded and retried
    /// once.
    pub fn schedule_point(
        &self,
        dfg: &Dfg,
        spec: &TimingSpec,
        point: &DesignPoint,
        cancel: &CancelToken,
        instr: &mut Instrument<'_>,
    ) -> (Result<PointMetrics, String>, bool) {
        self.schedule_point_fp(dfg_fingerprint(dfg, spec), dfg, spec, point, cancel, instr)
    }

    /// [`Engine::schedule_point`] with the DFG fingerprint supplied by
    /// the caller — the serving hot path computes it once per request
    /// and reuses it for both the warm probe and this fallback.
    pub fn schedule_point_fp(
        &self,
        dfg_fp: u64,
        dfg: &Dfg,
        spec: &TimingSpec,
        point: &DesignPoint,
        cancel: &CancelToken,
        instr: &mut Instrument<'_>,
    ) -> (Result<PointMetrics, String>, bool) {
        self.lookup_point(dfg_fp, dfg, spec, point, shared_library(), cancel, instr)
    }

    /// A non-computing probe of the memory result tier for
    /// `(dfg_fp, point)`: `Some` iff a populated, non-cancelled entry
    /// is resident. Never blocks on compute or disk, so an event loop
    /// may call it inline; a `None` must fall back to
    /// [`Engine::schedule_point_fp`] on a worker.
    pub fn peek_point(
        &self,
        dfg_fp: u64,
        point: &DesignPoint,
    ) -> Option<Result<PointMetrics, String>> {
        self.cache.peek_result(dfg_fp, point.fingerprint())
    }

    /// The shared cache-lookup path behind [`Engine::schedule_point`]
    /// and each [`Engine::explore`] grid point.
    #[allow(clippy::too_many_arguments)]
    fn lookup_point(
        &self,
        dfg_fp: u64,
        dfg: &Dfg,
        spec: &TimingSpec,
        point: &DesignPoint,
        library: &Library,
        cancel: &CancelToken,
        instr: &mut Instrument<'_>,
    ) -> (Result<PointMetrics, String>, bool) {
        // Shared ASAP/ALAP frames (not applicable to structural
        // pipelining, which stage-expands the graph first).
        let frames = if point.pipeline_ops.is_empty() {
            let clock = point.clock.map(ClockPeriod::new);
            let (frames, computed) = self.cache.frames(dfg_fp, dfg, spec, point.cs, clock);
            if computed {
                instr.inc("explore.frames.computed", 1);
            } else {
                instr.inc("explore.frames.reused", 1);
            }
            frames.ok()
        } else {
            None
        };

        let point_fp = point.fingerprint();
        let (mut outcome, mut tier) = self.cache.result(dfg_fp, point_fp, || {
            run_point(dfg, spec, point, library, frames.clone(), cancel, instr)
        });
        // Cancelled results never reach the disk tier, so the hygiene
        // below only ever concerns freshly computed or memory-cached
        // entries.
        if is_cancelled(&outcome) {
            if tier == Tier::Cold {
                // Our own deadline fired mid-compute: hand the error to
                // this caller, but do not let it poison the key.
                self.cache.forget(dfg_fp, point_fp);
            } else if !cancel.is_cancelled() {
                // A racing request's cancellation got cached before we
                // arrived; this request is live, so recompute.
                self.cache.forget(dfg_fp, point_fp);
                (outcome, tier) = self.cache.result(dfg_fp, point_fp, || {
                    run_point(dfg, spec, point, library, frames, cancel, instr)
                });
                if tier == Tier::Cold && is_cancelled(&outcome) {
                    self.cache.forget(dfg_fp, point_fp);
                }
            }
        }
        instr.inc(
            match tier {
                Tier::Hot => "explore.cache.hit",
                Tier::Warm => "explore.cache.disk_hit",
                Tier::Cold => "explore.cache.miss",
            },
            1,
        );
        (outcome, tier != Tier::Cold)
    }

    /// Explores `points` on `dfg` under `spec` and reduces to a Pareto
    /// front.
    ///
    /// Determinism guarantee: `results`, `front` and [`ExploreReport::
    /// front_json`] are bit-identical for any `threads` value and any
    /// prior cache state; merged telemetry counters are identical too
    /// (exactly-once computation), only `*.ns` histograms and `wall_ns`
    /// vary.
    pub fn explore(
        &self,
        dfg: &Dfg,
        spec: &TimingSpec,
        points: &[DesignPoint],
        opts: ExploreOptions,
    ) -> ExploreReport {
        let start = Instant::now();
        let threads = if opts.threads == 0 {
            default_threads()
        } else {
            opts.threads
        };
        let dfg_fp = dfg_fingerprint(dfg, spec);
        let library = shared_library();
        let evictions_before =
            self.cache.frames_stats().evictions + self.cache.results_stats().evictions;

        let per_point = run_indexed(points.len(), threads, |i| {
            let point = &points[i];
            let job_start = Instant::now();
            let mut sink = NullSink;
            let mut metrics = Metrics::new();
            let mut instr = Instrument::new(&mut sink, &mut metrics);
            instr.inc("explore.points", 1);

            let (outcome, _warm) = self.lookup_point(
                dfg_fp,
                dfg,
                spec,
                point,
                library,
                &CancelToken::never(),
                &mut instr,
            );
            if outcome.is_err() {
                instr.inc("explore.errors", 1);
            }
            let wall_ns = job_start.elapsed().as_nanos() as u64;
            instr.observe("explore.point.wall_ns", wall_ns);
            (
                PointResult {
                    index: i,
                    label: point.display_label(),
                    algorithm: point.algorithm,
                    outcome,
                    wall_ns,
                },
                metrics,
            )
        });

        let mut merged = Metrics::new();
        let mut results = Vec::with_capacity(per_point.len());
        for (result, metrics) in per_point {
            merged.merge(&metrics);
            results.push(result);
        }
        let evicted = self.cache.frames_stats().evictions + self.cache.results_stats().evictions
            - evictions_before;
        if evicted > 0 {
            merged.inc("explore.cache.evict", evicted);
        }
        let front = pareto_front(&results);
        ExploreReport {
            results,
            front,
            metrics: merged,
            threads,
            wall_ns: start.elapsed().as_nanos() as u64,
        }
    }
}

/// One-shot exploration with a fresh cache.
pub fn explore(
    dfg: &Dfg,
    spec: &TimingSpec,
    points: &[DesignPoint],
    opts: ExploreOptions,
) -> ExploreReport {
    Engine::new().explore(dfg, spec, points, opts)
}

/// Last finish step over all scheduled nodes.
fn steps_used(dfg: &Dfg, schedule: &Schedule, spec: &TimingSpec) -> u32 {
    dfg.node_ids()
        .filter_map(|n| schedule.finish(n, dfg, spec))
        .map(CStep::get)
        .max()
        .unwrap_or(0)
}

/// Single-function-unit area of a mix, from the NCR-like library
/// (classes without a library cell — folded loops — cost a nominal
/// 1000 µm²).
fn mix_area(counts: &BTreeMap<FuClass, u32>, library: &Library) -> u64 {
    counts
        .iter()
        .map(|(class, &n)| {
            let unit = class
                .base_op()
                .and_then(|op| library.fu_area(op).ok())
                .map(|a| a.as_u64())
                .unwrap_or(1000);
            n as u64 * unit
        })
        .sum()
}

fn fu_point_metrics(
    dfg: &Dfg,
    spec: &TimingSpec,
    schedule: &Schedule,
    library: &Library,
    reschedules: u32,
) -> PointMetrics {
    let stats = ScheduleStats::compute(dfg, schedule, spec);
    let counts: BTreeMap<FuClass, u32> = schedule.fu_counts();
    PointMetrics {
        csteps: steps_used(dfg, schedule, spec),
        mix: stats.mix.to_string(),
        fu_cost: mix_area(&counts, library),
        registers: stats.registers,
        reschedules,
        mem: mem_pressure(dfg, schedule),
        mfsa: None,
    }
}

/// Whether an outcome is a cooperative-cancellation abort (matched by
/// the stable `"cancelled"` prefix of
/// [`moveframe::MoveFrameError::Cancelled`]'s display form).
/// The NCR-like library, constructed once per process: every engine
/// query prices against the same table, and the serving hot path
/// must not rebuild it per request.
fn shared_library() -> &'static Library {
    static LIBRARY: OnceLock<Library> = OnceLock::new();
    LIBRARY.get_or_init(Library::ncr_like)
}

fn is_cancelled(outcome: &Result<PointMetrics, String>) -> bool {
    outcome
        .as_ref()
        .err()
        .is_some_and(|e| e.starts_with("cancelled"))
}

/// The refinement config of a point with `iterate > 0`.
fn iterate_config(point: &DesignPoint) -> hls_iterate::IterateConfig {
    let mut config = hls_iterate::IterateConfig::new(point.iterate);
    config.clock = point.clock.map(ClockPeriod::new);
    config
}

/// Runs one design point. Pure with respect to the cache: the caller
/// memoizes the result.
fn run_point(
    dfg: &Dfg,
    spec: &TimingSpec,
    point: &DesignPoint,
    library: &Library,
    frames: Option<TimeFrames>,
    cancel: &CancelToken,
    instr: &mut Instrument<'_>,
) -> Result<PointMetrics, String> {
    if point.iterate > 0 {
        if point.latency.is_some() {
            return Err("iterate does not support functional pipelining (latency)".into());
        }
        if !point.pipeline_ops.is_empty() {
            return Err("iterate does not support structurally pipelined operators".into());
        }
    }
    match point.algorithm {
        Algorithm::Mfs => {
            let mut config = MfsConfig::time_constrained(point.cs).with_cancel(cancel.clone());
            for (&class, &limit) in &point.fu_limits {
                config = config.with_fu_limit(class, limit);
            }
            if let Some(clock) = point.clock {
                config = config.with_chaining(ClockPeriod::new(clock));
            }
            if let Some(l) = point.latency {
                config = config.with_latency(l);
            }
            if point.pipeline_ops.is_empty() {
                let outcome = mfs::schedule_traced_with_frames(dfg, spec, &config, frames, instr)
                    .map_err(|e| e.to_string())?;
                let mut schedule = outcome.schedule;
                if point.iterate > 0 {
                    let refined =
                        hls_iterate::refine(dfg, spec, &schedule, &iterate_config(point), instr)
                            .map_err(|e| e.to_string())?;
                    schedule = refined.schedule;
                }
                Ok(PointMetrics {
                    reschedules: outcome.reschedule_count,
                    ..fu_point_metrics(dfg, spec, &schedule, library, 0)
                })
            } else {
                // Structural pipelining stage-expands the graph; report
                // whole pipelined units (the paper's Table-1 numbers).
                let (expanded, _, outcome) =
                    schedule_structural(dfg, spec, &config, &point.pipeline_ops)
                        .map_err(|e| e.to_string())?;
                let stats = ScheduleStats::compute(&expanded, &outcome.schedule, spec);
                let folded = pipelined_fu_counts(&outcome);
                let mix: hls_dfg::OpMix = folded.iter().map(|(&c, &n)| (c, n as usize)).collect();
                Ok(PointMetrics {
                    csteps: steps_used(&expanded, &outcome.schedule, spec),
                    mix: mix.to_string(),
                    fu_cost: mix_area(&folded, library),
                    registers: stats.registers,
                    reschedules: outcome.reschedule_count,
                    mem: mem_pressure(&expanded, &outcome.schedule),
                    mfsa: None,
                })
            }
        }
        Algorithm::Mfsa => {
            let mut config = MfsaConfig::new(point.cs, library.clone())
                .with_cancel(cancel.clone())
                .with_style(if point.style == 2 {
                    DesignStyle::NoSelfLoop
                } else {
                    DesignStyle::Unrestricted
                });
            if let Some((time, alu, mux, reg)) = point.weights {
                config = config.with_weights(Weights {
                    time,
                    alu,
                    mux,
                    reg,
                });
            }
            if let Some(clock) = point.clock {
                config = config.with_chaining(ClockPeriod::new(clock));
            }
            if let Some(l) = point.latency {
                config = config.with_latency(l);
            }
            let mut out = mfsa::schedule_traced_with_frames(dfg, spec, &config, frames, instr)
                .map_err(|e| e.to_string())?;
            if point.iterate > 0 {
                hls_iterate::refine_mfsa(
                    dfg,
                    spec,
                    library,
                    &mut out,
                    &iterate_config(point),
                    instr,
                )
                .map_err(|e| e.to_string())?;
            }
            Ok(PointMetrics {
                csteps: steps_used(dfg, &out.schedule, spec),
                mix: out.datapath.alu_signature(),
                fu_cost: out.cost.alu_area.as_u64(),
                registers: out.cost.reg_count,
                reschedules: 0,
                mem: mem_pressure(dfg, &out.schedule),
                mfsa: Some(MfsaDetail {
                    alus: out.datapath.alu_signature(),
                    total_cost: out.cost.total().as_u64(),
                    mux: out.cost.mux_count,
                    muxin: out.cost.mux_inputs,
                }),
            })
        }
        Algorithm::List => {
            cancel.checkpoint().map_err(|e| e.to_string())?;
            let schedule = hls_baselines::list_schedule(dfg, spec, &point.fu_limits, point.cs)
                .map_err(|e| e.to_string())?;
            let schedule = refine_baseline(dfg, spec, schedule, point, instr)?;
            Ok(fu_point_metrics(dfg, spec, &schedule, library, 0))
        }
        Algorithm::Fds => {
            cancel.checkpoint().map_err(|e| e.to_string())?;
            let schedule = hls_baselines::force_directed_schedule(dfg, spec, point.cs)
                .map_err(|e| e.to_string())?;
            let schedule = refine_baseline(dfg, spec, schedule, point, instr)?;
            Ok(fu_point_metrics(dfg, spec, &schedule, library, 0))
        }
        Algorithm::Anneal => {
            cancel.checkpoint().map_err(|e| e.to_string())?;
            let (schedule, _) = hls_baselines::anneal_schedule(
                dfg,
                spec,
                point.cs,
                library,
                &hls_baselines::AnnealParams::default(),
            )
            .map_err(|e| e.to_string())?;
            let schedule = refine_baseline(dfg, spec, schedule, point, instr)?;
            Ok(fu_point_metrics(dfg, spec, &schedule, library, 0))
        }
    }
}

/// Applies feedback-guided refinement to a baseline-scheduler result.
/// The baselines schedule without chaining awareness, so the refiner
/// runs with the unchained timing model regardless of `point.clock`.
fn refine_baseline(
    dfg: &Dfg,
    spec: &TimingSpec,
    schedule: Schedule,
    point: &DesignPoint,
    instr: &mut Instrument<'_>,
) -> Result<Schedule, String> {
    if point.iterate == 0 {
        return Ok(schedule);
    }
    let mut config = iterate_config(point);
    config.clock = None;
    Ok(hls_iterate::refine(dfg, spec, &schedule, &config, instr)
        .map_err(|e| e.to_string())?
        .schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_celllib::OpKind;
    use hls_dfg::DfgBuilder;

    fn diamond() -> Dfg {
        let mut b = DfgBuilder::new("d");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.op("m", OpKind::Mul, &[x, y]).unwrap();
        let a = b.op("a", OpKind::Add, &[m, y]).unwrap();
        let s = b.op("s", OpKind::Sub, &[m, x]).unwrap();
        b.op("z", OpKind::Add, &[a, s]).unwrap();
        b.finish().unwrap()
    }

    fn grid() -> Vec<DesignPoint> {
        let mut points = Vec::new();
        for alg in [Algorithm::Mfs, Algorithm::List, Algorithm::Fds] {
            for cs in [3, 4, 5] {
                points.push(DesignPoint::new(alg, cs));
            }
        }
        points.push(DesignPoint::new(Algorithm::Mfsa, 4));
        let mut refined = DesignPoint::new(Algorithm::Mfs, 5);
        refined.iterate = 2;
        points.push(refined);
        let mut refined = DesignPoint::new(Algorithm::Mfsa, 4);
        refined.iterate = 2;
        points.push(refined);
        points
    }

    #[test]
    fn serial_and_parallel_agree_bit_for_bit() {
        let dfg = diamond();
        let spec = TimingSpec::uniform_single_cycle();
        let serial = explore(&dfg, &spec, &grid(), ExploreOptions { threads: 1 });
        let parallel = explore(&dfg, &spec, &grid(), ExploreOptions { threads: 8 });
        assert_eq!(serial.front_json(), parallel.front_json());
        for (a, b) in serial.results.iter().zip(parallel.results.iter()) {
            assert_eq!(a.outcome, b.outcome, "{}", a.label);
            assert_eq!(a.label, b.label);
        }
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let dfg = diamond();
        let spec = TimingSpec::uniform_single_cycle();
        let engine = Engine::new();
        let first = engine.explore(&dfg, &spec, &grid(), ExploreOptions { threads: 1 });
        assert_eq!(first.metrics.counter("explore.cache.hit"), 0);
        assert_eq!(
            first.metrics.counter("explore.cache.miss"),
            grid().len() as u64
        );
        let second = engine.explore(&dfg, &spec, &grid(), ExploreOptions { threads: 1 });
        assert_eq!(
            second.metrics.counter("explore.cache.hit"),
            grid().len() as u64
        );
        assert_eq!(second.metrics.counter("explore.cache.miss"), 0);
        assert_eq!(first.front_json(), second.front_json());
        for (a, b) in first.results.iter().zip(second.results.iter()) {
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn frames_are_shared_across_points_at_one_cs() {
        let dfg = diamond();
        let spec = TimingSpec::uniform_single_cycle();
        let report = explore(&dfg, &spec, &grid(), ExploreOptions { threads: 1 });
        // 3 distinct cs values -> 3 frame computations; the other
        // non-structural points reuse them.
        assert_eq!(report.metrics.counter("explore.frames.computed"), 3);
        assert!(report.metrics.counter("explore.frames.reused") > 0);
    }

    #[test]
    fn infeasible_points_report_errors_not_panics() {
        let dfg = diamond();
        let spec = TimingSpec::uniform_single_cycle();
        let points = vec![DesignPoint::new(Algorithm::Mfs, 1)]; // below critical path
        let report = explore(&dfg, &spec, &points, ExploreOptions { threads: 1 });
        assert!(report.results[0].outcome.is_err());
        assert!(report.front.is_empty());
        assert_eq!(report.metrics.counter("explore.errors"), 1);
        assert!(report.front_json().contains("\"errors\":1"));
    }

    #[test]
    fn iterate_points_never_regress_the_one_shot_objective() {
        let dfg = diamond();
        let spec = TimingSpec::uniform_single_cycle();
        let mut one_shot = DesignPoint::new(Algorithm::Mfs, 5);
        let mut refined = one_shot.clone();
        refined.iterate = 3;
        one_shot.label = "one-shot".into();
        refined.label = "refined".into();
        let report = explore(
            &dfg,
            &spec,
            &[one_shot, refined],
            ExploreOptions { threads: 1 },
        );
        let base = report.results[0].outcome.as_ref().unwrap();
        let iter = report.results[1].outcome.as_ref().unwrap();
        assert!(
            (iter.csteps, iter.registers) <= (base.csteps, base.registers),
            "refined {iter:?} vs one-shot {base:?}"
        );
        assert_eq!(iter.reschedules, base.reschedules);
    }

    #[test]
    fn iterate_rejects_unsupported_point_shapes() {
        let dfg = diamond();
        let spec = TimingSpec::uniform_single_cycle();
        let mut pipelined = DesignPoint::new(Algorithm::Mfs, 5);
        pipelined.iterate = 1;
        pipelined.latency = Some(2);
        let mut structural = DesignPoint::new(Algorithm::Mfs, 5);
        structural.iterate = 1;
        structural.pipeline_ops.insert(OpKind::Mul);
        let report = explore(
            &dfg,
            &spec,
            &[pipelined, structural],
            ExploreOptions { threads: 1 },
        );
        let err0 = report.results[0].outcome.as_ref().unwrap_err();
        assert!(err0.contains("pipelining"), "{err0}");
        let err1 = report.results[1].outcome.as_ref().unwrap_err();
        assert!(err1.contains("pipelined"), "{err1}");
    }

    #[test]
    fn iterate_lifts_baseline_schedules() {
        // Force-directed scheduling spreads the padded diffeq budget;
        // the refiner compresses it back to the critical path.
        let dfg = hls_benchmarks::classic::diffeq();
        let spec = TimingSpec::uniform_single_cycle();
        let mut one_shot = DesignPoint::new(Algorithm::Fds, 8);
        let mut refined = one_shot.clone();
        refined.iterate = 3;
        one_shot.label = "one-shot".into();
        refined.label = "refined".into();
        let report = explore(
            &dfg,
            &spec,
            &[one_shot, refined],
            ExploreOptions { threads: 1 },
        );
        let base = report.results[0].outcome.as_ref().unwrap();
        let iter = report.results[1].outcome.as_ref().unwrap();
        assert!(
            iter.csteps < base.csteps,
            "refined {iter:?} vs one-shot {base:?}"
        );
    }

    #[test]
    fn front_is_minimal_and_sorted() {
        let dfg = diamond();
        let spec = TimingSpec::uniform_single_cycle();
        let report = explore(&dfg, &spec, &grid(), ExploreOptions { threads: 2 });
        for (i, e) in report.front.iter().enumerate() {
            for other in &report.front[i + 1..] {
                assert!(!e.objectives.dominates(&other.objectives));
                assert!(!other.objectives.dominates(&e.objectives));
            }
            if i > 0 {
                assert!(report.front[i - 1].objectives <= e.objectives);
            }
        }
    }
}
