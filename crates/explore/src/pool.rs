//! A minimal self-scheduling thread pool over `std::thread::scope`.
//!
//! Jobs are identified by index; workers pull the next index off a
//! shared atomic counter (classic self-scheduling / work-stealing from
//! a single global queue), so load balances automatically however
//! uneven the per-job cost is. Results are reassembled **in index
//! order**, which is what makes the engine's output independent of the
//! thread count and of scheduling luck.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: `std::thread::available_parallelism`,
/// falling back to 1 when the platform cannot say.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `job(0..n_jobs)` on up to `threads` workers and returns the
/// results in index order.
///
/// `threads == 1` (or `n_jobs <= 1`) runs inline on the caller's
/// thread — the differential tests compare exactly this serial path
/// against the parallel one. Panics in `job` propagate (the scope
/// re-raises them), so a poisoned results mutex is unreachable
/// afterwards.
pub fn run_indexed<T, F>(n_jobs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(n_jobs.max(1));
    if workers == 1 {
        return (0..n_jobs).map(&job).collect();
    }

    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n_jobs));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_jobs {
                        break;
                    }
                    local.push((i, job(i)));
                }
                collected
                    .lock()
                    .expect("no worker panicked while holding the results lock")
                    .extend(local);
            });
        }
    });
    let mut results = collected.into_inner().expect("scope joined every worker");
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 8] {
            let out = run_indexed(37, threads, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = run_indexed(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let _ = run_indexed(100, 8, |i| hits[i].fetch_add(1, Ordering::SeqCst));
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
