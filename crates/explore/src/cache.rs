//! The content-addressed exploration cache.
//!
//! Two layers, both keyed by content rather than identity:
//!
//! * **frames** — ASAP/ALAP time frames per `(DFG fingerprint, cs,
//!   clock)`, shared by every design point at the same time constraint
//!   (MFS, MFSA and the baselines all start from the same frames);
//! * **results** — whole [`PointMetrics`] per `(DFG fingerprint, point
//!   fingerprint)`, so repeated queries (same point twice in a grid,
//!   or across [`crate::Engine::explore`] calls) are free.
//!
//! Entries are `Arc<OnceLock<_>>`: the map lock is held only to fetch
//! the slot, and `OnceLock::get_or_init` gives **exactly-once**
//! computation — concurrent requests for one key block on the single
//! computing thread instead of duplicating work. That exactly-once
//! guarantee is what keeps the merged telemetry counters deterministic:
//! every unique query contributes its scheduler counters exactly once,
//! whatever the thread count.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use hls_celllib::{ClockPeriod, TimingSpec};
use hls_dfg::Dfg;
use hls_schedule::{chained_frames, TimeFrames};

use crate::engine::PointMetrics;

type Slot<T> = Arc<OnceLock<T>>;
type CacheMap<K, T> = Mutex<HashMap<K, Slot<Result<T, String>>>>;

/// The shared cache; cheap to clone handles via the engine, internally
/// synchronised.
#[derive(Debug, Default)]
pub struct ExploreCache {
    frames: CacheMap<(u64, u32, Option<u32>), TimeFrames>,
    results: CacheMap<(u64, u64), PointMetrics>,
}

impl ExploreCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot<K: std::hash::Hash + Eq + Copy, T>(
        map: &Mutex<HashMap<K, Slot<T>>>,
        key: K,
    ) -> Slot<T> {
        map.lock()
            .expect("cache lock is never poisoned (no panics inside)")
            .entry(key)
            .or_default()
            .clone()
    }

    /// The ASAP/ALAP frames for `(dfg_fp, cs, clock)`, computed at most
    /// once. Returns the frames plus whether this call computed them.
    pub fn frames(
        &self,
        dfg_fp: u64,
        dfg: &Dfg,
        spec: &TimingSpec,
        cs: u32,
        clock: Option<ClockPeriod>,
    ) -> (Result<TimeFrames, String>, bool) {
        let slot = Self::slot(&self.frames, (dfg_fp, cs, clock.map(|c| c.as_u32())));
        let mut computed = false;
        let value = slot.get_or_init(|| {
            computed = true;
            match clock {
                Some(clock) => chained_frames(dfg, spec, clock, cs)
                    .map(|c| c.into_frames())
                    .map_err(|e| e.to_string()),
                None => TimeFrames::compute(dfg, spec, cs).map_err(|e| e.to_string()),
            }
        });
        (value.clone(), computed)
    }

    /// The memoized result for `(dfg_fp, point_fp)`: runs `compute` at
    /// most once per key. Returns the result plus whether this call
    /// computed it (false = cache hit).
    pub fn result(
        &self,
        dfg_fp: u64,
        point_fp: u64,
        compute: impl FnOnce() -> Result<PointMetrics, String>,
    ) -> (Result<PointMetrics, String>, bool) {
        let slot = Self::slot(&self.results, (dfg_fp, point_fp));
        let mut computed = false;
        let value = slot.get_or_init(|| {
            computed = true;
            compute()
        });
        (value.clone(), computed)
    }

    /// Number of distinct result entries currently cached.
    pub fn result_entries(&self) -> usize {
        self.results.lock().expect("cache lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(csteps: u32) -> PointMetrics {
        PointMetrics {
            csteps,
            mix: String::new(),
            fu_cost: 0,
            registers: 0,
            reschedules: 0,
            mfsa: None,
        }
    }

    #[test]
    fn results_compute_exactly_once_per_key() {
        let cache = ExploreCache::new();
        let (first, computed) = cache.result(1, 2, || Ok(metrics(4)));
        assert!(computed);
        let (second, computed) = cache.result(1, 2, || panic!("must not recompute"));
        assert!(!computed);
        assert_eq!(first, second);
        assert_eq!(cache.result_entries(), 1);
        let (_, computed) = cache.result(1, 3, || Ok(metrics(5)));
        assert!(computed, "a different point fingerprint is a new key");
    }

    #[test]
    fn errors_are_cached_too() {
        let cache = ExploreCache::new();
        let (r, _) = cache.result(9, 9, || Err("infeasible".into()));
        assert!(r.is_err());
        let (r, computed) = cache.result(9, 9, || Ok(metrics(1)));
        assert!(r.is_err(), "the cached error wins");
        assert!(!computed);
    }

    #[test]
    fn concurrent_requests_share_one_computation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ExploreCache::new();
        let runs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (r, _) = cache.result(7, 7, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        Ok(metrics(2))
                    });
                    assert_eq!(r.unwrap().csteps, 2);
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }
}
