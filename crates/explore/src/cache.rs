//! The content-addressed exploration cache.
//!
//! Two layers, both keyed by content rather than identity:
//!
//! * **frames** — ASAP/ALAP time frames per `(DFG fingerprint, cs,
//!   clock)`, shared by every design point at the same time constraint
//!   (MFS, MFSA and the baselines all start from the same frames);
//! * **results** — whole [`PointMetrics`] per `(DFG fingerprint, point
//!   fingerprint)`, so repeated queries (same point twice in a grid,
//!   across [`crate::Engine::explore`] calls, or repeated requests to a
//!   long-lived `hls-serve` daemon) are free.
//!
//! Entries are `Arc<OnceLock<_>>`: the map lock is held only to fetch
//! the slot, and `OnceLock::get_or_init` gives **exactly-once**
//! computation — concurrent requests for one key block on the single
//! computing thread instead of duplicating work. That exactly-once
//! guarantee is what keeps the merged telemetry counters deterministic:
//! every unique query contributes its scheduler counters exactly once,
//! whatever the thread count.
//!
//! Both layers are **bounded**: each holds at most its configured entry
//! cap and evicts least-recently-used slots past it, so a long-lived
//! server cannot grow memory without limit. Eviction only ever forgets
//! memoized *pure* results — a later identical query recomputes the
//! same bytes — so cache pressure never changes any answer.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use hls_celllib::{ClockPeriod, TimingSpec};
use hls_dfg::Dfg;
use hls_schedule::{chained_frames, TimeFrames};

use crate::engine::PointMetrics;

type Slot<T> = Arc<OnceLock<T>>;

/// Default entry cap of the results layer — generous: a server would
/// need thousands of *distinct* (graph, knob) queries live at once to
/// hit it.
pub const DEFAULT_RESULTS_CAP: usize = 4096;
/// Default entry cap of the frames layer.
pub const DEFAULT_FRAMES_CAP: usize = 1024;

/// A small LRU map: a `HashMap` with a logical clock per entry. Reads
/// and writes bump the clock; inserts past `cap` evict the stalest
/// entry. O(n) eviction scans are fine at these caps — eviction is the
/// rare path, and n is bounded by construction.
#[derive(Debug)]
struct Lru<K, T> {
    map: HashMap<K, (Slot<T>, u64)>,
    tick: u64,
    cap: usize,
}

impl<K: std::hash::Hash + Eq + Copy, T> Lru<K, T> {
    fn new(cap: usize) -> Self {
        Lru {
            map: HashMap::new(),
            tick: 0,
            cap: cap.max(1),
        }
    }

    /// The slot for `key` (created empty if absent), plus how many
    /// entries were evicted to make room.
    fn slot(&mut self, key: K) -> (Slot<T>, u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((slot, used)) = self.map.get_mut(&key) {
            *used = tick;
            return (slot.clone(), 0);
        }
        let mut evicted = 0;
        while self.map.len() >= self.cap {
            let stalest = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(&k, _)| k)
                .expect("non-empty map over cap");
            self.map.remove(&stalest);
            evicted += 1;
        }
        let slot: Slot<T> = Arc::default();
        self.map.insert(key, (slot.clone(), tick));
        (slot, evicted)
    }
}

/// Hit/miss/evict totals per cache layer, for telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from a populated slot.
    pub hits: u64,
    /// Queries that had to compute.
    pub misses: u64,
    /// Entries evicted to respect the cap.
    pub evictions: u64,
}

/// Frame-layer key: `(dfg_fingerprint, cs, chaining clock)`.
type FramesKey = (u64, u32, Option<u32>);
/// Result-layer key: `(dfg_fingerprint, point_fingerprint)`.
type ResultsKey = (u64, u64);

/// The shared cache; cheap to share via the engine, internally
/// synchronised.
#[derive(Debug)]
pub struct ExploreCache {
    frames: Mutex<Lru<FramesKey, Result<TimeFrames, String>>>,
    results: Mutex<Lru<ResultsKey, Result<PointMetrics, String>>>,
    stats: Mutex<(CacheStats, CacheStats)>, // (frames, results)
}

impl Default for ExploreCache {
    fn default() -> Self {
        Self::with_caps(DEFAULT_FRAMES_CAP, DEFAULT_RESULTS_CAP)
    }
}

impl ExploreCache {
    /// An empty cache with the default caps.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `frames_cap` frame entries and
    /// `results_cap` result entries (each clamped to at least 1).
    pub fn with_caps(frames_cap: usize, results_cap: usize) -> Self {
        ExploreCache {
            frames: Mutex::new(Lru::new(frames_cap)),
            results: Mutex::new(Lru::new(results_cap)),
            stats: Mutex::new((CacheStats::default(), CacheStats::default())),
        }
    }

    /// The ASAP/ALAP frames for `(dfg_fp, cs, clock)`, computed at most
    /// once while cached. Returns the frames plus whether this call
    /// computed them.
    pub fn frames(
        &self,
        dfg_fp: u64,
        dfg: &Dfg,
        spec: &TimingSpec,
        cs: u32,
        clock: Option<ClockPeriod>,
    ) -> (Result<TimeFrames, String>, bool) {
        let (slot, evicted) = self
            .frames
            .lock()
            .expect("cache lock is never poisoned (no panics inside)")
            .slot((dfg_fp, cs, clock.map(|c| c.as_u32())));
        let mut computed = false;
        let value = slot.get_or_init(|| {
            computed = true;
            match clock {
                Some(clock) => chained_frames(dfg, spec, clock, cs)
                    .map(|c| c.into_frames())
                    .map_err(|e| e.to_string()),
                None => TimeFrames::compute(dfg, spec, cs).map_err(|e| e.to_string()),
            }
        });
        let mut stats = self.stats.lock().expect("stats lock");
        stats.0.evictions += evicted;
        if computed {
            stats.0.misses += 1;
        } else {
            stats.0.hits += 1;
        }
        (value.clone(), computed)
    }

    /// The memoized result for `(dfg_fp, point_fp)`: runs `compute` at
    /// most once while the key stays cached. Returns the result plus
    /// whether this call computed it (false = cache hit).
    pub fn result(
        &self,
        dfg_fp: u64,
        point_fp: u64,
        compute: impl FnOnce() -> Result<PointMetrics, String>,
    ) -> (Result<PointMetrics, String>, bool) {
        let (slot, evicted) = self
            .results
            .lock()
            .expect("cache lock is never poisoned (no panics inside)")
            .slot((dfg_fp, point_fp));
        let mut computed = false;
        let value = slot.get_or_init(|| {
            computed = true;
            compute()
        });
        let mut stats = self.stats.lock().expect("stats lock");
        stats.1.evictions += evicted;
        if computed {
            stats.1.misses += 1;
        } else {
            stats.1.hits += 1;
        }
        (value.clone(), computed)
    }

    /// Drops the result entry for `(dfg_fp, point_fp)`, if present.
    ///
    /// The engine calls this for results poisoned by cancellation (a
    /// deadline firing mid-compute must not make every later identical
    /// request fail); it is also handy for tests.
    pub fn forget(&self, dfg_fp: u64, point_fp: u64) {
        self.results
            .lock()
            .expect("cache lock")
            .map
            .remove(&(dfg_fp, point_fp));
    }

    /// Number of distinct result entries currently cached.
    pub fn result_entries(&self) -> usize {
        self.results.lock().expect("cache lock").map.len()
    }

    /// Totals for the frames layer.
    pub fn frames_stats(&self) -> CacheStats {
        self.stats.lock().expect("stats lock").0
    }

    /// Totals for the results layer.
    pub fn results_stats(&self) -> CacheStats {
        self.stats.lock().expect("stats lock").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(csteps: u32) -> PointMetrics {
        PointMetrics {
            csteps,
            mix: String::new(),
            fu_cost: 0,
            registers: 0,
            reschedules: 0,
            mem: Vec::new(),
            mfsa: None,
        }
    }

    #[test]
    fn results_compute_exactly_once_per_key() {
        let cache = ExploreCache::new();
        let (first, computed) = cache.result(1, 2, || Ok(metrics(4)));
        assert!(computed);
        let (second, computed) = cache.result(1, 2, || panic!("must not recompute"));
        assert!(!computed);
        assert_eq!(first, second);
        assert_eq!(cache.result_entries(), 1);
        let (_, computed) = cache.result(1, 3, || Ok(metrics(5)));
        assert!(computed, "a different point fingerprint is a new key");
        assert_eq!(
            cache.results_stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                evictions: 0
            }
        );
    }

    #[test]
    fn errors_are_cached_too() {
        let cache = ExploreCache::new();
        let (r, _) = cache.result(9, 9, || Err("infeasible".into()));
        assert!(r.is_err());
        let (r, computed) = cache.result(9, 9, || Ok(metrics(1)));
        assert!(r.is_err(), "the cached error wins");
        assert!(!computed);
    }

    #[test]
    fn forget_reopens_the_key() {
        let cache = ExploreCache::new();
        let (_, computed) = cache.result(5, 5, || Err("cancelled".into()));
        assert!(computed);
        cache.forget(5, 5);
        let (r, computed) = cache.result(5, 5, || Ok(metrics(3)));
        assert!(computed, "a forgotten key recomputes");
        assert_eq!(r.unwrap().csteps, 3);
    }

    #[test]
    fn cap_bounds_entries_and_evicts_lru() {
        let cache = ExploreCache::with_caps(4, 2);
        let (_, c) = cache.result(1, 1, || Ok(metrics(1)));
        assert!(c);
        let (_, c) = cache.result(1, 2, || Ok(metrics(2)));
        assert!(c);
        // Touch key 1 so key 2 is the LRU victim.
        let (_, c) = cache.result(1, 1, || panic!("cached"));
        assert!(!c);
        let (_, c) = cache.result(1, 3, || Ok(metrics(3)));
        assert!(c);
        assert_eq!(cache.result_entries(), 2);
        assert_eq!(cache.results_stats().evictions, 1);
        // Key 2 was evicted and recomputes (displacing key 1, the new
        // LRU); key 3 — most recently inserted — survives throughout.
        let (_, c) = cache.result(1, 2, || Ok(metrics(2)));
        assert!(c, "the LRU victim recomputes");
        assert_eq!(cache.results_stats().evictions, 2);
        let (r, _) = cache.result(1, 3, || panic!("must still be cached"));
        assert_eq!(r.unwrap().csteps, 3);
    }

    #[test]
    fn concurrent_requests_share_one_computation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ExploreCache::new();
        let runs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (r, _) = cache.result(7, 7, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        Ok(metrics(2))
                    });
                    assert_eq!(r.unwrap().csteps, 2);
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }
}
