//! The content-addressed exploration cache.
//!
//! Two layers, both keyed by content rather than identity:
//!
//! * **frames** — ASAP/ALAP time frames per `(DFG fingerprint, cs,
//!   clock)`, shared by every design point at the same time constraint
//!   (MFS, MFSA and the baselines all start from the same frames);
//! * **results** — whole [`PointMetrics`] per `(DFG fingerprint, point
//!   fingerprint)`, so repeated queries (same point twice in a grid,
//!   across [`crate::Engine::explore`] calls, or repeated requests to a
//!   long-lived `hls-serve` daemon) are free.
//!
//! Entries are `Arc<OnceLock<_>>`: the map lock is held only to fetch
//! the slot, and `OnceLock::get_or_init` gives **exactly-once**
//! computation — concurrent requests for one key block on the single
//! computing thread instead of duplicating work. That exactly-once
//! guarantee is what keeps the merged telemetry counters deterministic:
//! every unique query contributes its scheduler counters exactly once,
//! whatever the thread count.
//!
//! Both layers are **bounded**: each holds at most its configured entry
//! cap and evicts least-recently-used slots past it, so a long-lived
//! server cannot grow memory without limit. Eviction only ever forgets
//! memoized *pure* results — a later identical query recomputes the
//! same bytes — so cache pressure never changes any answer.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use hls_celllib::{ClockPeriod, TimingSpec};
use hls_dfg::Dfg;
use hls_schedule::{chained_frames, TimeFrames};

use crate::diskcache::{DiskCache, DiskStats};
use crate::engine::PointMetrics;

/// Which tier answered a result lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The in-memory LRU had a populated slot.
    Hot,
    /// The on-disk layer had a verified entry (memory slot now filled).
    Warm,
    /// Neither tier had it: `compute` ran.
    Cold,
}

type Slot<T> = Arc<OnceLock<T>>;

/// Default entry cap of the results layer — generous: a server would
/// need thousands of *distinct* (graph, knob) queries live at once to
/// hit it.
pub const DEFAULT_RESULTS_CAP: usize = 4096;
/// Default entry cap of the frames layer.
pub const DEFAULT_FRAMES_CAP: usize = 1024;

/// A small LRU map: a `HashMap` with a logical clock per entry. Reads
/// and writes bump the clock; inserts past `cap` evict the stalest
/// entry. O(n) eviction scans are fine at these caps — eviction is the
/// rare path, and n is bounded by construction.
#[derive(Debug)]
struct Lru<K, T> {
    map: HashMap<K, (Slot<T>, u64)>,
    tick: u64,
    cap: usize,
}

impl<K: std::hash::Hash + Eq + Copy, T> Lru<K, T> {
    fn new(cap: usize) -> Self {
        Lru {
            map: HashMap::new(),
            tick: 0,
            cap: cap.max(1),
        }
    }

    /// The slot for `key` if (and only if) it is already resident;
    /// bumps recency, never inserts.
    fn peek(&mut self, key: K) -> Option<Slot<T>> {
        self.tick += 1;
        let tick = self.tick;
        let (slot, used) = self.map.get_mut(&key)?;
        *used = tick;
        Some(slot.clone())
    }

    /// The slot for `key` (created empty if absent), plus how many
    /// entries were evicted to make room.
    fn slot(&mut self, key: K) -> (Slot<T>, u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((slot, used)) = self.map.get_mut(&key) {
            *used = tick;
            return (slot.clone(), 0);
        }
        let mut evicted = 0;
        while self.map.len() >= self.cap {
            let stalest = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(&k, _)| k)
                .expect("non-empty map over cap");
            self.map.remove(&stalest);
            evicted += 1;
        }
        let slot: Slot<T> = Arc::default();
        self.map.insert(key, (slot.clone(), tick));
        (slot, evicted)
    }
}

/// Hit/miss/evict totals per cache layer, for telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from a populated slot.
    pub hits: u64,
    /// Queries that had to compute.
    pub misses: u64,
    /// Entries evicted to respect the cap.
    pub evictions: u64,
}

/// Frame-layer key: `(dfg_fingerprint, cs, chaining clock)`.
type FramesKey = (u64, u32, Option<u32>);
/// Result-layer key: `(dfg_fingerprint, point_fingerprint)`.
type ResultsKey = (u64, u64);

/// The shared cache; cheap to share via the engine, internally
/// synchronised.
#[derive(Debug)]
pub struct ExploreCache {
    frames: Mutex<Lru<FramesKey, Result<TimeFrames, String>>>,
    results: Mutex<Lru<ResultsKey, Result<PointMetrics, String>>>,
    stats: Mutex<(CacheStats, CacheStats)>, // (frames, results)
    disk: Option<DiskCache>,
}

impl Default for ExploreCache {
    fn default() -> Self {
        Self::with_caps(DEFAULT_FRAMES_CAP, DEFAULT_RESULTS_CAP)
    }
}

impl ExploreCache {
    /// An empty cache with the default caps.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `frames_cap` frame entries and
    /// `results_cap` result entries (each clamped to at least 1).
    pub fn with_caps(frames_cap: usize, results_cap: usize) -> Self {
        ExploreCache {
            frames: Mutex::new(Lru::new(frames_cap)),
            results: Mutex::new(Lru::new(results_cap)),
            stats: Mutex::new((CacheStats::default(), CacheStats::default())),
            disk: None,
        }
    }

    /// A cache whose result layer is backed by a content-addressed
    /// on-disk tier rooted at `dir`: memory misses consult disk before
    /// computing, and fresh `Ok` computations are persisted, so a
    /// restarted process answers previously-seen keys without
    /// rescheduling. Fails only if the directory cannot be created.
    pub fn with_disk(frames_cap: usize, results_cap: usize, dir: &Path) -> std::io::Result<Self> {
        let mut cache = Self::with_caps(frames_cap, results_cap);
        cache.disk = Some(DiskCache::open(dir)?);
        Ok(cache)
    }

    /// Counters of the disk tier, if one is attached.
    pub fn disk_stats(&self) -> Option<DiskStats> {
        self.disk.as_ref().map(DiskCache::stats)
    }

    /// The ASAP/ALAP frames for `(dfg_fp, cs, clock)`, computed at most
    /// once while cached. Returns the frames plus whether this call
    /// computed them.
    pub fn frames(
        &self,
        dfg_fp: u64,
        dfg: &Dfg,
        spec: &TimingSpec,
        cs: u32,
        clock: Option<ClockPeriod>,
    ) -> (Result<TimeFrames, String>, bool) {
        let (slot, evicted) = self
            .frames
            .lock()
            .expect("cache lock is never poisoned (no panics inside)")
            .slot((dfg_fp, cs, clock.map(|c| c.as_u32())));
        let mut computed = false;
        let value = slot.get_or_init(|| {
            computed = true;
            match clock {
                Some(clock) => chained_frames(dfg, spec, clock, cs)
                    .map(|c| c.into_frames())
                    .map_err(|e| e.to_string()),
                None => TimeFrames::compute(dfg, spec, cs).map_err(|e| e.to_string()),
            }
        });
        let mut stats = self.stats.lock().expect("stats lock");
        stats.0.evictions += evicted;
        if computed {
            stats.0.misses += 1;
        } else {
            stats.0.hits += 1;
        }
        (value.clone(), computed)
    }

    /// The memoized result for `(dfg_fp, point_fp)`: runs `compute` at
    /// most once while the key stays in memory. A memory miss consults
    /// the disk tier (if attached) before computing; a fresh `Ok`
    /// computation is written through to disk. Returns the result plus
    /// the [`Tier`] that answered it.
    ///
    /// Exactly-once still holds per tier: concurrent requests for one
    /// key share a single disk load *or* a single computation through
    /// the slot's `OnceLock`, and only the computing call writes disk.
    pub fn result(
        &self,
        dfg_fp: u64,
        point_fp: u64,
        compute: impl FnOnce() -> Result<PointMetrics, String>,
    ) -> (Result<PointMetrics, String>, Tier) {
        let (slot, evicted) = self
            .results
            .lock()
            .expect("cache lock is never poisoned (no panics inside)")
            .slot((dfg_fp, point_fp));
        let mut tier = Tier::Hot;
        let value = slot.get_or_init(|| {
            if let Some(disk) = &self.disk {
                if let Some(metrics) = disk.load(dfg_fp, point_fp) {
                    tier = Tier::Warm;
                    return Ok(metrics);
                }
            }
            tier = Tier::Cold;
            compute()
        });
        let mut stats = self.stats.lock().expect("stats lock");
        stats.1.evictions += evicted;
        if tier == Tier::Hot {
            stats.1.hits += 1;
        } else {
            stats.1.misses += 1;
        }
        drop(stats);
        if tier == Tier::Cold {
            if let (Some(disk), Ok(metrics)) = (&self.disk, value) {
                disk.store(dfg_fp, point_fp, metrics);
            }
        }
        (value.clone(), tier)
    }

    /// A non-computing probe of the **memory** result tier: `Some` iff
    /// the key is resident and populated. Counts as a results-layer
    /// hit when it answers; a miss counts nothing, because the caller
    /// falls back to [`ExploreCache::result`], which does the full
    /// accounting. Cached *cancelled* errors are reported as misses —
    /// the fallback path owns the forget-and-retry hygiene for those.
    ///
    /// This is the reactor's inline fast path: a warm `/schedule` hit
    /// is answered on the event loop without a worker handoff, so the
    /// probe must never compute, block on I/O, or insert a slot.
    pub fn peek_result(&self, dfg_fp: u64, point_fp: u64) -> Option<Result<PointMetrics, String>> {
        let slot = self
            .results
            .lock()
            .expect("cache lock is never poisoned (no panics inside)")
            .peek((dfg_fp, point_fp))?;
        let value = slot.get()?.clone();
        if matches!(&value, Err(e) if e.starts_with("cancelled")) {
            return None;
        }
        self.stats.lock().expect("stats lock").1.hits += 1;
        Some(value)
    }

    /// Drops the result entry for `(dfg_fp, point_fp)`, if present.
    ///
    /// The engine calls this for results poisoned by cancellation (a
    /// deadline firing mid-compute must not make every later identical
    /// request fail); it is also handy for tests.
    pub fn forget(&self, dfg_fp: u64, point_fp: u64) {
        self.results
            .lock()
            .expect("cache lock")
            .map
            .remove(&(dfg_fp, point_fp));
    }

    /// Number of distinct result entries currently cached.
    pub fn result_entries(&self) -> usize {
        self.results.lock().expect("cache lock").map.len()
    }

    /// Totals for the frames layer.
    pub fn frames_stats(&self) -> CacheStats {
        self.stats.lock().expect("stats lock").0
    }

    /// Totals for the results layer.
    pub fn results_stats(&self) -> CacheStats {
        self.stats.lock().expect("stats lock").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(csteps: u32) -> PointMetrics {
        PointMetrics {
            csteps,
            mix: String::new(),
            fu_cost: 0,
            registers: 0,
            reschedules: 0,
            mem: Vec::new(),
            mfsa: None,
        }
    }

    #[test]
    fn results_compute_exactly_once_per_key() {
        let cache = ExploreCache::new();
        let (first, tier) = cache.result(1, 2, || Ok(metrics(4)));
        assert_eq!(tier, Tier::Cold);
        let (second, tier) = cache.result(1, 2, || panic!("must not recompute"));
        assert_eq!(tier, Tier::Hot);
        assert_eq!(first, second);
        assert_eq!(cache.result_entries(), 1);
        let (_, tier) = cache.result(1, 3, || Ok(metrics(5)));
        assert_eq!(
            tier,
            Tier::Cold,
            "a different point fingerprint is a new key"
        );
        assert_eq!(
            cache.results_stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                evictions: 0
            }
        );
    }

    #[test]
    fn peek_probes_without_computing_or_inserting() {
        let cache = ExploreCache::new();
        assert!(cache.peek_result(1, 2).is_none());
        assert_eq!(
            cache.results_stats(),
            CacheStats::default(),
            "a probe miss counts nothing and inserts nothing"
        );
        assert_eq!(cache.result_entries(), 0);

        let (_, t) = cache.result(1, 2, || Ok(metrics(4)));
        assert_eq!(t, Tier::Cold);
        let peeked = cache.peek_result(1, 2).expect("resident key answers");
        assert_eq!(peeked.unwrap().csteps, 4);
        assert_eq!(cache.results_stats().hits, 1, "a probe hit is a hit");

        // Cached *cancelled* errors are invisible to the probe: the
        // fallback path owns their forget-and-retry hygiene.
        let (_, _) = cache.result(3, 4, || Err("cancelled: deadline".into()));
        assert!(cache.peek_result(3, 4).is_none());
        // Ordinary cached errors answer like any other result.
        let (_, _) = cache.result(5, 6, || Err("infeasible".into()));
        assert!(cache.peek_result(5, 6).expect("cached error").is_err());
    }

    #[test]
    fn peek_bumps_recency() {
        let cache = ExploreCache::with_caps(4, 2);
        let (_, _) = cache.result(1, 1, || Ok(metrics(1)));
        let (_, _) = cache.result(1, 2, || Ok(metrics(2)));
        // Probe key 1 so key 2 is the LRU victim of the next insert.
        assert!(cache.peek_result(1, 1).is_some());
        let (_, _) = cache.result(1, 3, || Ok(metrics(3)));
        assert!(cache.peek_result(1, 1).is_some(), "probed key survives");
        assert!(cache.peek_result(1, 2).is_none(), "LRU victim evicted");
    }

    #[test]
    fn errors_are_cached_too() {
        let cache = ExploreCache::new();
        let (r, _) = cache.result(9, 9, || Err("infeasible".into()));
        assert!(r.is_err());
        let (r, tier) = cache.result(9, 9, || Ok(metrics(1)));
        assert!(r.is_err(), "the cached error wins");
        assert_eq!(tier, Tier::Hot);
    }

    #[test]
    fn forget_reopens_the_key() {
        let cache = ExploreCache::new();
        let (_, tier) = cache.result(5, 5, || Err("cancelled".into()));
        assert_eq!(tier, Tier::Cold);
        cache.forget(5, 5);
        let (r, tier) = cache.result(5, 5, || Ok(metrics(3)));
        assert_eq!(tier, Tier::Cold, "a forgotten key recomputes");
        assert_eq!(r.unwrap().csteps, 3);
    }

    #[test]
    fn cap_bounds_entries_and_evicts_lru() {
        let cache = ExploreCache::with_caps(4, 2);
        let (_, t) = cache.result(1, 1, || Ok(metrics(1)));
        assert_eq!(t, Tier::Cold);
        let (_, t) = cache.result(1, 2, || Ok(metrics(2)));
        assert_eq!(t, Tier::Cold);
        // Touch key 1 so key 2 is the LRU victim.
        let (_, t) = cache.result(1, 1, || panic!("cached"));
        assert_eq!(t, Tier::Hot);
        let (_, t) = cache.result(1, 3, || Ok(metrics(3)));
        assert_eq!(t, Tier::Cold);
        assert_eq!(cache.result_entries(), 2);
        assert_eq!(cache.results_stats().evictions, 1);
        // Key 2 was evicted and recomputes (displacing key 1, the new
        // LRU); key 3 — most recently inserted — survives throughout.
        let (_, t) = cache.result(1, 2, || Ok(metrics(2)));
        assert_eq!(t, Tier::Cold, "the LRU victim recomputes");
        assert_eq!(cache.results_stats().evictions, 2);
        let (r, _) = cache.result(1, 3, || panic!("must still be cached"));
        assert_eq!(r.unwrap().csteps, 3);
    }

    #[test]
    fn concurrent_requests_share_one_computation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = ExploreCache::new();
        let runs = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let (r, _) = cache.result(7, 7, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        Ok(metrics(2))
                    });
                    assert_eq!(r.unwrap().csteps, 2);
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1);
    }

    fn disk_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mfhls-cache-tier-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_tier_answers_after_a_restart_without_recomputing() {
        let dir = disk_dir("warm");
        {
            let cache = ExploreCache::with_disk(4, 4, &dir).unwrap();
            let (_, t) = cache.result(8, 8, || Ok(metrics(6)));
            assert_eq!(t, Tier::Cold);
            assert_eq!(cache.disk_stats().unwrap().writes, 1);
            // While the memory slot is live, disk is not consulted.
            let (_, t) = cache.result(8, 8, || panic!("cached"));
            assert_eq!(t, Tier::Hot);
        }
        // A "restarted daemon": fresh memory, same directory.
        let cache = ExploreCache::with_disk(4, 4, &dir).unwrap();
        let (r, t) = cache.result(8, 8, || panic!("disk must answer"));
        assert_eq!(t, Tier::Warm);
        assert_eq!(r.unwrap().csteps, 6);
        // The disk hit populated the memory slot: next lookup is Hot.
        let (_, t) = cache.result(8, 8, || panic!("cached"));
        assert_eq!(t, Tier::Hot);
        let d = cache.disk_stats().unwrap();
        assert_eq!((d.hits, d.corrupt), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_tier_skips_errors_and_recomputes_truncated_entries_once() {
        let dir = disk_dir("err");
        let cache = ExploreCache::with_disk(4, 4, &dir).unwrap();
        let (_, t) = cache.result(1, 1, || Err("infeasible".into()));
        assert_eq!(t, Tier::Cold);
        assert_eq!(
            cache.disk_stats().unwrap().writes,
            0,
            "errors stay off disk"
        );

        let (_, t) = cache.result(2, 2, || Ok(metrics(3)));
        assert_eq!(t, Tier::Cold);
        // Truncate the entry behind the cache's back, then restart.
        let path = {
            let reopened = ExploreCache::with_disk(4, 4, &dir).unwrap();
            let path = reopened.disk.as_ref().unwrap().entry_path(2, 2);
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
            let (r, t) = reopened.result(2, 2, || Ok(metrics(3)));
            assert_eq!(t, Tier::Cold, "truncated entry recomputes");
            assert_eq!(r.unwrap().csteps, 3);
            let d = reopened.disk_stats().unwrap();
            assert_eq!(
                (d.corrupt, d.writes),
                (1, 1),
                "recompute rewrites the entry"
            );
            path
        };
        assert!(path.exists(), "the repaired entry is back on disk");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
