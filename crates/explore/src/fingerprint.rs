//! Content-addressed fingerprints for the exploration cache.
//!
//! The cache key for a schedule result is `(DFG structural fingerprint,
//! design-point fingerprint)`. Both sides use FNV-1a over a canonical
//! byte encoding, hand-rolled so the workspace stays dependency-free.
//! Fingerprints are *structural*: node and signal **names are excluded**,
//! so renaming a graph (or rebuilding an identical one) still hits the
//! cache, while any change to operations, edges, timing, branches or
//! loop structure misses it.

use hls_celllib::{OpKind, TimingSpec};
use hls_dfg::{Dfg, SignalSource};

/// A streaming 64-bit FNV-1a hasher over canonical byte encodings.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` little-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u32` little-endian.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a length-prefixed string (prefix avoids ambiguity when
    /// consecutive strings are concatenated).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The fingerprint so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// A canonical tag per operation kind (stable across runs and builds —
/// `OpKind::ALL` order is part of the crate's public contract).
fn op_tag(kind: OpKind) -> u32 {
    OpKind::ALL
        .iter()
        .position(|&k| k == kind)
        .unwrap_or(usize::MAX) as u32
}

/// Structural fingerprint of a DFG under a timing spec.
///
/// Covers, in a canonical node-index order: node kinds (operation /
/// pipeline stage / folded loop), predecessor lists, input-signal
/// sources, branch-based mutual exclusion, loop regions, and the
/// per-operation timing (cycles and delay) of every kind the graph
/// uses. Node and signal names are deliberately excluded.
pub fn dfg_fingerprint(dfg: &Dfg, spec: &TimingSpec) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(dfg.node_count() as u64);
    h.write_u64(dfg.signal_count() as u64);

    // Signals: tag the source shape (constant value / primary input /
    // producing node index).
    for (_, sig) in dfg.signals() {
        match sig.source() {
            SignalSource::Constant(v) => {
                h.write_u32(1);
                h.write_u64(v as u64);
            }
            SignalSource::PrimaryInput => h.write_u32(2),
            SignalSource::Node(n) => {
                h.write_u32(3);
                h.write_u64(n.index() as u64);
            }
        }
    }

    // Nodes: kind, inputs (by signal index), predecessors, and the
    // pairwise mutual-exclusion relation (branch structure).
    let ids: Vec<_> = dfg.node_ids().collect();
    for &id in &ids {
        let node = dfg.node(id);
        match node.kind() {
            hls_dfg::NodeKind::Op(k) => {
                h.write_u32(10);
                h.write_u32(op_tag(k));
            }
            hls_dfg::NodeKind::Stage { base, index, of } => {
                h.write_u32(11);
                h.write_u32(op_tag(base));
                h.write_u32(index as u32);
                h.write_u32(of as u32);
            }
            hls_dfg::NodeKind::LoopBody { cycles, .. } => {
                h.write_u32(12);
                h.write_u32(cycles as u32);
            }
            hls_dfg::NodeKind::Load { array, bank } => {
                h.write_u32(13);
                h.write_u32(array.index() as u32);
                h.write_u32(bank.index() as u32);
            }
            hls_dfg::NodeKind::Store { array, bank } => {
                h.write_u32(14);
                h.write_u32(array.index() as u32);
                h.write_u32(bank.index() as u32);
            }
        }
        for &sig in node.inputs() {
            h.write_u64(sig.index() as u64);
        }
        h.write_u32(u32::MAX); // input/pred separator
        for &p in dfg.preds(id) {
            h.write_u64(p.index() as u64);
        }
        h.write_u32(u32::MAX);
        for &other in &ids {
            if other > id && dfg.mutually_exclusive(id, other) {
                h.write_u64(other.index() as u64);
            }
        }
    }

    // Loop regions (hierarchical scheduling context).
    for region in dfg.loop_regions() {
        h.write_u32(20);
        h.write_u32(region.time_constraint() as u32);
        for member in dfg.loop_members(region.id()) {
            h.write_u64(member.index() as u64);
        }
    }

    // Memory declarations: bank port counts are scheduling resources and
    // array sizes/placements are behaviour, so both key the cache (names
    // stay excluded, as for nodes and signals).
    for bank in dfg.memory().banks() {
        h.write_u32(21);
        h.write_u32(bank.ports());
    }
    for arr in dfg.memory().arrays() {
        h.write_u32(22);
        h.write_u32(arr.size());
        h.write_u32(arr.bank().index() as u32);
    }

    // Timing of every kind in use (the same graph under a different
    // spec schedules differently).
    for kind in OpKind::ALL {
        h.write_u32(spec.cycles(kind) as u32);
        h.write_u32(spec.delay(kind).as_u32());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_dfg::DfgBuilder;

    fn small(name: &str) -> Dfg {
        let mut b = DfgBuilder::new(name);
        let x = b.input("x");
        let y = b.input("y");
        let m = b.op("m", OpKind::Mul, &[x, y]).unwrap();
        b.op("a", OpKind::Add, &[m, y]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn renaming_does_not_change_the_fingerprint() {
        let spec = TimingSpec::uniform_single_cycle();
        assert_eq!(
            dfg_fingerprint(&small("one"), &spec),
            dfg_fingerprint(&small("two"), &spec)
        );
    }

    #[test]
    fn structure_and_timing_do_change_it() {
        let spec1 = TimingSpec::uniform_single_cycle();
        let spec2 = TimingSpec::two_cycle_multiply();
        let g = small("g");
        assert_ne!(dfg_fingerprint(&g, &spec1), dfg_fingerprint(&g, &spec2));

        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.op("m", OpKind::Add, &[x, y]).unwrap(); // Mul -> Add
        b.op("a", OpKind::Add, &[m, y]).unwrap();
        let other = b.finish().unwrap();
        assert_ne!(dfg_fingerprint(&g, &spec1), dfg_fingerprint(&other, &spec1));
    }

    #[test]
    fn fnv_is_stable() {
        let mut h = Fnv1a::new();
        h.write_str("mfhls");
        // Known-answer: FNV-1a is a fixed function, so this value must
        // never change between builds (the cache would silently reset).
        assert_eq!(h.finish(), {
            let mut k = Fnv1a::new();
            k.write_str("mfhls");
            k.finish()
        });
        assert_ne!(h.finish(), Fnv1a::new().finish());
    }
}
