//! hls-explore: deterministic parallel design-space exploration.
//!
//! The paper's experiments sweep each example over a grid of time
//! constraints, FU mixes and design styles. This crate turns that
//! sweep into a first-class engine:
//!
//! * a grid of [`DesignPoint`]s (algorithm × time constraint × knobs)
//!   is fanned out over a self-scheduling [`std::thread`] pool
//!   ([`run_indexed`]), sized from `available_parallelism` and
//!   overridable per call;
//! * a content-addressed [`ExploreCache`] memoizes ASAP/ALAP frame
//!   precomputation per `(DFG fingerprint, cs, clock)` and whole
//!   point results per `(DFG fingerprint, point fingerprint)`;
//! * results stream into a Pareto front over (control steps, FU cost,
//!   registers) with a stable tie-break, so the rendered front is
//!   **bit-identical for any thread count**;
//! * per-worker [`hls_telemetry`] metrics are merged, in index order,
//!   into one report.
//!
//! Grids can be written as a small TOML-subset file ([`parse_grid`])
//! or built programmatically. The `mfhls explore` subcommand and the
//! paper-table runner in `hls-bench` both drive this engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod diskcache;
mod engine;
mod fingerprint;
mod gridfile;
mod pareto;
mod point;
mod pool;

pub use cache::{CacheStats, ExploreCache, Tier, DEFAULT_FRAMES_CAP, DEFAULT_RESULTS_CAP};
pub use diskcache::{DiskCache, DiskStats, DISK_FORMAT_VERSION};
pub use engine::{
    explore, BankPressure, Engine, ExploreOptions, ExploreReport, MfsaDetail, PointMetrics,
    PointResult,
};
pub use fingerprint::{dfg_fingerprint, Fnv1a};
pub use gridfile::{parse_grid, GridError};
pub use pareto::{pareto_front, FrontEntry, Objectives};
pub use point::{Algorithm, DesignPoint};
pub use pool::{default_threads, run_indexed};
