//! The Pareto front over (control steps, FU cost, registers).
//!
//! All three objectives are minimised. The front is computed from the
//! index-ordered result list with a stable tie-break (duplicate
//! objective triples keep the lowest point index), then sorted by
//! `(csteps, fu_cost, registers, index)` — so the rendered front is a
//! pure function of the result list and therefore bit-identical for
//! any thread count.

use crate::engine::{PointMetrics, PointResult};

/// The objective triple of one scheduled point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Objectives {
    /// Control steps actually used (latency).
    pub csteps: u32,
    /// Functional-unit / ALU area in µm².
    pub fu_cost: u64,
    /// Register count (peak live values).
    pub registers: usize,
}

impl Objectives {
    /// Extracts the objectives of a scheduled point.
    pub fn of(m: &PointMetrics) -> Objectives {
        Objectives {
            csteps: m.csteps,
            fu_cost: m.fu_cost,
            registers: m.registers,
        }
    }

    /// Pareto dominance: at least as good everywhere, better somewhere.
    pub fn dominates(&self, other: &Objectives) -> bool {
        self.csteps <= other.csteps
            && self.fu_cost <= other.fu_cost
            && self.registers <= other.registers
            && (self.csteps < other.csteps
                || self.fu_cost < other.fu_cost
                || self.registers < other.registers)
    }
}

/// One entry of the Pareto front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontEntry {
    /// Index of the point in the input grid.
    pub index: usize,
    /// The point's display label.
    pub label: String,
    /// The algorithm that produced it.
    pub algorithm: &'static str,
    /// Its objectives.
    pub objectives: Objectives,
}

/// Computes the Pareto front of the successful points.
///
/// Failed points never enter. Exact-duplicate objective triples are
/// collapsed to the lowest input index (stable tie-break); the
/// surviving entries are sorted by `(csteps, fu_cost, registers,
/// index)`.
pub fn pareto_front(results: &[PointResult]) -> Vec<FrontEntry> {
    let ok: Vec<(usize, &PointResult, Objectives)> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.outcome.as_ref().ok().map(|m| (i, r, Objectives::of(m))))
        .collect();
    let mut front: Vec<FrontEntry> = Vec::new();
    for &(i, r, obj) in &ok {
        let dominated = ok.iter().any(|&(_, _, other)| other.dominates(&obj));
        let duplicate = ok.iter().any(|&(j, _, other)| j < i && other == obj);
        if !dominated && !duplicate {
            front.push(FrontEntry {
                index: i,
                label: r.label.clone(),
                algorithm: r.algorithm.name(),
                objectives: obj,
            });
        }
    }
    front.sort_by_key(|e| {
        (
            e.objectives.csteps,
            e.objectives.fu_cost,
            e.objectives.registers,
            e.index,
        )
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Algorithm;

    fn result(label: &str, csteps: u32, fu_cost: u64, registers: usize) -> PointResult {
        PointResult {
            index: 0,
            label: label.to_string(),
            algorithm: Algorithm::Mfs,
            outcome: Ok(PointMetrics {
                csteps,
                fu_cost,
                registers,
                mix: String::new(),
                reschedules: 0,
                mem: Vec::new(),
                mfsa: None,
            }),
            wall_ns: 0,
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let results = vec![
            result("good", 4, 100, 5),
            result("worse", 5, 200, 6),
            result("tradeoff", 3, 300, 7),
        ];
        let front = pareto_front(&results);
        let labels: Vec<&str> = front.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["tradeoff", "good"]); // sorted by csteps
    }

    #[test]
    fn duplicates_keep_the_lowest_index() {
        let results = vec![result("first", 4, 100, 5), result("twin", 4, 100, 5)];
        let front = pareto_front(&results);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].label, "first");
        assert_eq!(front[0].index, 0);
    }

    #[test]
    fn errors_never_enter_the_front() {
        let mut bad = result("bad", 1, 1, 1);
        bad.outcome = Err("infeasible".into());
        let front = pareto_front(&[bad, result("ok", 4, 100, 5)]);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].label, "ok");
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        let a = Objectives {
            csteps: 4,
            fu_cost: 100,
            registers: 5,
        };
        assert!(!a.dominates(&a));
        let b = Objectives {
            csteps: 4,
            fu_cost: 99,
            registers: 5,
        };
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
    }
}
