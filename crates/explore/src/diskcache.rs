//! The warm on-disk tier of the exploration cache.
//!
//! A restarted daemon starts with an empty in-memory LRU; without a
//! second tier every previously-served point recomputes. This module
//! persists **successfully computed** [`PointMetrics`] under the same
//! content address the memory layer uses — `(DFG fingerprint, point
//! fingerprint)` — in a directory of small self-verifying text entries:
//!
//! * one file per key, named `<dfg_fp>-<point_fp>.pm`, under a
//!   `v<FORMAT>` subdirectory so a future format bump never
//!   misinterprets old bytes;
//! * writes go to a unique temp file in the same directory and land via
//!   `rename(2)`, so a crash mid-write can never leave a half-entry
//!   under a valid name, and concurrent writers (two daemons sharing a
//!   cache dir) each install a complete file;
//! * every entry ends in an FNV-1a checksum line; a truncated, edited
//!   or torn entry fails verification and is treated as a **miss**
//!   (and unlinked so the following store replaces it) — corruption
//!   costs one recompute, never an error and never a crash.
//!
//! Only `Ok` results are persisted: errors are cheap to re-derive and
//! cancellations must never outlive the request that caused them
//! (mirroring the memory layer's `forget` hygiene).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::engine::{BankPressure, MfsaDetail, PointMetrics};
use crate::fingerprint::Fnv1a;

/// On-disk entry format version; bumped on any encoding change.
pub const DISK_FORMAT_VERSION: u32 = 1;

/// Counters of the disk tier, for `/metrics` (`serve.cache.disk.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Entries loaded and verified.
    pub hits: u64,
    /// Lookups with no entry on disk.
    pub misses: u64,
    /// Entries written.
    pub writes: u64,
    /// Entries that failed verification (treated as misses).
    pub corrupt: u64,
    /// I/O errors on read or write (treated as misses / dropped writes).
    pub errors: u64,
}

/// The content-addressed on-disk result store.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
    errors: AtomicU64,
    tmp_seq: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) the cache under `root`. Entries live
    /// in `root/v<FORMAT>/`; only directory creation can fail — every
    /// later read/write error degrades to a miss instead.
    pub fn open(root: &Path) -> io::Result<DiskCache> {
        let dir = root.join(format!("v{DISK_FORMAT_VERSION}"));
        fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The directory entries are stored in (the versioned subdir).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an entry for this key lives at.
    pub fn entry_path(&self, dfg_fp: u64, point_fp: u64) -> PathBuf {
        self.dir.join(format!("{dfg_fp:016x}-{point_fp:016x}.pm"))
    }

    /// Loads and verifies the entry for `(dfg_fp, point_fp)`. Any
    /// failure — absent, unreadable, corrupt — is `None`; corrupt
    /// entries are additionally unlinked so they are recomputed once
    /// and then rewritten, not re-parsed on every request.
    pub fn load(&self, dfg_fp: u64, point_fp: u64) -> Option<PointMetrics> {
        let path = self.entry_path(dfg_fp, point_fp);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match parse_entry(&text, dfg_fp, point_fp) {
            Some(metrics) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(metrics)
            }
            None => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Persists `metrics` for `(dfg_fp, point_fp)`: temp file in the
    /// same directory, then an atomic rename onto the final name.
    /// Failures are counted and swallowed — the disk tier is an
    /// accelerator, never a correctness dependency.
    pub fn store(&self, dfg_fp: u64, point_fp: u64, metrics: &PointMetrics) {
        let body = render_entry(dfg_fp, point_fp, metrics);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let outcome = fs::write(&tmp, body.as_bytes())
            .and_then(|()| fs::rename(&tmp, self.entry_path(dfg_fp, point_fp)));
        match outcome {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&tmp);
            }
        }
    }

    /// A snapshot of the tier's counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Renders the versioned, checksummed entry text.
fn render_entry(dfg_fp: u64, point_fp: u64, m: &PointMetrics) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(256);
    let _ = writeln!(s, "mfhls-cache v{DISK_FORMAT_VERSION}");
    let _ = writeln!(s, "key={dfg_fp:016x}-{point_fp:016x}");
    let _ = writeln!(s, "csteps={}", m.csteps);
    let _ = writeln!(s, "mix={}", escape(&m.mix));
    let _ = writeln!(s, "fu_cost={}", m.fu_cost);
    let _ = writeln!(s, "registers={}", m.registers);
    let _ = writeln!(s, "reschedules={}", m.reschedules);
    for b in &m.mem {
        let _ = writeln!(s, "bank={} {} {}", b.ports, b.peak, escape(&b.bank));
    }
    if let Some(d) = &m.mfsa {
        let _ = writeln!(
            s,
            "mfsa={} {} {} {}",
            d.total_cost,
            d.mux,
            d.muxin,
            escape(&d.alus)
        );
    }
    let sum = checksum(s.as_bytes());
    let _ = writeln!(s, "sum={sum:016x}");
    s
}

/// Parses and verifies one entry; `None` on any discrepancy.
fn parse_entry(text: &str, dfg_fp: u64, point_fp: u64) -> Option<PointMetrics> {
    // The checksum line must close the file and cover everything
    // before it — a truncated tail or appended garbage both fail here.
    let head_len = text.rfind("sum=")?;
    let (head, tail) = text.split_at(head_len);
    let sum = tail.strip_prefix("sum=")?.strip_suffix('\n')?;
    if u64::from_str_radix(sum, 16).ok()? != checksum(head.as_bytes()) {
        return None;
    }

    let mut lines = head.lines();
    if lines.next()? != format!("mfhls-cache v{DISK_FORMAT_VERSION}") {
        return None;
    }
    if lines.next()? != format!("key={dfg_fp:016x}-{point_fp:016x}") {
        return None;
    }
    let mut csteps = None;
    let mut mix = None;
    let mut fu_cost = None;
    let mut registers = None;
    let mut reschedules = None;
    let mut mem = Vec::new();
    let mut mfsa = None;
    for line in lines {
        let (name, value) = line.split_once('=')?;
        match name {
            "csteps" => csteps = Some(value.parse().ok()?),
            "mix" => mix = Some(unescape(value)?),
            "fu_cost" => fu_cost = Some(value.parse().ok()?),
            "registers" => registers = Some(value.parse().ok()?),
            "reschedules" => reschedules = Some(value.parse().ok()?),
            "bank" => {
                let mut parts = value.splitn(3, ' ');
                mem.push(BankPressure {
                    ports: parts.next()?.parse().ok()?,
                    peak: parts.next()?.parse().ok()?,
                    bank: unescape(parts.next()?)?,
                });
            }
            "mfsa" => {
                let mut parts = value.splitn(4, ' ');
                mfsa = Some(MfsaDetail {
                    total_cost: parts.next()?.parse().ok()?,
                    mux: parts.next()?.parse().ok()?,
                    muxin: parts.next()?.parse().ok()?,
                    alus: unescape(parts.next()?)?,
                });
            }
            _ => return None,
        }
    }
    Some(PointMetrics {
        csteps: csteps?,
        mix: mix?,
        fu_cost: fu_cost?,
        registers: registers?,
        reschedules: reschedules?,
        mem,
        mfsa,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointMetrics {
        PointMetrics {
            csteps: 7,
            mix: "2*,1+,1-".into(),
            fu_cost: 123456,
            registers: 5,
            reschedules: 2,
            mem: vec![BankPressure {
                bank: "coeff_ram".into(),
                ports: 2,
                peak: 2,
            }],
            mfsa: Some(MfsaDetail {
                alus: "2(+-*),(+)".into(),
                total_cost: 99999,
                mux: 4,
                muxin: 11,
            }),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mfhls-diskcache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_every_field() {
        let dir = tmpdir("roundtrip");
        let cache = DiskCache::open(&dir).unwrap();
        assert!(cache.load(1, 2).is_none());
        cache.store(1, 2, &sample());
        assert_eq!(cache.load(1, 2), Some(sample()));
        // A plain metrics value (no mem, no mfsa) round-trips too.
        let plain = PointMetrics {
            mem: Vec::new(),
            mfsa: None,
            ..sample()
        };
        cache.store(3, 4, &plain);
        assert_eq!(cache.load(3, 4), Some(plain));
        assert_eq!(
            cache.stats(),
            DiskStats {
                hits: 2,
                misses: 1,
                writes: 2,
                corrupt: 0,
                errors: 0
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn survives_a_daemon_restart() {
        let dir = tmpdir("restart");
        {
            let cache = DiskCache::open(&dir).unwrap();
            cache.store(9, 9, &sample());
        }
        let reopened = DiskCache::open(&dir).unwrap();
        assert_eq!(reopened.load(9, 9), Some(sample()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_tampered_entries_are_misses() {
        let dir = tmpdir("corrupt");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store(5, 6, &sample());
        let path = cache.entry_path(5, 6);
        let full = fs::read_to_string(&path).unwrap();

        // Truncation at every byte boundary must fail verification.
        for cut in [0, 1, full.len() / 2, full.len() - 1] {
            fs::write(&path, &full.as_bytes()[..cut]).unwrap();
            assert!(cache.load(5, 6).is_none(), "cut at {cut}");
            // The corrupt entry was unlinked: the next lookup is a
            // plain miss, so a recompute-and-store repairs the key.
            assert!(!path.exists(), "cut at {cut} should unlink");
            cache.store(5, 6, &sample());
            assert_eq!(cache.load(5, 6), Some(sample()));
        }

        // A flipped digit fails the checksum.
        let tampered = full.replace("csteps=7", "csteps=8");
        fs::write(&path, tampered).unwrap();
        assert!(cache.load(5, 6).is_none());
        assert!(cache.stats().corrupt >= 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_from_a_different_key_or_version_are_rejected() {
        let dir = tmpdir("keymix");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store(1, 1, &sample());
        // Copy the (valid, checksummed) entry onto another key's name:
        // the embedded key check must reject it.
        let stray = fs::read(cache.entry_path(1, 1)).unwrap();
        fs::write(cache.entry_path(2, 2), &stray).unwrap();
        assert!(cache.load(2, 2).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
