//! Grid files: a TOML subset describing an exploration grid.
//!
//! The format (documented for users in `EXPERIMENTS.md`):
//!
//! ```toml
//! # comments and blank lines are ignored
//! [defaults]            # applies to every point below
//! algorithm = ["mfs", "list"]   # array -> cross product
//! cs = [4, 5, 6]                # array -> cross product
//! clock = 100                   # chaining clock in ns
//! latency = 2                   # functional-pipelining latency
//! limits = ["*=2", "+=1"]       # per-op FU bounds (op symbol = count)
//! pipeline = ["*"]              # structurally pipelined ops (MFS)
//! style = 2                     # MFSA design style (1 or 2)
//! weights = [1, 1, 1, 1]        # MFSA Liapunov weights (t, a, m, r)
//! iterate = 3                   # feedback-guided refinement rounds
//!
//! [[point]]             # one explicit point (inherits the defaults)
//! label = "tight"
//! algorithm = "mfsa"
//! cs = 4
//! ```
//!
//! `algorithm` and `cs` may be arrays; a `[[point]]` (or the defaults
//! section when no `[[point]]` exists) expands to the cross product in
//! file order — algorithms outer, time constraints inner. Every other
//! key is scalar. Unknown keys and malformed values are hard errors:
//! a silently ignored constraint would corrupt a sweep.

use std::collections::{BTreeMap, BTreeSet};

use hls_celllib::OpKind;
use hls_dfg::FuClass;

use crate::point::{Algorithm, DesignPoint};

/// A grid-file parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridError {
    /// 1-based line of the offending entry (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "grid: {}", self.message)
        } else {
            write!(f, "grid line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for GridError {}

fn err(line: usize, message: impl Into<String>) -> GridError {
    GridError {
        line,
        message: message.into(),
    }
}

/// One scalar value of the subset: integer or string.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Scalar {
    Int(u32),
    Str(String),
}

impl Scalar {
    fn parse(raw: &str, line: usize) -> Result<Scalar, GridError> {
        let raw = raw.trim();
        if let Some(stripped) = raw.strip_prefix('"') {
            let Some(inner) = stripped.strip_suffix('"') else {
                return Err(err(line, format!("unterminated string: {raw}")));
            };
            return Ok(Scalar::Str(inner.to_string()));
        }
        raw.parse::<u32>().map(Scalar::Int).map_err(|_| {
            err(
                line,
                format!("expected an integer or \"string\", got {raw}"),
            )
        })
    }

    fn as_int(&self, key: &str, line: usize) -> Result<u32, GridError> {
        match self {
            Scalar::Int(v) => Ok(*v),
            Scalar::Str(s) => Err(err(line, format!("{key} wants an integer, got \"{s}\""))),
        }
    }

    fn as_str(&self, key: &str, line: usize) -> Result<&str, GridError> {
        match self {
            Scalar::Str(s) => Ok(s),
            Scalar::Int(v) => Err(err(line, format!("{key} wants a string, got {v}"))),
        }
    }
}

/// A parsed `key = value` with the value as scalar or array.
#[derive(Debug, Clone)]
enum Value {
    One(Scalar),
    Many(Vec<Scalar>),
}

fn parse_value(raw: &str, line: usize) -> Result<Value, GridError> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('[') {
        let Some(inner) = stripped.strip_suffix(']') else {
            return Err(err(line, format!("unterminated array: {raw}")));
        };
        let inner = inner.trim();
        if inner.is_empty() {
            return Ok(Value::Many(Vec::new()));
        }
        let items = inner
            .split(',')
            .map(|item| Scalar::parse(item, line))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Value::Many(items));
    }
    Ok(Value::One(Scalar::parse(raw, line)?))
}

fn op_by_symbol(symbol: &str) -> Option<OpKind> {
    OpKind::ALL.into_iter().find(|k| k.symbol() == symbol)
}

/// The accumulated settings of one section (defaults or a point).
#[derive(Debug, Clone, Default)]
struct Section {
    label: Option<String>,
    algorithms: Option<Vec<Algorithm>>,
    cs: Option<Vec<u32>>,
    clock: Option<u32>,
    latency: Option<u32>,
    limits: Option<BTreeMap<FuClass, u32>>,
    pipeline: Option<BTreeSet<OpKind>>,
    style: Option<u8>,
    weights: Option<(u32, u32, u32, u32)>,
    iterate: Option<u32>,
}

impl Section {
    fn apply(&mut self, key: &str, value: Value, line: usize) -> Result<(), GridError> {
        let scalars = |v: &Value| -> Vec<Scalar> {
            match v {
                Value::One(s) => vec![s.clone()],
                Value::Many(list) => list.clone(),
            }
        };
        let one = |v: &Value| -> Result<Scalar, GridError> {
            match v {
                Value::One(s) => Ok(s.clone()),
                Value::Many(_) => Err(err(line, format!("{key} must be a single value"))),
            }
        };
        match key {
            "label" => self.label = Some(one(&value)?.as_str(key, line)?.to_string()),
            "algorithm" => {
                let algs = scalars(&value)
                    .iter()
                    .map(|s| {
                        let name = s.as_str(key, line)?;
                        Algorithm::parse(name)
                            .ok_or_else(|| err(line, format!("unknown algorithm {name}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if algs.is_empty() {
                    return Err(err(line, "algorithm array is empty"));
                }
                self.algorithms = Some(algs);
            }
            "cs" => {
                let cs = scalars(&value)
                    .iter()
                    .map(|s| s.as_int(key, line))
                    .collect::<Result<Vec<_>, _>>()?;
                if cs.is_empty() {
                    return Err(err(line, "cs array is empty"));
                }
                self.cs = Some(cs);
            }
            "clock" => self.clock = Some(one(&value)?.as_int(key, line)?),
            "latency" => self.latency = Some(one(&value)?.as_int(key, line)?),
            "limits" => {
                let mut limits = BTreeMap::new();
                for s in scalars(&value) {
                    let spec = s.as_str(key, line)?;
                    let Some((sym, count)) = spec.split_once('=') else {
                        return Err(err(line, format!("limit {spec} is not op=count")));
                    };
                    let op = op_by_symbol(sym.trim())
                        .ok_or_else(|| err(line, format!("unknown op symbol {sym}")))?;
                    let count: u32 = count
                        .trim()
                        .parse()
                        .map_err(|_| err(line, format!("bad limit count in {spec}")))?;
                    limits.insert(FuClass::Op(op), count);
                }
                self.limits = Some(limits);
            }
            "pipeline" => {
                let mut ops = BTreeSet::new();
                for s in scalars(&value) {
                    let sym = s.as_str(key, line)?;
                    let op = op_by_symbol(sym)
                        .ok_or_else(|| err(line, format!("unknown op symbol {sym}")))?;
                    ops.insert(op);
                }
                self.pipeline = Some(ops);
            }
            "style" => {
                let style = one(&value)?.as_int(key, line)?;
                if !(1..=2).contains(&style) {
                    return Err(err(line, format!("style must be 1 or 2, got {style}")));
                }
                self.style = Some(style as u8);
            }
            "weights" => {
                let w = scalars(&value)
                    .iter()
                    .map(|s| s.as_int(key, line))
                    .collect::<Result<Vec<_>, _>>()?;
                let [t, a, m, r] = w[..] else {
                    return Err(err(line, "weights wants exactly 4 integers"));
                };
                self.weights = Some((t, a, m, r));
            }
            "iterate" => self.iterate = Some(one(&value)?.as_int(key, line)?),
            other => return Err(err(line, format!("unknown key {other}"))),
        }
        Ok(())
    }

    fn inherit(&self, defaults: &Section) -> Section {
        Section {
            label: self.label.clone(),
            algorithms: self
                .algorithms
                .clone()
                .or_else(|| defaults.algorithms.clone()),
            cs: self.cs.clone().or_else(|| defaults.cs.clone()),
            clock: self.clock.or(defaults.clock),
            latency: self.latency.or(defaults.latency),
            limits: self.limits.clone().or_else(|| defaults.limits.clone()),
            pipeline: self.pipeline.clone().or_else(|| defaults.pipeline.clone()),
            style: self.style.or(defaults.style),
            weights: self.weights.or(defaults.weights),
            iterate: self.iterate.or(defaults.iterate),
        }
    }

    fn expand(&self, out: &mut Vec<DesignPoint>, line: usize) -> Result<(), GridError> {
        let algorithms = self
            .algorithms
            .clone()
            .ok_or_else(|| err(line, "no algorithm given (here or in [defaults])"))?;
        let cs_list = self
            .cs
            .clone()
            .ok_or_else(|| err(line, "no cs given (here or in [defaults])"))?;
        let multi = algorithms.len() * cs_list.len() > 1;
        for &alg in &algorithms {
            for &cs in &cs_list {
                let mut p = DesignPoint::new(alg, cs);
                if let Some(label) = &self.label {
                    // Cross-product points get a disambiguating suffix.
                    p.label = if multi {
                        format!("{label} {alg}@T{cs}")
                    } else {
                        label.clone()
                    };
                }
                if let Some(limits) = &self.limits {
                    p.fu_limits = limits.clone();
                }
                p.clock = self.clock;
                p.latency = self.latency;
                if let Some(pipeline) = &self.pipeline {
                    p.pipeline_ops = pipeline.clone();
                }
                p.style = self.style.unwrap_or(1);
                p.weights = self.weights;
                p.iterate = self.iterate.unwrap_or(0);
                out.push(p);
            }
        }
        Ok(())
    }
}

/// Parses a grid file into its design points, in file order.
///
/// # Errors
///
/// [`GridError`] (with a line number) on any unknown key, malformed
/// value, unknown algorithm/op name, or a file that yields no points.
pub fn parse_grid(text: &str) -> Result<Vec<DesignPoint>, GridError> {
    #[derive(PartialEq)]
    enum Where {
        Preamble,
        Defaults,
        Point,
    }
    let mut defaults = Section::default();
    let mut current = Section::default();
    let mut current_line = 0usize;
    let mut state = Where::Preamble;
    let mut points = Vec::new();

    let close = |state: &Where,
                 current: &mut Section,
                 defaults: &mut Section,
                 points: &mut Vec<DesignPoint>,
                 line: usize|
     -> Result<(), GridError> {
        match state {
            Where::Preamble => Ok(()),
            Where::Defaults => {
                *defaults = current.clone();
                Ok(())
            }
            Where::Point => current.inherit(defaults).expand(points, line),
        }
    };

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.split_once('#') {
            Some((before, _)) => before.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        if line == "[defaults]" {
            close(
                &state,
                &mut current,
                &mut defaults,
                &mut points,
                current_line,
            )?;
            current = Section::default();
            current_line = line_no;
            state = Where::Defaults;
        } else if line == "[[point]]" {
            close(
                &state,
                &mut current,
                &mut defaults,
                &mut points,
                current_line,
            )?;
            current = Section::default();
            current_line = line_no;
            state = Where::Point;
        } else if line.starts_with('[') {
            return Err(err(line_no, format!("unknown section {line}")));
        } else {
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(line_no, format!("expected key = value, got {line}")));
            };
            let value = parse_value(value, line_no)?;
            current.apply(key.trim(), value, line_no)?;
        }
    }
    close(
        &state,
        &mut current,
        &mut defaults,
        &mut points,
        current_line,
    )?;

    // A file with only [defaults] is itself a grid: expand the defaults.
    if points.is_empty() && (defaults.algorithms.is_some() || defaults.cs.is_some()) {
        defaults.expand(&mut points, 0)?;
    }
    if points.is_empty() {
        return Err(err(0, "the grid file defines no points"));
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cross_product() {
        let points = parse_grid(
            r#"
            # a sweep
            [defaults]
            algorithm = ["mfs", "list"]
            cs = [4, 5]
            "#,
        )
        .unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].algorithm, Algorithm::Mfs);
        assert_eq!(points[0].cs, 4);
        assert_eq!(points[3].algorithm, Algorithm::List);
        assert_eq!(points[3].cs, 5);
    }

    #[test]
    fn points_inherit_and_override_defaults() {
        let points = parse_grid(
            r#"
            [defaults]
            algorithm = "mfs"
            cs = 8
            clock = 100

            [[point]]
            label = "tight"
            cs = 4

            [[point]]
            algorithm = "mfsa"
            style = 2
            "#,
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].label, "tight");
        assert_eq!(points[0].cs, 4);
        assert_eq!(points[0].clock, Some(100));
        assert_eq!(points[1].algorithm, Algorithm::Mfsa);
        assert_eq!(points[1].cs, 8);
        assert_eq!(points[1].style, 2);
    }

    #[test]
    fn limits_pipeline_and_weights_parse() {
        let points = parse_grid(
            r#"
            [[point]]
            algorithm = "mfs"
            cs = 9
            limits = ["*=2", "+=1"]
            pipeline = ["*"]
            weights = [1, 2, 3, 4]
            "#,
        )
        .unwrap();
        let p = &points[0];
        assert_eq!(p.fu_limits[&FuClass::Op(OpKind::Mul)], 2);
        assert_eq!(p.fu_limits[&FuClass::Op(OpKind::Add)], 1);
        assert!(p.pipeline_ops.contains(&OpKind::Mul));
        assert_eq!(p.weights, Some((1, 2, 3, 4)));
        assert_eq!(p.iterate, 0, "iterate defaults to one-shot");
    }

    #[test]
    fn iterate_parses_and_inherits() {
        let points = parse_grid(
            r#"
            [defaults]
            algorithm = "mfs"
            cs = 8
            iterate = 3

            [[point]]
            cs = 9
            iterate = 0

            [[point]]
            cs = 6
            "#,
        )
        .unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].iterate, 0, "explicit override wins");
        assert_eq!(points[1].iterate, 3, "points inherit the default");
        let e = parse_grid("[defaults]\nalgorithm = \"mfs\"\ncs = 4\niterate = \"x\"").unwrap_err();
        assert!(e.to_string().contains("integer"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_grid("[defaults]\nalgorithm = \"nope\"\ncs = 4").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unknown algorithm"));
        let e = parse_grid("[defaults]\nwat = 3\n").unwrap_err();
        assert!(e.to_string().contains("unknown key"));
        assert!(parse_grid("").is_err());
        let e = parse_grid("[[point]]\nalgorithm = \"mfs\"\n").unwrap_err();
        assert!(e.to_string().contains("no cs"));
    }
}
