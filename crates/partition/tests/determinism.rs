//! Thread-count determinism: a sharded run must produce byte-identical
//! output for any worker count. The shard pool returns results in index
//! order and the partitioner, merge and stitcher are pure functions of
//! the graph, so `--threads 1` and `--threads 8` must agree on every
//! slot, every counter, and every reported statistic.

use hls_benchmarks::generate::{generate, scaling_workload, GeneratorConfig};
use hls_celllib::{Library, TimingSpec};
use hls_dfg::Dfg;
use hls_partition::{synth_sharded, ShardAlg, ShardedConfig, ShardedOutcome};
use hls_telemetry::{Instrument, Metrics, NullSink};

fn run(
    dfg: &Dfg,
    spec: &TimingSpec,
    config: &ShardedConfig,
) -> (ShardedOutcome, Vec<(String, u64)>) {
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let out = {
        let mut instr = Instrument::new(&mut sink, &mut metrics);
        synth_sharded(dfg, spec, config, &mut instr).expect("sharded synthesis succeeds")
    };
    let counters: Vec<(String, u64)> = metrics
        .counters()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    (out, counters)
}

fn assert_identical(
    a: &(ShardedOutcome, Vec<(String, u64)>),
    b: &(ShardedOutcome, Vec<(String, u64)>),
) {
    let (oa, ca) = a;
    let (ob, cb) = b;
    // Every slot of the final schedule, in node order.
    assert_eq!(
        oa.schedule.iter().collect::<Vec<_>>(),
        ob.schedule.iter().collect::<Vec<_>>(),
        "schedules diverge between thread counts"
    );
    assert_eq!(oa.schedule.control_steps(), ob.schedule.control_steps());
    assert_eq!(oa.csteps, ob.csteps);
    assert_eq!(oa.shards, ob.shards);
    assert_eq!(oa.cut_edges, ob.cut_edges);
    assert_eq!(oa.boundary_nodes, ob.boundary_nodes);
    assert_eq!(oa.refine_moves, ob.refine_moves);
    assert_eq!(oa.stitch_moves, ob.stitch_moves);
    assert_eq!(oa.telescoped_saved, ob.telescoped_saved);
    assert_eq!(oa.shard_csteps, ob.shard_csteps);
    // Merged per-shard scheduler counters.
    assert_eq!(
        oa.shard_metrics.counters().collect::<Vec<_>>(),
        ob.shard_metrics.counters().collect::<Vec<_>>(),
        "shard metrics diverge between thread counts"
    );
    // The instrumented partition.* counters.
    assert_eq!(ca, cb, "partition counters diverge between thread counts");
}

#[test]
fn mfs_threads_1_vs_8_byte_identical() {
    let spec = TimingSpec::uniform_single_cycle();
    let dfg = generate(&scaling_workload(2_000));
    let base = ShardedConfig::new(6, ShardAlg::Mfs);
    let one = run(&dfg, &spec, &base.clone().with_threads(1));
    let eight = run(&dfg, &spec, &base.with_threads(8));
    assert_identical(&one, &eight);
}

#[test]
fn mfsa_threads_1_vs_8_byte_identical() {
    let spec = TimingSpec::uniform_single_cycle();
    let dfg = generate(&scaling_workload(900));
    let base = ShardedConfig::new(4, ShardAlg::Mfsa(Library::ncr_like()));
    let one = run(&dfg, &spec, &base.clone().with_threads(1));
    let eight = run(&dfg, &spec, &base.with_threads(8));
    assert_identical(&one, &eight);
}

#[test]
fn branchy_memory_graph_threads_1_vs_8_byte_identical() {
    let spec = TimingSpec::uniform_single_cycle();
    let dfg = generate(&GeneratorConfig {
        seed: 7,
        layers: 14,
        width: 10,
        branch_pct: 40,
        ..Default::default()
    });
    let base = ShardedConfig::new(3, ShardAlg::Mfs);
    let one = run(&dfg, &spec, &base.clone().with_threads(1));
    let eight = run(&dfg, &spec, &base.clone().with_threads(8));
    assert_identical(&one, &eight);

    let mem = hls_benchmarks::memory::array_fir(12, 2);
    let one = run(&mem, &spec, &base.clone().with_threads(1));
    let eight = run(&mem, &spec, &base.with_threads(8));
    assert_identical(&one, &eight);
}

#[test]
fn repeated_runs_are_reproducible() {
    let spec = TimingSpec::uniform_single_cycle();
    let dfg = generate(&scaling_workload(1_200));
    let config = ShardedConfig::new(5, ShardAlg::Mfs);
    let a = run(&dfg, &spec, &config);
    let b = run(&dfg, &spec, &config);
    assert_identical(&a, &b);
}
