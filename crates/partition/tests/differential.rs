//! Small-graph differential suite: sharded synthesis versus the
//! monolithic scheduler.
//!
//! The sharded pipeline must (a) pass the same independent
//! `hls-schedule` verification the monolithic schedule passes, (b) stay
//! port-safe on memory benchmarks, and (c) achieve a horizon within a
//! bounded delta of the monolithic one. The bound is the telescoping
//! worst case: every seam can cost at most the downstream shard's
//! slack plus one alignment step, so
//! `sharded ≤ monolithic + shards × (slack + 1)` (DESIGN.md §15).

use hls_benchmarks::generate::{generate, scaling_workload, GeneratorConfig};
use hls_celllib::{Library, TimingSpec};
use hls_dfg::{CriticalPath, Dfg};
use hls_mem::check_port_safety;
use hls_partition::{synth_sharded, ShardAlg, ShardedConfig};
use hls_schedule::{verify, VerifyOptions};
use hls_telemetry::{Instrument, Metrics, NullSink};
use moveframe::mfs::{self, MfsConfig};
use moveframe::mfsa::{self, MfsaConfig};

fn sharded(dfg: &Dfg, spec: &TimingSpec, config: &ShardedConfig) -> hls_partition::ShardedOutcome {
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let mut instr = Instrument::new(&mut sink, &mut metrics);
    synth_sharded(dfg, spec, config, &mut instr).expect("sharded synthesis succeeds")
}

/// Achieved horizon of a (complete) schedule.
fn achieved(dfg: &Dfg, spec: &TimingSpec, schedule: &hls_schedule::Schedule) -> u32 {
    schedule
        .iter()
        .map(|(n, s)| s.step.finish(dfg.node(n).kind().cycles(spec)).get())
        .max()
        .unwrap()
}

/// The documented quality bound for a `k`-shard run with `slack` steps
/// of per-shard slack.
fn delta_bound(shards: usize, slack: u32) -> u32 {
    shards as u32 * (slack + 1)
}

#[test]
fn mfs_sharded_matches_monolithic_within_the_bound() {
    let spec = TimingSpec::uniform_single_cycle();
    for (ops, shards) in [(500, 3), (1_000, 4), (2_000, 8)] {
        let dfg = generate(&scaling_workload(ops));
        let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;

        let mono = mfs::schedule(&dfg, &spec, &MfsConfig::time_constrained(cp + 8))
            .expect("monolithic MFS");
        assert!(verify(&dfg, &mono.schedule, &spec, VerifyOptions::default()).is_empty());
        let mono_csteps = achieved(&dfg, &spec, &mono.schedule);

        let config = ShardedConfig::new(shards, ShardAlg::Mfs);
        let out = sharded(&dfg, &spec, &config);
        // Verified inside synth_sharded; re-verify independently here.
        assert!(
            verify(&dfg, &out.schedule, &spec, VerifyOptions::default()).is_empty(),
            "{ops} ops / {shards} shards: sharded schedule must verify"
        );
        let delta = out.csteps.saturating_sub(mono_csteps);
        let bound = delta_bound(out.shards, config.shard_slack);
        eprintln!(
            "# differential mfs ops={ops} shards={shards}: mono={mono_csteps} sharded={} delta={delta} bound={bound}",
            out.csteps
        );
        assert!(
            delta <= bound,
            "{ops} ops / {shards} shards: csteps delta {delta} exceeds bound {bound}"
        );
    }
}

#[test]
fn mfsa_sharded_matches_monolithic_within_the_bound() {
    let spec = TimingSpec::uniform_single_cycle();
    let dfg = generate(&scaling_workload(800));
    let cp = CriticalPath::compute(&dfg, &spec).steps() as u32;

    let mono = mfsa::schedule(&dfg, &spec, &MfsaConfig::new(cp + 8, Library::ncr_like()))
        .expect("monolithic MFSA");
    let mono_csteps = achieved(&dfg, &spec, &mono.schedule);

    let config = ShardedConfig::new(4, ShardAlg::Mfsa(Library::ncr_like()));
    let out = sharded(&dfg, &spec, &config);
    assert!(verify(&dfg, &out.schedule, &spec, VerifyOptions::default()).is_empty());
    let delta = out.csteps.saturating_sub(mono_csteps);
    let bound = delta_bound(out.shards, config.shard_slack);
    eprintln!(
        "# differential mfsa: mono={mono_csteps} sharded={} delta={delta} bound={bound}",
        out.csteps
    );
    assert!(delta <= bound, "csteps delta {delta} exceeds bound {bound}");
}

#[test]
fn sharded_memory_benchmarks_stay_port_safe_across_seams() {
    let spec = TimingSpec::uniform_single_cycle();
    for ports in [1u32, 2, 4] {
        for dfg in [
            hls_benchmarks::memory::array_fir(12, ports),
            hls_benchmarks::memory::matvec(4, ports),
        ] {
            let out = sharded(&dfg, &spec, &ShardedConfig::new(3, ShardAlg::Mfs));
            assert!(verify(&dfg, &out.schedule, &spec, VerifyOptions::default()).is_empty());
            let violations = check_port_safety(&dfg, &out.schedule).expect("complete schedule");
            assert!(
                violations.is_empty(),
                "{} @ {ports} ports: seam crossing broke port safety: {violations:?}",
                dfg.name()
            );
        }
    }
}

#[test]
fn branchy_graphs_survive_sharding() {
    let spec = TimingSpec::uniform_single_cycle();
    let dfg = generate(&GeneratorConfig {
        seed: 23,
        layers: 10,
        width: 12,
        branch_pct: 60,
        ..Default::default()
    });
    let out = sharded(&dfg, &spec, &ShardedConfig::new(5, ShardAlg::Mfs));
    assert!(verify(&dfg, &out.schedule, &spec, VerifyOptions::default()).is_empty());
}

#[test]
fn two_cycle_multiplies_cross_seams_correctly() {
    let spec = TimingSpec::two_cycle_multiply();
    let dfg = generate(&scaling_workload(600));
    let out = sharded(&dfg, &spec, &ShardedConfig::new(4, ShardAlg::Mfs));
    assert!(verify(&dfg, &out.schedule, &spec, VerifyOptions::default()).is_empty());
}

#[test]
fn unsupported_graphs_are_refused_with_a_typed_error() {
    use hls_dfg::DfgBuilder;
    let mut b = DfgBuilder::new("looped");
    let x = b.input("x");
    b.begin_loop("l0", 4);
    b.op("body", hls_celllib::OpKind::Inc, &[x]).unwrap();
    b.end_loop();
    let dfg = b.finish().unwrap();
    let spec = TimingSpec::uniform_single_cycle();
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let mut instr = Instrument::new(&mut sink, &mut metrics);
    let err = synth_sharded(
        &dfg,
        &spec,
        &ShardedConfig::new(2, ShardAlg::Mfs),
        &mut instr,
    )
    .unwrap_err();
    assert!(matches!(err, hls_partition::PartitionError::Unsupported(_)));
}
