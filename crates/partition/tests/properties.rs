//! Property tests for the partition invariants:
//!
//! - every node lands in exactly one shard, and shards tile the graph;
//! - cut edges respect precedence in the stitched global schedule;
//! - each shard's local schedule stays inside its own time frames
//!   (`MF ⊆ PF` per shard);
//! - memory benchmarks remain port-safe across the seams.

use proptest::prelude::*;

use hls_benchmarks::generate::{generate, GeneratorConfig};
use hls_celllib::TimingSpec;
use hls_dfg::Dfg;
use hls_mem::check_port_safety;
use hls_partition::{extract, partition, schedule_shards, synth_sharded, ShardAlg, ShardedConfig};
use hls_schedule::TimeFrames;
use hls_telemetry::{Instrument, Metrics, NullSink};

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (1u64..1000, 2usize..10, 2usize..10, 0u32..60).prop_map(|(seed, layers, width, branch)| {
        GeneratorConfig {
            seed,
            layers,
            width,
            branch_pct: branch,
            ..GeneratorConfig::default()
        }
    })
}

fn sharded(dfg: &Dfg, spec: &TimingSpec, shards: usize) -> hls_partition::ShardedOutcome {
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let mut instr = Instrument::new(&mut sink, &mut metrics);
    synth_sharded(
        dfg,
        spec,
        &ShardedConfig::new(shards, ShardAlg::Mfs),
        &mut instr,
    )
    .expect("sharded synthesis succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_node_lands_in_exactly_one_shard(
        config in config_strategy(),
        k in 2usize..9,
    ) {
        let dfg = generate(&config);
        let p = partition(&dfg, k).unwrap();
        let mut seen = vec![0u32; dfg.node_count()];
        for s in 0..p.shard_count() {
            for &n in p.members(s) {
                seen[n.index()] += 1;
                prop_assert_eq!(p.shard_of(n), s, "membership and shard_of must agree");
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "every node in exactly one shard");
        // Acyclicity across shards: every edge points to an
        // equal-or-later shard.
        for &n in dfg.topo_order() {
            for &m in dfg.succs(n) {
                prop_assert!(p.shard_of(n) <= p.shard_of(m));
            }
        }
    }

    #[test]
    fn cut_edges_respect_precedence_after_stitching(
        config in config_strategy(),
        k in 2usize..7,
    ) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let p = partition(&dfg, k).unwrap();
        let out = sharded(&dfg, &spec, k);
        for &(u, v) in p.cut_edges() {
            let su = out.schedule.slot(u).expect("complete");
            let sv = out.schedule.slot(v).expect("complete");
            let u_finish = su.step.finish(dfg.node(u).kind().cycles(&spec)).get();
            prop_assert!(
                sv.step.get() > u_finish,
                "cut edge {u:?}->{v:?}: consumer starts at {} but producer finishes at {u_finish}",
                sv.step.get()
            );
        }
    }

    #[test]
    fn shard_schedules_stay_inside_their_time_frames(
        config in config_strategy(),
        k in 2usize..7,
    ) {
        let dfg = generate(&config);
        let spec = TimingSpec::uniform_single_cycle();
        let p = partition(&dfg, k).unwrap();
        let shards: Vec<_> = (0..p.shard_count())
            .map(|s| extract(&dfg, &p, s).unwrap())
            .collect();
        let scheds = schedule_shards(&shards, &spec, &ShardAlg::Mfs, 2, 1).unwrap();
        for (shard, sched) in shards.iter().zip(&scheds) {
            let tf = TimeFrames::compute(&shard.dfg, &spec, sched.csteps).unwrap();
            for (n, slot) in sched.schedule.iter() {
                prop_assert!(
                    slot.step >= tf.asap(n) && slot.step <= tf.alap(n),
                    "node {n:?} at step {} outside frame [{}, {}]",
                    slot.step.get(), tf.asap(n).get(), tf.alap(n).get()
                );
            }
        }
    }

    #[test]
    fn memory_benchmarks_stay_port_safe_across_seams(
        taps in 4usize..16,
        ports in 1u32..4,
        k in 2usize..5,
    ) {
        let dfg = hls_benchmarks::memory::array_fir(taps, ports);
        let spec = TimingSpec::uniform_single_cycle();
        let out = sharded(&dfg, &spec, k);
        let violations = check_port_safety(&dfg, &out.schedule).expect("complete schedule");
        prop_assert!(violations.is_empty(), "port violations: {violations:?}");
    }
}
