//! Cut-minimizing acyclic partitioning of a [`Dfg`].
//!
//! Nodes are seeded into shards by levelized order — every node sorted
//! by `(dependency level, id)` and the sorted sequence cut into `k`
//! near-equal contiguous blocks. Because an edge always increases the
//! level, every edge points from a shard to an equal-or-later shard, so
//! the shard sequence is itself a topological order and each shard's
//! subgraph is schedulable in isolation.
//!
//! The seed is then improved by Kernighan–Lin-style boundary
//! refinement: deterministic sweeps over the boundary nodes, moving a
//! node to an adjacent shard when the move is legal (preserves the
//! forward-edge invariant), strictly reduces the number of cut edges,
//! and keeps the shard sizes within the balance tolerance. Ties are
//! broken by fixed rules (larger gain first, then the lower shard id),
//! so the partition is a pure function of the graph.

use hls_dfg::{Dfg, NodeId, NodeKind};

use crate::PartitionError;

/// How far a shard may drift from the ideal `nodes / k` size during
/// refinement, in percent.
const BALANCE_TOLERANCE_PCT: usize = 20;

/// Refinement sweeps over the boundary set. Gains shrink geometrically;
/// four passes capture almost all of the improvement on the seeded
/// workloads.
const REFINE_PASSES: usize = 4;

/// An acyclic `k`-way partition of a [`Dfg`].
///
/// Invariants (checked by the property suite):
/// * every node belongs to exactly one shard;
/// * for every edge `u → v`, `shard(u) <= shard(v)` — shard ids form a
///   topological order of the quotient graph;
/// * no shard is empty.
#[derive(Debug, Clone)]
pub struct Partition {
    assignment: Vec<u32>,
    members: Vec<Vec<NodeId>>,
    cut_edges: Vec<(NodeId, NodeId)>,
    refine_moves: u64,
}

impl Partition {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.members.len()
    }

    /// The shard a node belongs to.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.assignment[node.index()] as usize
    }

    /// The members of one shard, sorted by node id (which is a
    /// topological order of the parent graph).
    pub fn members(&self, shard: usize) -> &[NodeId] {
        &self.members[shard]
    }

    /// Every edge whose endpoints live in different shards, as
    /// `(pred, succ)` pairs sorted by `(pred, succ)`.
    pub fn cut_edges(&self) -> &[(NodeId, NodeId)] {
        &self.cut_edges
    }

    /// Boundary refinement moves the KL pass committed.
    pub fn refine_moves(&self) -> u64 {
        self.refine_moves
    }

    /// The nodes incident to at least one cut edge, sorted by id.
    pub fn boundary_nodes(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.assignment.len()];
        for &(u, v) in &self.cut_edges {
            seen[u.index()] = true;
            seen[v.index()] = true;
        }
        (0..seen.len())
            .filter(|&i| seen[i])
            .map(NodeId::from_index)
            .collect()
    }
}

/// Dependency level of every node: 0 for sources, else
/// `1 + max(level of preds)`.
fn levels(dfg: &Dfg) -> Vec<u32> {
    let mut level = vec![0u32; dfg.node_count()];
    for &id in dfg.topo_order() {
        let l = dfg
            .preds(id)
            .iter()
            .map(|p| level[p.index()] + 1)
            .max()
            .unwrap_or(0);
        level[id.index()] = l;
    }
    level
}

/// Rejects graph features a shard cannot reproduce in isolation:
/// pipeline stages must stay step-consecutive and loop bodies carry
/// region-level constraints, neither of which survives a seam.
fn check_supported(dfg: &Dfg) -> Result<(), PartitionError> {
    if !dfg.loop_regions().is_empty() {
        return Err(PartitionError::Unsupported(
            "graphs with loop regions cannot be sharded".into(),
        ));
    }
    for (id, node) in dfg.nodes() {
        match node.kind() {
            NodeKind::Stage { .. } => {
                return Err(PartitionError::Unsupported(format!(
                    "pipeline stage node `{}` ({id:?}) cannot be sharded",
                    node.name()
                )))
            }
            NodeKind::LoopBody { .. } => {
                return Err(PartitionError::Unsupported(format!(
                    "loop body node `{}` ({id:?}) cannot be sharded",
                    node.name()
                )))
            }
            _ => {}
        }
    }
    Ok(())
}

/// Cuts `dfg` into `k` shards (clamped to the node count). See the
/// module docs for the algorithm and determinism argument.
pub fn partition(dfg: &Dfg, k: usize) -> Result<Partition, PartitionError> {
    check_supported(dfg)?;
    let n = dfg.node_count();
    if n == 0 {
        return Err(PartitionError::Unsupported("empty graph".into()));
    }
    let k = k.clamp(1, n);

    // Levelized seeding: sort by (level, id), cut into contiguous
    // near-equal blocks.
    let level = levels(dfg);
    let mut order: Vec<NodeId> = dfg.node_ids().collect();
    order.sort_by_key(|id| (level[id.index()], id.index()));
    let mut assignment = vec![0u32; n];
    let base = n / k;
    let extra = n % k;
    let mut pos = 0usize;
    let mut sizes = vec![0usize; k];
    for (shard, size) in sizes.iter_mut().enumerate() {
        *size = base + usize::from(shard < extra);
        for &id in &order[pos..pos + *size] {
            assignment[id.index()] = shard as u32;
        }
        pos += *size;
    }

    // KL-style boundary refinement.
    let target = n.div_ceil(k);
    let tol = (target * BALANCE_TOLERANCE_PCT / 100).max(1);
    let min_size = target.saturating_sub(tol).max(1);
    let max_size = target + tol;
    let mut refine_moves = 0u64;
    if k > 1 {
        for _ in 0..REFINE_PASSES {
            let mut moved = false;
            for id in dfg.node_ids() {
                let s = assignment[id.index()] as usize;
                // Gain of moving `id` from shard `s` to shard `t`: cut
                // edges removed minus cut edges created, over both
                // neighbour lists.
                let gain = |t: usize| -> i64 {
                    let mut g = 0i64;
                    for &p in dfg.preds(id) {
                        let ps = assignment[p.index()] as usize;
                        g += i64::from(ps != s) - i64::from(ps != t);
                    }
                    for &v in dfg.succs(id) {
                        let vs = assignment[v.index()] as usize;
                        g += i64::from(vs != s) - i64::from(vs != t);
                    }
                    g
                };
                // A move right is legal when no successor would be left
                // behind; a move left when no predecessor would be
                // overtaken. Both preserve `shard(u) <= shard(v)`.
                let legal = |t: usize| -> bool {
                    if sizes[t] + 1 > max_size || sizes[s] - 1 < min_size {
                        return false;
                    }
                    if t > s {
                        dfg.succs(id)
                            .iter()
                            .all(|v| assignment[v.index()] as usize >= t)
                    } else {
                        dfg.preds(id)
                            .iter()
                            .all(|p| assignment[p.index()] as usize <= t)
                    }
                };
                let mut best: Option<(i64, usize)> = None;
                for t in [s.wrapping_sub(1), s + 1] {
                    if t >= k || t == s || !legal(t) {
                        continue;
                    }
                    let g = gain(t);
                    // Strictly positive gain only; prefer the larger
                    // gain, then the lower shard id (t-1 is probed
                    // first, so `>` keeps it on ties).
                    if g > 0 && best.is_none_or(|(bg, _)| g > bg) {
                        best = Some((g, t));
                    }
                }
                if let Some((_, t)) = best {
                    sizes[s] -= 1;
                    sizes[t] += 1;
                    assignment[id.index()] = t as u32;
                    refine_moves += 1;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
    }

    // Materialize members and cut edges.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for id in dfg.node_ids() {
        members[assignment[id.index()] as usize].push(id);
    }
    debug_assert!(members.iter().all(|m| !m.is_empty()));
    let mut cut_edges = Vec::new();
    for id in dfg.node_ids() {
        for &v in dfg.succs(id) {
            if assignment[id.index()] != assignment[v.index()] {
                cut_edges.push((id, v));
            }
        }
    }
    cut_edges.sort();
    cut_edges.dedup();

    Ok(Partition {
        assignment,
        members,
        cut_edges,
        refine_moves,
    })
}

/// The automatic shard count `mfhls synth --shard auto` uses: one shard
/// per ~16k nodes, so per-shard grids stay small enough for the dense
/// scheduler's sweet spot while the pool has enough jobs to balance.
pub fn auto_shards(nodes: usize) -> usize {
    nodes.div_ceil(16_000).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_benchmarks::generate::{generate, scaling_workload, GeneratorConfig};

    #[test]
    fn every_node_in_exactly_one_shard_and_edges_point_forward() {
        let dfg = generate(&scaling_workload(1_000));
        let p = partition(&dfg, 7).unwrap();
        assert_eq!(p.shard_count(), 7);
        let mut counted = 0usize;
        for s in 0..p.shard_count() {
            for &id in p.members(s) {
                assert_eq!(p.shard_of(id), s);
                counted += 1;
            }
        }
        assert_eq!(counted, dfg.node_count());
        for id in dfg.node_ids() {
            for &v in dfg.succs(id) {
                assert!(p.shard_of(id) <= p.shard_of(v), "edge must point forward");
            }
        }
    }

    #[test]
    fn refinement_never_increases_the_cut() {
        let dfg = generate(&GeneratorConfig::sized(2_000, 9));
        let p = partition(&dfg, 8).unwrap();
        // Rebuild the un-refined seed for comparison.
        let level = levels(&dfg);
        let mut order: Vec<NodeId> = dfg.node_ids().collect();
        order.sort_by_key(|id| (level[id.index()], id.index()));
        let n = dfg.node_count();
        let (base, extra) = (n / 8, n % 8);
        let mut seed = vec![0u32; n];
        let mut pos = 0;
        for shard in 0..8usize {
            let size = base + usize::from(shard < extra);
            for &id in &order[pos..pos + size] {
                seed[id.index()] = shard as u32;
            }
            pos += size;
        }
        let seed_cut = dfg
            .node_ids()
            .flat_map(|id| dfg.succs(id).iter().map(move |&v| (id, v)))
            .filter(|&(u, v)| seed[u.index()] != seed[v.index()])
            .count();
        assert!(p.cut_edges().len() <= seed_cut);
    }

    #[test]
    fn deterministic_across_runs() {
        let dfg = generate(&scaling_workload(1_000));
        let a = partition(&dfg, 5).unwrap();
        let b = partition(&dfg, 5).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.cut_edges, b.cut_edges);
    }

    #[test]
    fn shard_count_is_clamped_to_the_node_count() {
        let dfg = generate(&GeneratorConfig {
            layers: 2,
            width: 2,
            ..Default::default()
        });
        let p = partition(&dfg, 64).unwrap();
        assert_eq!(p.shard_count(), 4);
        assert!((0..4).all(|s| p.members(s).len() == 1));
    }

    #[test]
    fn auto_shard_count_scales_with_nodes() {
        assert_eq!(auto_shards(100), 1);
        assert_eq!(auto_shards(16_000), 1);
        assert_eq!(auto_shards(16_001), 2);
        assert_eq!(auto_shards(500_000), 32);
        assert_eq!(auto_shards(1_000_000), 63);
    }
}
