//! # hls-partition — hierarchical sharded synthesis
//!
//! One occupancy grid per FU class does not survive a million nodes.
//! This crate turns the single-grid scheduler into a scalable
//! hierarchical one:
//!
//! 1. **Cut** ([`partition`]): levelized seeding plus Kernighan–Lin
//!    boundary refinement splits the DFG into `k` weakly-coupled,
//!    acyclic shards with deterministic tie-breaks.
//! 2. **Extract** ([`extract`]): each shard is rebuilt as a standalone
//!    [`hls_dfg::Dfg`] — cut-in values become primary inputs, branch
//!    structure and bank/array ids are preserved exactly.
//! 3. **Schedule** ([`schedule_shards`]): shards run MFS or MFSA in
//!    parallel on the hls-explore self-scheduling pool; results return
//!    in index order, so the output is bit-identical for any thread
//!    count.
//! 4. **Merge & stitch** ([`merge_and_stitch`]): shard schedules
//!    telescope onto one global time axis (minimal offsets under cut
//!    precedence and bank-port capacity) and boundary nodes are
//!    re-framed across the seams with the vacate→re-frame machinery
//!    and [`moveframe::BoundsCache`].
//!
//! [`synth_sharded`] threads the four phases together, emits
//! `partition.*` counters and phase spans, and verifies the final
//! schedule with [`hls_schedule::verify`] before returning it.
//!
//! ```
//! use hls_benchmarks::generate::{generate, scaling_workload};
//! use hls_celllib::TimingSpec;
//! use hls_partition::{synth_sharded, ShardAlg, ShardedConfig};
//! use hls_telemetry::{Instrument, Metrics, NullSink};
//!
//! let dfg = generate(&scaling_workload(500));
//! let spec = TimingSpec::uniform_single_cycle();
//! let config = ShardedConfig::new(4, ShardAlg::Mfs);
//! let mut sink = NullSink;
//! let mut metrics = Metrics::new();
//! let mut instr = Instrument::new(&mut sink, &mut metrics);
//! let out = synth_sharded(&dfg, &spec, &config, &mut instr).unwrap();
//! assert!(out.schedule.is_complete());
//! assert_eq!(out.shards, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cut;
pub mod extract;
pub mod shard;
pub mod stitch;

use hls_celllib::TimingSpec;
use hls_dfg::Dfg;
use hls_schedule::{verify_traced, Schedule, VerifyOptions};
use hls_telemetry::{Instrument, Metrics};

pub use cut::{auto_shards, partition, Partition};
pub use extract::{extract, ShardGraph};
pub use shard::{schedule_shards, ShardAlg, ShardSchedule};
pub use stitch::{merge_and_stitch, MergeOutcome};

/// Errors of the sharded synthesis pipeline.
#[derive(Debug)]
pub enum PartitionError {
    /// The graph uses a feature sharding cannot preserve (pipeline
    /// stages, loop regions).
    Unsupported(String),
    /// The stitched schedule failed independent verification — an
    /// internal invariant violation, never expected.
    VerificationFailed(Vec<hls_schedule::Violation>),
    /// An internal pipeline step failed; always a bug.
    Internal(String),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::Unsupported(why) => write!(f, "sharding unsupported: {why}"),
            PartitionError::VerificationFailed(v) => {
                write!(
                    f,
                    "stitched schedule failed verification: {} violation(s)",
                    v.len()
                )
            }
            PartitionError::Internal(why) => write!(f, "internal sharding error: {why}"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// Configuration of one sharded synthesis run.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Requested shard count (`0` = automatic from the node count).
    pub shards: usize,
    /// Worker threads for the shard pool (`0` = all cores). The output
    /// is identical for every value.
    pub threads: usize,
    /// The per-shard scheduler.
    pub alg: ShardAlg,
    /// Control-step slack above each shard's local critical path.
    pub shard_slack: u32,
    /// Boundary re-frame sweep cap.
    pub max_stitch_sweeps: usize,
}

impl ShardedConfig {
    /// A config with the default slack (2) and sweep cap (4).
    pub fn new(shards: usize, alg: ShardAlg) -> Self {
        ShardedConfig {
            shards,
            threads: 0,
            alg,
            shard_slack: 2,
            max_stitch_sweeps: 4,
        }
    }

    /// Overrides the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The result of a sharded synthesis run.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// The verified global schedule.
    pub schedule: Schedule,
    /// Achieved horizon (last occupied control step).
    pub csteps: u32,
    /// Shard count actually used (after clamping).
    pub shards: usize,
    /// Cut edges of the final partition.
    pub cut_edges: usize,
    /// Nodes incident to a cut edge.
    pub boundary_nodes: usize,
    /// KL refinement moves committed by the partitioner.
    pub refine_moves: u64,
    /// Boundary moves committed by the stitcher.
    pub stitch_moves: u64,
    /// Steps saved by telescoping versus naive concatenation.
    pub telescoped_saved: u64,
    /// Per-shard local control-step budgets.
    pub shard_csteps: Vec<u32>,
    /// Per-shard scheduler counters, merged in shard order —
    /// deterministic for any thread count. Fold into a caller registry
    /// with [`Metrics::merge`].
    pub shard_metrics: Metrics,
}

/// Runs the full partition → extract → parallel-schedule → merge →
/// stitch → verify pipeline. Deterministic for any
/// [`ShardedConfig::threads`].
pub fn synth_sharded(
    dfg: &Dfg,
    spec: &TimingSpec,
    config: &ShardedConfig,
    instr: &mut Instrument<'_>,
) -> Result<ShardedOutcome, PartitionError> {
    let k = if config.shards == 0 {
        auto_shards(dfg.node_count())
    } else {
        config.shards
    };
    let part = instr.span("partition.cut", |_| partition(dfg, k))?;
    instr.inc("partition.shards", part.shard_count() as u64);
    instr.inc("partition.cut_edges", part.cut_edges().len() as u64);
    instr.inc("partition.refine_moves", part.refine_moves());
    let boundary = part.boundary_nodes().len();
    instr.inc("partition.boundary_nodes", boundary as u64);

    let shards = instr.span("partition.extract", |_| {
        (0..part.shard_count())
            .map(|s| extract(dfg, &part, s))
            .collect::<Result<Vec<_>, _>>()
    })?;

    let threads = if config.threads == 0 {
        hls_explore::default_threads()
    } else {
        config.threads
    };
    let scheds = instr.span("partition.schedule_shards", |_| {
        schedule_shards(&shards, spec, &config.alg, config.shard_slack, threads)
    })?;
    let mut shard_metrics = Metrics::new();
    for s in &scheds {
        shard_metrics.merge(&s.metrics);
    }
    let shard_csteps: Vec<u32> = scheds.iter().map(|s| s.csteps).collect();

    let merged = instr.span("partition.stitch", |_| {
        merge_and_stitch(dfg, spec, &part, &shards, &scheds, config.max_stitch_sweeps)
    })?;
    instr.inc("partition.stitch_moves", merged.stitch_moves);
    instr.inc("partition.stitch_sweeps", merged.stitch_sweeps);
    instr.inc("partition.telescoped_steps_saved", merged.telescoped_saved);
    instr.inc("partition.csteps", merged.csteps as u64);

    let violations = verify_traced(dfg, &merged.schedule, spec, VerifyOptions::default(), instr);
    if !violations.is_empty() {
        return Err(PartitionError::VerificationFailed(violations));
    }

    Ok(ShardedOutcome {
        schedule: merged.schedule,
        csteps: merged.csteps,
        shards: part.shard_count(),
        cut_edges: part.cut_edges().len(),
        boundary_nodes: boundary,
        refine_moves: part.refine_moves(),
        stitch_moves: merged.stitch_moves,
        telescoped_saved: merged.telescoped_saved,
        shard_csteps,
        shard_metrics,
    })
}
