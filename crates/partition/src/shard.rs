//! Parallel per-shard scheduling on the hls-explore self-scheduling
//! thread pool.
//!
//! Each shard is scheduled independently — MFS time-constrained or
//! MFSA, per [`ShardAlg`] — under its own control-step budget of
//! `local critical path + shard_slack`. Jobs run through
//! [`hls_explore::run_indexed`], whose results come back in index
//! order regardless of the worker count, so the shard schedules (and
//! the per-shard metrics merged from them) are bit-identical for any
//! `--threads`.

use std::collections::BTreeMap;

use hls_celllib::{Library, TimingSpec};
use hls_dfg::{CriticalPath, FuClass};
use hls_schedule::Schedule;
use hls_telemetry::{Instrument, Metrics, NullSink};
use moveframe::mfs::{self, MfsConfig};
use moveframe::mfsa::{self, MfsaConfig};

use crate::extract::ShardGraph;
use crate::PartitionError;

/// Which scheduler runs inside each shard.
#[derive(Debug, Clone)]
pub enum ShardAlg {
    /// Time-constrained move-frame scheduling (unbounded units).
    Mfs,
    /// Mixed scheduling-allocation against a cell library.
    Mfsa(Library),
}

impl ShardAlg {
    /// Short name for telemetry and snapshots.
    pub fn name(&self) -> &'static str {
        match self {
            ShardAlg::Mfs => "mfs",
            ShardAlg::Mfsa(_) => "mfsa",
        }
    }
}

/// One shard's local schedule plus the numbers the merge needs.
#[derive(Debug)]
pub struct ShardSchedule {
    /// The schedule over the shard's local graph.
    pub schedule: Schedule,
    /// The local control-step budget (`local cp + slack`).
    pub csteps: u32,
    /// Per-class peak unit columns (max [`hls_schedule::FuIndex`] used).
    pub fu_counts: BTreeMap<FuClass, u32>,
    /// ALU instances bound by MFSA (0 for MFS shards).
    pub alu_instances: u32,
    /// The shard's scheduler counters, merged into the caller's
    /// registry in shard order.
    pub metrics: Metrics,
}

/// Schedules every shard in parallel; deterministic for any `threads`.
pub fn schedule_shards(
    shards: &[ShardGraph],
    spec: &TimingSpec,
    alg: &ShardAlg,
    shard_slack: u32,
    threads: usize,
) -> Result<Vec<ShardSchedule>, PartitionError> {
    let results = hls_explore::run_indexed(shards.len(), threads.max(1), |i| {
        schedule_one(&shards[i], spec, alg, shard_slack)
            .map_err(|e| PartitionError::Internal(format!("shard {i}: {e}")))
    });
    results.into_iter().collect()
}

fn schedule_one(
    shard: &ShardGraph,
    spec: &TimingSpec,
    alg: &ShardAlg,
    shard_slack: u32,
) -> Result<ShardSchedule, PartitionError> {
    let cp = CriticalPath::compute(&shard.dfg, spec).steps() as u32;
    // `cp + slack` can be infeasible when the shard serializes on a
    // scarce resource (a one-port bank, say). A fully serial schedule
    // always fits in the total cycle count, so double the budget toward
    // that ceiling until the shard schedules; the ladder is a pure
    // function of the shard, so determinism is unaffected.
    let serial: u32 = shard
        .dfg
        .topo_order()
        .iter()
        .map(|&n| shard.dfg.node(n).kind().cycles(spec) as u32)
        .sum();
    let ceiling = serial.max(cp + shard_slack);
    let mut cs = cp + shard_slack;
    loop {
        match attempt(shard, spec, alg, cs) {
            Ok(sched) => return Ok(sched),
            Err(e) if cs >= ceiling => return Err(e),
            Err(_) => cs = (cs.saturating_mul(2)).min(ceiling),
        }
    }
}

fn attempt(
    shard: &ShardGraph,
    spec: &TimingSpec,
    alg: &ShardAlg,
    cs: u32,
) -> Result<ShardSchedule, PartitionError> {
    let mut sink = NullSink;
    let mut metrics = Metrics::new();
    let schedule = {
        let mut instr = Instrument::new(&mut sink, &mut metrics);
        match alg {
            ShardAlg::Mfs => {
                let config = MfsConfig::time_constrained(cs);
                mfs::schedule_traced(&shard.dfg, spec, &config, &mut instr)
                    .map_err(|e| PartitionError::Internal(e.to_string()))?
                    .schedule
            }
            ShardAlg::Mfsa(library) => {
                let config = MfsaConfig::new(cs, library.clone());
                mfsa::schedule_traced(&shard.dfg, spec, &config, &mut instr)
                    .map_err(|e| PartitionError::Internal(e.to_string()))?
                    .schedule
            }
        }
    };
    let fu_counts = schedule.fu_counts();
    let alu_instances = schedule.alu_instance_count() as u32;
    Ok(ShardSchedule {
        schedule,
        csteps: cs,
        fu_counts,
        alu_instances,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::partition;
    use crate::extract::extract;
    use hls_benchmarks::generate::{generate, scaling_workload};

    #[test]
    fn shard_schedules_are_thread_count_independent() {
        let dfg = generate(&scaling_workload(600));
        let p = partition(&dfg, 4).unwrap();
        let shards: Vec<_> = (0..p.shard_count())
            .map(|s| extract(&dfg, &p, s).unwrap())
            .collect();
        let spec = TimingSpec::uniform_single_cycle();
        let one = schedule_shards(&shards, &spec, &ShardAlg::Mfs, 2, 1).unwrap();
        let eight = schedule_shards(&shards, &spec, &ShardAlg::Mfs, 2, 8).unwrap();
        assert_eq!(one.len(), eight.len());
        for (a, b) in one.iter().zip(&eight) {
            assert_eq!(a.csteps, b.csteps);
            assert_eq!(
                a.schedule.iter().collect::<Vec<_>>(),
                b.schedule.iter().collect::<Vec<_>>()
            );
        }
    }
}
