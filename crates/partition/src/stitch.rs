//! Telescoping merge of shard schedules and boundary re-framing.
//!
//! **Merge.** Shards are placed onto a shared global time axis in shard
//! order. Each shard gets the minimal step offset that (a) satisfies
//! every incoming cut edge — the consumer's global start must fall
//! strictly after the producer's global finish — and (b) keeps every
//! memory bank's per-step access count within its port budget. Because
//! independent shards overlap in time ("telescoping"), the merged
//! horizon is far below the naive sum of per-shard budgets; the steps
//! saved are reported as a counter. Unit columns are disjoint across
//! shards for non-memory classes (each shard's columns are shifted past
//! the previous shards'), and likewise for ALU instances. Memory bank
//! ports are a *global* hard budget, so memory accesses are instead
//! re-bound to the first free port of their bank at their global step —
//! the capacity check in (b) guarantees one exists.
//!
//! **Stitch.** The merged schedule is exact but conservative around the
//! seams: a boundary node was scheduled knowing only its own shard.
//! The stitcher sweeps the boundary nodes in topological order and, for
//! each, vacates it from the dense state (schedule, [`BoundsCache`],
//! occupancy grids) and re-frames it with [`probe_move_frame`] — the
//! same vacate→re-frame machinery `crates/core/tests/reframe.rs` pins —
//! taking the earliest feasible position if that improves on its
//! current slot. For MFSA-merged schedules (ALU-bound units, outside
//! the class-grid world of the move frame) the stitcher instead slides
//! boundary nodes to the earliest free step on their own unit, using
//! the same [`BoundsCache`] feasibility bounds. Sweeps repeat until a
//! fixpoint or the sweep cap.

use std::collections::BTreeMap;

use hls_celllib::{Delay, TimingSpec};
use hls_dfg::{Dfg, FuClass, NodeId};
use hls_schedule::{CStep, FuIndex, Grid, Schedule, Slot, TimeFrames, UnitId};
use moveframe::{probe_move_frame, BoundsCache};

use crate::cut::Partition;
use crate::extract::ShardGraph;
use crate::shard::ShardSchedule;
use crate::PartitionError;

/// Columns the re-frame probe exposes per class. Boundary compression
/// only needs *a* free column at an earlier step, not the full
/// (potentially tens of thousands wide) column space, and the probe
/// cost is linear in the visible columns.
const STITCH_COLUMN_CAP: u32 = 64;

/// The merged global schedule plus merge/stitch statistics.
#[derive(Debug)]
pub struct MergeOutcome {
    /// The stitched global schedule (horizon = `csteps`).
    pub schedule: Schedule,
    /// Achieved horizon: the last occupied control step.
    pub csteps: u32,
    /// Per-shard global step offsets chosen by the telescoping merge.
    pub shard_offsets: Vec<u32>,
    /// Steps saved versus naively concatenating the shard budgets.
    pub telescoped_saved: u64,
    /// Boundary moves the stitcher committed.
    pub stitch_moves: u64,
    /// Stitch sweeps run (including the final fixpoint sweep).
    pub stitch_sweeps: u64,
}

/// Merges the shard schedules onto one global time axis and stitches
/// the seams. See the module docs.
pub fn merge_and_stitch(
    dfg: &Dfg,
    spec: &TimingSpec,
    partition: &Partition,
    shards: &[ShardGraph],
    scheds: &[ShardSchedule],
    max_stitch_sweeps: usize,
) -> Result<MergeOutcome, PartitionError> {
    let n = dfg.node_count();
    let mut slots: Vec<Option<Slot>> = vec![None; n];
    // Per-node global finish step, for cut-edge lower bounds.
    let mut finish = vec![0u32; n];
    let bank_ports: Vec<u32> = dfg.memory().banks().iter().map(|b| b.ports()).collect();
    // Per-bank per-step access counts and port occupancy on the global
    // axis; grown as the horizon extends.
    let mut bank_usage: Vec<Vec<u32>> = vec![Vec::new(); bank_ports.len()];
    let mut port_busy: Vec<Vec<Vec<bool>>> = bank_ports
        .iter()
        .map(|&p| vec![Vec::new(); p as usize])
        .collect();

    // Column bases: non-memory classes and ALU instances are shifted
    // per shard so units stay disjoint across shards.
    let mut class_base: BTreeMap<FuClass, u32> = BTreeMap::new();
    let mut alu_base = 0u32;
    let mut naive_offset = 0u64;
    let mut shard_offsets = Vec::with_capacity(scheds.len());
    let mut telescoped_saved = 0u64;
    let mut horizon = 0u32;

    for (si, (shard, sched)) in shards.iter().zip(scheds).enumerate() {
        // (a) Precedence lower bound over incoming cut edges.
        let mut lower = 0u32;
        for (local, &global) in shard.to_global.iter().enumerate() {
            let local_id = NodeId::from_index(local);
            let start = sched
                .schedule
                .slot(local_id)
                .ok_or_else(|| {
                    PartitionError::Internal(format!("shard {si}: unscheduled local node {local}"))
                })?
                .step
                .get();
            for &p in dfg.preds(global) {
                if partition.shard_of(p) != si {
                    // global start = local start + offset must exceed
                    // the producer's global finish.
                    let need = (finish[p.index()] + 1).saturating_sub(start);
                    lower = lower.max(need);
                }
            }
        }

        // (b) Bank-port capacity: local per-step access histogram must
        // fit on top of the accumulated global histogram.
        let mut local_mem: Vec<Vec<(u32, u8)>> = vec![Vec::new(); bank_ports.len()];
        for (local, &global) in shard.to_global.iter().enumerate() {
            if let FuClass::Mem(bank) = dfg.node(global).kind().fu_class() {
                let local_id = NodeId::from_index(local);
                let slot = sched.schedule.slot(local_id).expect("checked above");
                let cycles = dfg.node(global).kind().cycles(spec);
                local_mem[bank.index()].push((slot.step.get(), cycles));
            }
        }
        let mut offset = lower;
        'fit: loop {
            for (bank, accesses) in local_mem.iter().enumerate() {
                let mut extra: BTreeMap<u32, u32> = BTreeMap::new();
                for &(start, cycles) in accesses {
                    for k in 0..cycles as u32 {
                        *extra.entry(offset + start + k).or_insert(0) += 1;
                    }
                }
                for (&step, &count) in &extra {
                    let used = bank_usage[bank].get(step as usize).copied().unwrap_or(0);
                    if used + count > bank_ports[bank] {
                        offset += 1;
                        continue 'fit;
                    }
                }
            }
            break;
        }
        shard_offsets.push(offset);
        telescoped_saved += naive_offset.saturating_sub(offset as u64);
        naive_offset += sched.csteps as u64;

        // Commit this shard's placements to the global axis.
        for (local, &global) in shard.to_global.iter().enumerate() {
            let local_id = NodeId::from_index(local);
            let slot = sched.schedule.slot(local_id).expect("checked above");
            let step = CStep::new(slot.step.get() + offset);
            let cycles = dfg.node(global).kind().cycles(spec);
            let unit = match slot.unit {
                UnitId::Fu {
                    class: class @ FuClass::Mem(bank),
                    ..
                } => {
                    // Re-bind to the first port of the bank free over
                    // the access span; capacity check (b) guarantees a
                    // per-step port exists, and single-step accesses
                    // make the greedy choice exact.
                    let ports = &mut port_busy[bank.index()];
                    let span: Vec<usize> = (0..cycles as u32)
                        .map(|k| (step.get() + k) as usize)
                        .collect();
                    let port = (0..ports.len())
                        .find(|&p| {
                            span.iter()
                                .all(|&s| !ports[p].get(s).copied().unwrap_or(false))
                        })
                        .ok_or_else(|| {
                            PartitionError::Internal(format!(
                                "no free port on bank {bank:?} at step {step}"
                            ))
                        })?;
                    for &s in &span {
                        if ports[port].len() <= s {
                            ports[port].resize(s + 1, false);
                        }
                        ports[port][s] = true;
                        let usage = &mut bank_usage[bank.index()];
                        if usage.len() <= s {
                            usage.resize(s + 1, 0);
                        }
                        usage[s] += 1;
                    }
                    UnitId::Fu {
                        class,
                        index: FuIndex::new(port as u32 + 1),
                    }
                }
                UnitId::Fu { class, index } => UnitId::Fu {
                    class,
                    index: FuIndex::new(index.get() + class_base.get(&class).copied().unwrap_or(0)),
                },
                UnitId::Alu { instance } => UnitId::Alu {
                    instance: instance + alu_base,
                },
            };
            slots[global.index()] = Some(Slot { step, unit });
            finish[global.index()] = step.finish(cycles).get();
            horizon = horizon.max(finish[global.index()]);
        }
        for (&class, &count) in &sched.fu_counts {
            if !matches!(class, FuClass::Mem(_)) {
                *class_base.entry(class).or_insert(0) += count;
            }
        }
        alu_base += sched.alu_instances;
    }

    let mut schedule = Schedule::new(dfg, horizon.max(1));
    for (i, slot) in slots.iter().enumerate() {
        let slot = slot
            .ok_or_else(|| PartitionError::Internal(format!("merge left node {i} unscheduled")))?;
        schedule.assign(NodeId::from_index(i), slot);
    }

    let uses_alu = schedule
        .iter()
        .any(|(_, s)| matches!(s.unit, UnitId::Alu { .. }));
    let (stitch_moves, stitch_sweeps) = if uses_alu {
        stitch_alu(dfg, spec, partition, &mut schedule, max_stitch_sweeps)
    } else {
        stitch_reframe(
            dfg,
            spec,
            partition,
            &mut schedule,
            horizon,
            max_stitch_sweeps,
        )?
    };

    // The horizon can only shrink under stitching; re-derive it.
    let csteps = schedule
        .iter()
        .map(|(n, s)| s.step.finish(dfg.node(n).kind().cycles(spec)).get())
        .max()
        .unwrap_or(1);
    Ok(MergeOutcome {
        schedule,
        csteps,
        shard_offsets,
        telescoped_saved,
        stitch_moves,
        stitch_sweeps,
    })
}

/// Boundary nodes in topological order — the sweep order of both
/// stitchers.
fn boundary_in_topo_order(dfg: &Dfg, partition: &Partition) -> Vec<NodeId> {
    let boundary = partition.boundary_nodes();
    let mut is_boundary = vec![false; dfg.node_count()];
    for &b in &boundary {
        is_boundary[b.index()] = true;
    }
    dfg.topo_order()
        .iter()
        .copied()
        .filter(|id| is_boundary[id.index()])
        .collect()
}

/// Move-frame stitching for class-grid (MFS-merged) schedules: vacate
/// each boundary node and re-place it at the earliest position of its
/// re-computed move frame.
fn stitch_reframe(
    dfg: &Dfg,
    spec: &TimingSpec,
    partition: &Partition,
    schedule: &mut Schedule,
    horizon: u32,
    max_sweeps: usize,
) -> Result<(u64, u64), PartitionError> {
    let frames = TimeFrames::compute(dfg, spec, horizon)
        .map_err(|e| PartitionError::Internal(format!("stitch frames: {e}")))?;
    let mut bounds = BoundsCache::new(dfg, spec, None);
    let mut offsets = vec![Delay::ZERO; dfg.node_count()];
    // One occupancy grid per class, wide enough for the merged columns.
    let mut grids: BTreeMap<FuClass, Grid> = schedule
        .fu_counts()
        .into_iter()
        .map(|(class, max_fu)| (class, Grid::new(class, horizon, max_fu.max(1))))
        .collect();
    for (node, slot) in schedule.iter() {
        let UnitId::Fu { class, index } = slot.unit else {
            unreachable!("reframe stitching runs on Fu-bound schedules only");
        };
        grids
            .get_mut(&class)
            .expect("fu_counts covers every bound class")
            .occupy(node, slot.step, index, bounds.cycles(node));
    }
    for (node, slot) in schedule.iter().collect::<Vec<_>>() {
        bounds.on_assign(dfg, node, slot.step);
    }

    let order = boundary_in_topo_order(dfg, partition);
    let mut moves = 0u64;
    let mut sweeps = 0u64;
    for _ in 0..max_sweeps {
        sweeps += 1;
        let mut moved = false;
        for &node in &order {
            let cur = schedule.slot(node).expect("merged schedule is complete");
            let UnitId::Fu { class, index } = cur.unit else {
                unreachable!("checked above");
            };
            let grid = grids.get_mut(&class).expect("class grid exists");
            // Vacate from every piece of the dense state…
            schedule.unassign(node);
            bounds.on_unassign(dfg, schedule, &mut offsets, node);
            grid.vacate(node);
            // …re-frame…
            let snapshot = probe_move_frame(
                dfg,
                spec,
                &frames,
                schedule,
                None,
                &offsets,
                &bounds,
                node,
                grid,
                grid.max_fu().min(STITCH_COLUMN_CAP),
            );
            // …and take the earliest (step, column), keeping the old
            // slot when nothing better is visible.
            let old = (cur.step, index);
            let best = snapshot
                .movable
                .iter()
                .map(|p| (p.step, p.fu))
                .min()
                .filter(|&p| p < old)
                .unwrap_or(old);
            schedule.assign(
                node,
                Slot {
                    step: best.0,
                    unit: UnitId::Fu {
                        class,
                        index: best.1,
                    },
                },
            );
            bounds.on_assign(dfg, node, best.0);
            grid.occupy(node, best.0, best.1, bounds.cycles(node));
            if best != old {
                moves += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    Ok((moves, sweeps))
}

/// Stitching for ALU-bound (MFSA-merged) schedules: slide each boundary
/// node to the earliest dependency-feasible free step on its own unit.
/// Same-unit moves preserve both the allocation and (for memory
/// accesses) the port binding.
fn stitch_alu(
    dfg: &Dfg,
    spec: &TimingSpec,
    partition: &Partition,
    schedule: &mut Schedule,
    max_sweeps: usize,
) -> (u64, u64) {
    let mut bounds = BoundsCache::new(dfg, spec, None);
    for (node, slot) in schedule.iter().collect::<Vec<_>>() {
        bounds.on_assign(dfg, node, slot.step);
    }
    // Per-unit per-step occupant counts (counts, not flags: mutually
    // exclusive operations legitimately share a cell).
    let mut busy: BTreeMap<UnitId, Vec<u16>> = BTreeMap::new();
    for (node, slot) in schedule.iter() {
        let cells = busy.entry(slot.unit).or_default();
        for k in 0..bounds.cycles(node) as u32 {
            let s = (slot.step.get() + k) as usize;
            if cells.len() <= s {
                cells.resize(s + 1, 0);
            }
            cells[s] += 1;
        }
    }

    let order = boundary_in_topo_order(dfg, partition);
    let mut offsets = vec![Delay::ZERO; dfg.node_count()];
    let mut moves = 0u64;
    let mut sweeps = 0u64;
    for _ in 0..max_sweeps {
        sweeps += 1;
        let mut moved = false;
        for &node in &order {
            let cur = schedule.slot(node).expect("merged schedule is complete");
            let cycles = bounds.cycles(node) as u32;
            let cells = busy.get_mut(&cur.unit).expect("unit has occupants");
            for k in 0..cycles {
                cells[(cur.step.get() + k) as usize] -= 1;
            }
            schedule.unassign(node);
            bounds.on_unassign(dfg, schedule, &mut offsets, node);
            // Earliest step after every scheduled predecessor's finish
            // whose unit cells are free across the span. Moving only
            // earlier keeps scheduled successors feasible.
            let lower = bounds.pred_finish(node) + 1;
            let target = (lower..cur.step.get())
                .find(|&s| {
                    (0..cycles).all(|k| cells.get((s + k) as usize).copied().unwrap_or(0) == 0)
                })
                .map(CStep::new)
                .unwrap_or(cur.step);
            for k in 0..cycles {
                let s = (target.get() + k) as usize;
                if cells.len() <= s {
                    cells.resize(s + 1, 0);
                }
                cells[s] += 1;
            }
            schedule.assign(
                node,
                Slot {
                    step: target,
                    unit: cur.unit,
                },
            );
            bounds.on_assign(dfg, node, target);
            if target != cur.step {
                moves += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    (moves, sweeps)
}
