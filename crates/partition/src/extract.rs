//! Sub-DFG extraction: rebuilding one shard as a standalone [`Dfg`].
//!
//! Shard members are re-emitted through [`DfgBuilder`] in ascending
//! global-id order — the builder's own creation order, hence a
//! behavioural/topological order — so every referenced signal already
//! exists when a node is created. Signals produced outside the shard
//! (cut-in values) become primary inputs of the shard graph, named by
//! their global signal name; the precedence they carried is enforced at
//! merge time through the partition's cut-edge list instead.
//!
//! Branch structure is replayed exactly: each node's
//! [`BranchPath::arms`] is re-entered against a per-shard mapping from
//! global to local branch ids, so mutual exclusivity inside a shard is
//! bit-identical to the parent graph. All banks and arrays are
//! re-declared in parent order (even when unused) so `BankId`/`ArrayId`
//! numbering — and with it every `FuClass::Mem` grid — lines up with
//! the parent. Memory ordering tokens are re-derived by the builder
//! over the shard's access subsequence; a re-derived token is always
//! implied by the parent's transitive token chain, and any direct
//! parent token whose producer lives in another shard survives as a
//! cut edge.

use std::collections::BTreeMap;

use hls_dfg::{BranchId, Dfg, DfgBuilder, NodeId, NodeKind, SignalId, SignalSource};

use crate::{cut::Partition, PartitionError};

/// One extracted shard: a standalone graph plus the mapping from local
/// node ids back to the parent graph.
#[derive(Debug, Clone)]
pub struct ShardGraph {
    /// The shard as a self-contained graph.
    pub dfg: Dfg,
    /// `to_global[local.index()]` is the parent node id. Local ids are
    /// assigned in creation order, which is the shard's member order.
    pub to_global: Vec<NodeId>,
}

/// Extracts shard `shard` of `partition` from `dfg`.
pub fn extract(
    dfg: &Dfg,
    partition: &Partition,
    shard: usize,
) -> Result<ShardGraph, PartitionError> {
    let members = partition.members(shard);
    let mut b = DfgBuilder::new(format!("{}.shard{}", dfg.name(), shard));

    // Banks and arrays in parent declaration order keeps the id spaces
    // aligned between parent and shard.
    let mut bank_map = Vec::with_capacity(dfg.memory().banks().len());
    for bank in dfg.memory().banks() {
        bank_map.push(b.declare_bank(bank.name(), bank.ports()));
    }
    let mut array_map = Vec::with_capacity(dfg.memory().arrays().len());
    for array in dfg.memory().arrays() {
        array_map.push(b.declare_array(array.name(), array.size(), bank_map[array.bank().index()]));
    }

    let mut signal_map: BTreeMap<SignalId, SignalId> = BTreeMap::new();
    let mut branch_map: BTreeMap<BranchId, BranchId> = BTreeMap::new();
    // The local builder's branch stack, as global (branch, arm) pairs.
    let mut arm_stack: Vec<(BranchId, u32)> = Vec::new();
    let mut to_global = Vec::with_capacity(members.len());

    for &id in members {
        let node = dfg.node(id);

        // Align the builder's arm stack with this node's branch path.
        let want: Vec<(BranchId, u32)> = node
            .branch()
            .arms()
            .iter()
            .map(|a| (a.branch, a.arm))
            .collect();
        let keep = arm_stack
            .iter()
            .zip(&want)
            .take_while(|(have, want)| have == want)
            .count();
        while arm_stack.len() > keep {
            b.exit_arm();
            arm_stack.pop();
        }
        for &(branch, arm) in &want[keep..] {
            let local = *branch_map.entry(branch).or_insert_with(|| b.begin_branch());
            b.enter_arm(local, arm);
            arm_stack.push((branch, arm));
        }

        // Map the node's value operands; token operands (extra inputs
        // past the kind's value arity) are re-derived locally.
        let mut local_input = |b: &mut DfgBuilder, sig: SignalId| -> SignalId {
            if let Some(&local) = signal_map.get(&sig) {
                return local;
            }
            let parent = dfg.signal(sig);
            let local = match parent.source() {
                SignalSource::Constant(v) => b.constant(parent.name(), v),
                // Primary inputs, and values produced in other shards
                // (handled at merge through the cut-edge list).
                _ => b.input(parent.name()),
            };
            signal_map.insert(sig, local);
            local
        };

        let out = match node.kind() {
            NodeKind::Op(kind) => {
                let ins: Vec<SignalId> = node
                    .inputs()
                    .iter()
                    .map(|&s| local_input(&mut b, s))
                    .collect();
                b.op(node.name(), kind, &ins)
            }
            NodeKind::Load { array, .. } => {
                let index = local_input(&mut b, node.inputs()[0]);
                b.load(node.name(), array_map[array.index()], index)
            }
            NodeKind::Store { array, .. } => {
                let index = local_input(&mut b, node.inputs()[0]);
                let value = local_input(&mut b, node.inputs()[1]);
                b.store(node.name(), array_map[array.index()], index, value)
            }
            other => {
                return Err(PartitionError::Unsupported(format!(
                    "node kind {other:?} cannot be extracted"
                )))
            }
        }
        .map_err(|e| PartitionError::Internal(format!("extract `{}`: {e}", node.name())))?;
        signal_map.insert(node.output(), out);
        to_global.push(id);
    }
    while arm_stack.pop().is_some() {
        b.exit_arm();
    }

    let local = b
        .finish()
        .map_err(|e| PartitionError::Internal(format!("extract shard {shard}: {e}")))?;
    debug_assert_eq!(local.node_count(), members.len());
    Ok(ShardGraph {
        dfg: local,
        to_global,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::partition;
    use hls_benchmarks::generate::{generate, GeneratorConfig};
    use hls_celllib::OpKind;

    #[test]
    fn shard_node_order_matches_member_order() {
        let dfg = generate(&GeneratorConfig::sized(300, 3));
        let p = partition(&dfg, 4).unwrap();
        for s in 0..p.shard_count() {
            let sg = extract(&dfg, &p, s).unwrap();
            assert_eq!(sg.to_global, p.members(s));
            assert_eq!(sg.dfg.node_count(), p.members(s).len());
            // Node kinds line up local-to-global.
            for (local, &global) in sg.to_global.iter().enumerate() {
                let l = sg.dfg.node(NodeId::from_index(local));
                let g = dfg.node(global);
                assert_eq!(l.name(), g.name());
                assert_eq!(l.kind().fu_class(), g.kind().fu_class());
            }
        }
    }

    #[test]
    fn mutual_exclusivity_is_preserved_inside_a_shard() {
        let dfg = generate(&GeneratorConfig {
            seed: 11,
            layers: 6,
            width: 8,
            branch_pct: 100,
            ..Default::default()
        });
        let p = partition(&dfg, 3).unwrap();
        for s in 0..p.shard_count() {
            let sg = extract(&dfg, &p, s).unwrap();
            for (i, &a) in sg.to_global.iter().enumerate() {
                for (j, &b) in sg.to_global.iter().enumerate().skip(i + 1) {
                    assert_eq!(
                        sg.dfg
                            .mutually_exclusive(NodeId::from_index(i), NodeId::from_index(j)),
                        dfg.mutually_exclusive(a, b),
                        "exclusivity of {a:?}/{b:?} must survive extraction"
                    );
                }
            }
        }
    }

    #[test]
    fn memory_banks_keep_their_ids() {
        let mut b = DfgBuilder::new("mem");
        let i = b.input("i");
        let bank = b.declare_bank("ram", 2);
        let arr = b.declare_array("buf", 16, bank);
        let l0 = b.load("l0", arr, i).unwrap();
        let s0 = b.store("s0", arr, i, l0).unwrap();
        let l1 = b.load("l1", arr, i).unwrap();
        let _ = b.op("sum", OpKind::Add, &[l1, s0]).unwrap();
        let dfg = b.finish().unwrap();
        let p = partition(&dfg, 2).unwrap();
        for s in 0..p.shard_count() {
            let sg = extract(&dfg, &p, s).unwrap();
            assert_eq!(sg.dfg.memory().banks().len(), 1);
            assert_eq!(sg.dfg.memory().banks()[0].ports(), 2);
            for (local, &global) in sg.to_global.iter().enumerate() {
                assert_eq!(
                    sg.dfg.node(NodeId::from_index(local)).kind().fu_class(),
                    dfg.node(global).kind().fu_class()
                );
            }
        }
    }
}
