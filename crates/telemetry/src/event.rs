//! The typed event model of the synthesis pipeline.

use std::borrow::Cow;
use std::fmt::Write as _;

/// One structured observation emitted by an instrumented pipeline stage.
///
/// Events use plain integers (`NodeId` indices, grid coordinates,
/// Liapunov energies) so this crate depends on nothing and sinks can
/// serialise without reflection. The producing scheduler documents the
/// coordinate conventions; all grid positions are 1-based `(fu, step)`
/// pairs as in the paper's Figure 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// MFS computed the move frame `MF = PF − (RF ∪ FF)` of one
    /// operation (paper §3.2 step 4 / Figure 2).
    FrameComputed {
        /// The operation's node index.
        op: u32,
        /// Primary-frame length in control steps (`ALAP − ASAP + 1`).
        pf: u32,
        /// Redundant-frame width: grid columns hidden beyond
        /// `current_j`.
        rf: u32,
        /// Forbidden-frame length: primary steps excluded by data
        /// dependencies.
        ff: u32,
        /// Number of free, feasible cells left in the move frame.
        mf_size: u32,
    },
    /// A Liapunov energy was evaluated for one candidate position.
    EnergyEvaluated {
        /// The operation's node index.
        op: u32,
        /// Candidate position `(fu, step)`.
        pos: (u32, u32),
        /// The energy `V` of the candidate.
        v: u64,
    },
    /// An operation committed its energy-minimising move.
    MoveCommitted {
        /// The operation's node index.
        op: u32,
        /// Present position `O^p` (the ALFAP corner of the frame), when
        /// the producer tracks one.
        from: Option<(u32, u32)>,
        /// Next position `O^n = (fu, step)` — the committed cell.
        to: (u32, u32),
        /// The energy of the committed position (MFS: static `V`;
        /// MFSA: the dynamic `f_TIME + f_ALU + f_MUX + f_REG`).
        v: u64,
        /// Total system energy after the move, for producers that track
        /// one (MFS: placed ops at their committed energy, unplaced ops
        /// at their grid's worst cell — non-increasing by construction).
        system_v: Option<u64>,
    },
    /// An empty move frame forced a local rescheduling: `current_j`
    /// grew and the pass restarted (paper §3.2, "going back to step 3").
    LocalReschedule {
        /// The affected unit class, e.g. `"*"` or `"+"`.
        op_kind: String,
        /// The widened visible-column count.
        current_j: u32,
    },
    /// A timed pipeline phase (ASAP/ALAP, priority ordering, move loop,
    /// binding, RTL generation, …).
    PhaseSpan {
        /// Phase name, dot-namespaced (`"mfs.move_loop"`).
        phase: Cow<'static, str>,
        /// Start, in nanoseconds since the process's trace epoch.
        start_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
    /// One served HTTP request — the `hls-serve` daemon's access-log
    /// line.
    HttpRequest {
        /// Request method (`"GET"`, `"POST"`).
        method: String,
        /// Request path, without the query string.
        path: String,
        /// Response status code.
        status: u16,
        /// Response body length in bytes.
        bytes: u64,
        /// Wall time from parsed request to written response, in ns.
        dur_ns: u64,
        /// Time spent in the admission queue before a worker picked the
        /// connection up, in ns (serialised as `queue_wait_ms`).
        queue_ns: u64,
        /// Milliseconds left until the request's deadline when the
        /// response was recorded (negative = answered past the
        /// deadline), for requests that carried one. This is what makes
        /// overload diagnosable post-hoc: a 504 with a large negative
        /// remainder sat in the queue, one near zero raced the compute.
        deadline_remaining_ms: Option<i64>,
    },
}

/// Escapes `s` into `out` as JSON string contents (without quotes).
pub(crate) fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl TraceEvent {
    /// The event's type tag, as used in the JSON encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::FrameComputed { .. } => "frame_computed",
            TraceEvent::EnergyEvaluated { .. } => "energy_evaluated",
            TraceEvent::MoveCommitted { .. } => "move_committed",
            TraceEvent::LocalReschedule { .. } => "local_reschedule",
            TraceEvent::PhaseSpan { .. } => "phase_span",
            TraceEvent::HttpRequest { .. } => "http_request",
        }
    }

    /// Serialises the event as one self-contained JSON object (one
    /// JSONL line, without the trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"event\":\"{}\"", self.kind());
        match self {
            TraceEvent::FrameComputed {
                op,
                pf,
                rf,
                ff,
                mf_size,
            } => {
                let _ = write!(
                    s,
                    ",\"op\":{op},\"pf\":{pf},\"rf\":{rf},\"ff\":{ff},\"mf_size\":{mf_size}"
                );
            }
            TraceEvent::EnergyEvaluated { op, pos, v } => {
                let _ = write!(s, ",\"op\":{op},\"pos\":[{},{}],\"v\":{v}", pos.0, pos.1);
            }
            TraceEvent::MoveCommitted {
                op,
                from,
                to,
                v,
                system_v,
            } => {
                let _ = write!(s, ",\"op\":{op}");
                if let Some((fu, step)) = from {
                    let _ = write!(s, ",\"from\":[{fu},{step}]");
                }
                let _ = write!(s, ",\"to\":[{},{}],\"v\":{v}", to.0, to.1);
                if let Some(sv) = system_v {
                    let _ = write!(s, ",\"system_v\":{sv}");
                }
            }
            TraceEvent::LocalReschedule { op_kind, current_j } => {
                s.push_str(",\"op_kind\":\"");
                escape_json(&mut s, op_kind);
                let _ = write!(s, "\",\"current_j\":{current_j}");
            }
            TraceEvent::PhaseSpan {
                phase,
                start_ns,
                dur_ns,
            } => {
                s.push_str(",\"phase\":\"");
                escape_json(&mut s, phase);
                let _ = write!(s, "\",\"start_ns\":{start_ns},\"dur_ns\":{dur_ns}");
            }
            TraceEvent::HttpRequest {
                method,
                path,
                status,
                bytes,
                dur_ns,
                queue_ns,
                deadline_remaining_ms,
            } => {
                s.push_str(",\"method\":\"");
                escape_json(&mut s, method);
                s.push_str("\",\"path\":\"");
                escape_json(&mut s, path);
                let _ = write!(
                    s,
                    "\",\"status\":{status},\"bytes\":{bytes},\"dur_ns\":{dur_ns},\"queue_wait_ms\":{:.3}",
                    *queue_ns as f64 / 1e6
                );
                if let Some(remaining) = deadline_remaining_ms {
                    let _ = write!(s, ",\"deadline_remaining_ms\":{remaining}");
                }
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_encodes_every_variant() {
        let events = [
            TraceEvent::FrameComputed {
                op: 3,
                pf: 4,
                rf: 2,
                ff: 1,
                mf_size: 5,
            },
            TraceEvent::EnergyEvaluated {
                op: 3,
                pos: (1, 2),
                v: 9,
            },
            TraceEvent::MoveCommitted {
                op: 3,
                from: Some((2, 4)),
                to: (1, 2),
                v: 9,
                system_v: Some(120),
            },
            TraceEvent::MoveCommitted {
                op: 4,
                from: None,
                to: (1, 3),
                v: 13,
                system_v: None,
            },
            TraceEvent::LocalReschedule {
                op_kind: "*".into(),
                current_j: 2,
            },
            TraceEvent::PhaseSpan {
                phase: "mfs.move_loop".into(),
                start_ns: 100,
                dur_ns: 50,
            },
            TraceEvent::HttpRequest {
                method: "POST".into(),
                path: "/schedule".into(),
                status: 200,
                bytes: 181,
                dur_ns: 420,
                queue_ns: 1_500_000,
                deadline_remaining_ms: Some(-7),
            },
            TraceEvent::HttpRequest {
                method: "GET".into(),
                path: "/healthz".into(),
                status: 200,
                bytes: 3,
                dur_ns: 420,
                queue_ns: 0,
                deadline_remaining_ms: None,
            },
        ];
        let lines: Vec<String> = events.iter().map(TraceEvent::to_json).collect();
        assert_eq!(
            lines[0],
            r#"{"event":"frame_computed","op":3,"pf":4,"rf":2,"ff":1,"mf_size":5}"#
        );
        assert_eq!(
            lines[1],
            r#"{"event":"energy_evaluated","op":3,"pos":[1,2],"v":9}"#
        );
        assert_eq!(
            lines[2],
            r#"{"event":"move_committed","op":3,"from":[2,4],"to":[1,2],"v":9,"system_v":120}"#
        );
        assert_eq!(
            lines[3],
            r#"{"event":"move_committed","op":4,"to":[1,3],"v":13}"#
        );
        assert_eq!(
            lines[4],
            r#"{"event":"local_reschedule","op_kind":"*","current_j":2}"#
        );
        assert_eq!(
            lines[5],
            r#"{"event":"phase_span","phase":"mfs.move_loop","start_ns":100,"dur_ns":50}"#
        );
        assert_eq!(
            lines[6],
            r#"{"event":"http_request","method":"POST","path":"/schedule","status":200,"bytes":181,"dur_ns":420,"queue_wait_ms":1.500,"deadline_remaining_ms":-7}"#
        );
        assert_eq!(
            lines[7],
            r#"{"event":"http_request","method":"GET","path":"/healthz","status":200,"bytes":3,"dur_ns":420,"queue_wait_ms":0.000}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let e = TraceEvent::LocalReschedule {
            op_kind: "a\"b\\c\n".into(),
            current_j: 1,
        };
        assert_eq!(
            e.to_json(),
            r#"{"event":"local_reschedule","op_kind":"a\"b\\c\n","current_j":1}"#
        );
    }
}
