//! **hls-telemetry** — structured tracing, metrics and profiling for the
//! moveframe-hls synthesis pipeline.
//!
//! The paper's central claim is that MFS/MFSA converge through a
//! sequence of Liapunov-energy-decreasing *moves* (frame computation →
//! energy minimisation → local rescheduling). This crate makes that
//! sequence observable without perturbing it:
//!
//! * a typed [`TraceEvent`] model covering the whole pipeline — frames,
//!   energy evaluations, committed moves, local reschedulings and timed
//!   phase spans;
//! * a [`TraceSink`] trait with [`NullSink`] (disabled, zero-cost),
//!   [`MemorySink`] (tests/analysis) and [`JsonlSink`] (streams JSON
//!   Lines to any writer) implementations;
//! * a [`Metrics`] registry of monotonic counters and log₂ histograms
//!   with text and JSON reports;
//! * a Chrome `trace_event` exporter ([`chrome_trace`]) that turns
//!   phase spans into an `about://tracing`/Perfetto flame chart;
//! * [`Instrument`], the handle producers thread through a run, pairing
//!   a sink with a metrics registry and timing nested phases.
//!
//! Instrumentation is strictly write-only: nothing a sink observes can
//! feed back into scheduling, so a run with a [`NullSink`] is
//! bit-identical to an instrumented one (the workspace tests assert
//! this).
//!
//! ```
//! use hls_telemetry::{Instrument, MemorySink, Metrics, TraceEvent};
//!
//! let mut sink = MemorySink::new();
//! let mut metrics = Metrics::new();
//! let mut instr = Instrument::new(&mut sink, &mut metrics);
//! let answer = instr.span("demo.phase", |instr| {
//!     instr.inc("demo.widgets", 3);
//!     if instr.enabled() {
//!         instr.emit(TraceEvent::EnergyEvaluated { op: 0, pos: (1, 1), v: 9 });
//!     }
//!     42
//! });
//! assert_eq!(answer, 42);
//! assert_eq!(metrics.counter("demo.widgets"), 3);
//! assert_eq!(sink.events().len(), 2); // the energy event + the span
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
mod metrics;
mod sink;

pub use chrome::chrome_trace;
pub use event::TraceEvent;
pub use metrics::{Histogram, Metrics};
pub use sink::{JsonlSink, MemorySink, NullSink, TraceSink};

use std::time::Instant;

/// Nanoseconds since the process's trace epoch (the first call in the
/// process). All [`TraceEvent::PhaseSpan`] timestamps share this epoch,
/// so spans from different pipeline stages line up on one timeline.
pub fn epoch_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The instrumentation handle a pipeline stage threads through a run:
/// one sink for events, one registry for metrics.
///
/// Cheap to construct; borrow-scoped so several stages can reuse the
/// same sink and registry sequentially.
pub struct Instrument<'a> {
    sink: &'a mut dyn TraceSink,
    metrics: &'a mut Metrics,
}

impl<'a> Instrument<'a> {
    /// Pairs a sink with a metrics registry.
    pub fn new(sink: &'a mut dyn TraceSink, metrics: &'a mut Metrics) -> Self {
        Instrument { sink, metrics }
    }

    /// Whether the sink wants events. Producers must gate construction
    /// of per-candidate events on this (counters are always cheap and
    /// always recorded).
    pub fn enabled(&self) -> bool {
        self.sink.enabled()
    }

    /// Sends one event to the sink (dropped when disabled).
    pub fn emit(&mut self, event: TraceEvent) {
        if self.sink.enabled() {
            self.sink.record(event);
        }
    }

    /// Adds `by` to counter `name`.
    pub fn inc(&mut self, name: &'static str, by: u64) {
        self.metrics.inc(name, by);
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.metrics.observe(name, value);
    }

    /// Runs `f` as the timed phase `name`: wall time lands in the
    /// histogram `phase.<name>.ns` and, when the sink is enabled, as a
    /// [`TraceEvent::PhaseSpan`]. Phases nest.
    pub fn span<T>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> T) -> T {
        let start_ns = epoch_ns();
        let started = Instant::now();
        let out = f(self);
        let dur_ns = started.elapsed().as_nanos() as u64;
        self.metrics.observe(format!("phase.{name}.ns"), dur_ns);
        if self.sink.enabled() {
            self.sink.record(TraceEvent::PhaseSpan {
                phase: name.into(),
                start_ns,
                dur_ns,
            });
        }
        out
    }

    /// Read access to the accumulating metrics.
    pub fn metrics(&self) -> &Metrics {
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monotone() {
        let a = epoch_ns();
        let b = epoch_ns();
        assert!(b >= a);
    }

    #[test]
    fn spans_nest_and_time() {
        let mut sink = MemorySink::new();
        let mut metrics = Metrics::new();
        let mut instr = Instrument::new(&mut sink, &mut metrics);
        instr.span("outer", |i| {
            i.span("inner", |i| i.inc("n", 1));
        });
        assert_eq!(metrics.counter("n"), 1);
        assert!(metrics.histogram("phase.outer.ns").is_some());
        assert!(metrics.histogram("phase.inner.ns").is_some());
        // Inner span is recorded first (it finishes first).
        let phases: Vec<_> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::PhaseSpan { phase, .. } => Some(phase.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(phases, vec!["inner", "outer"]);
    }

    #[test]
    fn disabled_sink_still_collects_metrics() {
        let mut sink = NullSink;
        let mut metrics = Metrics::new();
        let mut instr = Instrument::new(&mut sink, &mut metrics);
        assert!(!instr.enabled());
        instr.span("p", |i| {
            i.emit(TraceEvent::EnergyEvaluated {
                op: 0,
                pos: (1, 1),
                v: 1,
            });
            i.inc("c", 2);
        });
        assert_eq!(metrics.counter("c"), 2);
        assert_eq!(metrics.histogram("phase.p.ns").unwrap().count(), 1);
    }
}
