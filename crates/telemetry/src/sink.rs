//! Trace sinks: where events go.

use std::io;

use crate::event::TraceEvent;

/// A consumer of [`TraceEvent`]s.
///
/// Producers check [`TraceSink::enabled`] before building expensive
/// events (per-candidate energies, frame geometry), so a disabled sink
/// costs one virtual call per *placement*, not per candidate — the
/// "zero-cost-when-disabled" contract.
pub trait TraceSink {
    /// Consumes one event.
    fn record(&mut self, event: TraceEvent);

    /// Whether this sink wants events at all. Producers skip event
    /// construction entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything; [`TraceSink::enabled`] is `false`.
///
/// This is what the un-instrumented entry points use: a run with a
/// `NullSink` takes the same decisions (and produces bit-identical
/// schedules) as one with any other sink, because instrumentation never
/// feeds back into scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Buffers events in memory, for tests and in-process analysis.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The captured events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, returning the captured events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// The committed-move energies, in emission order (the `v` of every
    /// [`TraceEvent::MoveCommitted`]).
    pub fn committed_energies(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::MoveCommitted { v, .. } => Some(*v),
                _ => None,
            })
            .collect()
    }

    /// The system-energy trajectory: the `system_v` of every committed
    /// move that carries one, in emission order.
    pub fn system_energies(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::MoveCommitted {
                    system_v: Some(sv), ..
                } => Some(*sv),
                _ => None,
            })
            .collect()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Streams events as JSON Lines (one JSON object per line) into any
/// [`io::Write`] — a file for `mfhls --trace`, a `Vec<u8>` in tests.
///
/// Write errors are counted, not propagated: instrumentation must never
/// abort a synthesis run.
#[derive(Debug)]
pub struct JsonlSink<W: io::Write> {
    writer: W,
    write_errors: u64,
}

impl<W: io::Write> JsonlSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            write_errors: 0,
        }
    }

    /// How many events failed to serialise due to I/O errors.
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: io::Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: TraceEvent) {
        let mut line = event.to_json();
        line.push('\n');
        if self.writer.write_all(line.as_bytes()).is_err() {
            self.write_errors += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::MoveCommitted {
                op: 1,
                from: None,
                to: (1, 1),
                v: 7,
                system_v: Some(70),
            },
            TraceEvent::MoveCommitted {
                op: 2,
                from: None,
                to: (1, 2),
                v: 5,
                system_v: Some(65),
            },
            TraceEvent::LocalReschedule {
                op_kind: "+".into(),
                current_j: 2,
            },
        ]
    }

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
    }

    #[test]
    fn memory_sink_captures_in_order() {
        let mut sink = MemorySink::new();
        for e in sample() {
            sink.record(e);
        }
        assert!(sink.enabled());
        assert_eq!(sink.events().len(), 3);
        assert_eq!(sink.committed_energies(), vec![7, 5]);
        assert_eq!(sink.system_energies(), vec![70, 65]);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        for e in sample() {
            sink.record(e);
        }
        assert_eq!(sink.write_errors(), 0);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with("{\"event\":\""), "bad line: {line}");
            assert!(line.ends_with('}'), "bad line: {line}");
        }
    }
}
