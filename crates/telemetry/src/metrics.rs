//! The metrics registry: monotonic counters and log₂-bucket histograms.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::escape_json;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples whose value has `i` significant bits
/// (bucket 0 counts zeros), i.e. boundaries at 1, 2, 4, 8, …. Exact
/// count/sum/min/max are kept alongside, so means are exact and
/// quantiles are right up to one power of two.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[(64 - value.leading_zeros()) as usize] += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 ≤ q ≤ 1.0`); exact up to one power of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << (i - 1) };
            }
        }
        self.max
    }

    /// The inclusive upper bound of bucket `i`: bucket 0 holds zeros,
    /// bucket `i ≥ 1` holds values with `i` significant bits, i.e.
    /// `[2^(i-1), 2^i − 1]`.
    pub fn bucket_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// The cumulative bucket view used by the Prometheus exposition:
    /// `(le, cumulative_count)` pairs over the non-empty prefix of the
    /// fixed power-of-two buckets. Because the bucket boundaries are
    /// fixed (never resampled or rebalanced), merging shards and then
    /// reading this view is bit-identical to one sink observing every
    /// sample — the property that makes percentiles deterministic
    /// across thread counts.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let last = match self.buckets.iter().rposition(|&n| n > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut cum = 0;
        (0..=last)
            .map(|i| {
                cum += self.buckets[i];
                (Self::bucket_upper_bound(i), cum)
            })
            .collect()
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// A named registry of monotonic counters and histograms.
///
/// Names are dot-namespaced by producer (`"mfs.moves_committed"`,
/// `"phase.mfsa.move_loop.ns"`). The registry renders itself as an
/// aligned text report or a JSON object, and registries merge, so a
/// bench harness can aggregate across runs.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<Cow<'static, str>, u64>,
    histograms: BTreeMap<Cow<'static, str>, Histogram>,
    /// Prometheus exposition ids, sanitised once when a name is first
    /// registered (never per render).
    prom_ids: BTreeMap<Cow<'static, str>, String>,
}

/// Maps a dot-namespaced metric name onto the Prometheus metric-name
/// charset (`serve.http.200` → `serve_http_200`).
fn prom_sanitise(name: &str) -> String {
    let mut id = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => id.push(c),
            '0'..='9' if i > 0 => id.push(c),
            _ => id.push('_'),
        }
    }
    id
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the sanitised exposition id of a freshly registered name.
    // Takes `&Cow` (not `&str`) so a `Cow::Borrowed` key clones for
    // free instead of re-allocating a `String`.
    #[allow(clippy::ptr_arg)]
    fn register(&mut self, name: &Cow<'static, str>) {
        if !self.prom_ids.contains_key(name.as_ref()) {
            self.prom_ids.insert(name.clone(), prom_sanitise(name));
        }
    }

    /// Adds `by` to the counter `name`, creating it at zero.
    pub fn inc(&mut self, name: impl Into<Cow<'static, str>>, by: u64) {
        let name = name.into();
        self.register(&name);
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Records `value` into the histogram `name`, creating it empty.
    pub fn observe(&mut self, name: impl Into<Cow<'static, str>>, value: u64) {
        let name = name.into();
        self.register(&name);
        self.histograms.entry(name).or_default().observe(value);
    }

    /// The current value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_ref(), v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_ref(), v))
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Keeps only entries whose name satisfies `keep` (e.g. dropping
    /// nondeterministic `*.ns` timings before a committed snapshot).
    pub fn retain(&mut self, mut keep: impl FnMut(&str) -> bool) {
        self.counters.retain(|k, _| keep(k));
        self.histograms.retain(|k, _| keep(k));
        self.prom_ids
            .retain(|k, _| self.counters.contains_key(k) || self.histograms.contains_key(k));
    }

    /// Folds `other` into `self` (counters add, histograms merge).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, &v) in &other.counters {
            self.register(k);
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.register(k);
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// An aligned, human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.counters.is_empty() && self.histograms.is_empty() {
            out.push_str("(no metrics recorded)\n");
            return out;
        }
        let width = self
            .counters
            .keys()
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<width$}  {value}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<width$}  n={} min={} mean={:.1} p90≤{} max={}",
                    h.count(),
                    h.min(),
                    h.mean(),
                    h.quantile(0.9),
                    h.max()
                );
            }
        }
        out
    }

    /// The sanitised Prometheus exposition id of `name` (computed once
    /// at registration; falls back to sanitising on the spot for names
    /// that entered through an old serialised registry).
    fn prom_id<'a>(&'a self, name: &str) -> Cow<'a, str> {
        match self.prom_ids.get(name) {
            Some(id) => Cow::Borrowed(id.as_str()),
            None => Cow::Owned(prom_sanitise(name)),
        }
    }

    /// The registry in the Prometheus text exposition format (v0.0.4),
    /// as served by `hls-serve`'s `/metrics` endpoint.
    ///
    /// Dot-namespaced names were sanitised to the metric-name charset
    /// when first registered (`serve.http.200` → `serve_http_200`), so
    /// rendering is a pure walk over the sorted registry — the output
    /// is byte-deterministic for a given registry state, with metric
    /// families in sorted name order. Counters render as `counter`
    /// samples; each histogram renders as a `histogram` family with
    /// cumulative `<name>_bucket{le="..."}` samples at the fixed
    /// power-of-two bucket bounds plus exact `<name>_sum` and
    /// `<name>_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        // Merge-walk the two sorted maps so families come out in one
        // global name order, not counters-then-histograms.
        let mut counters = self.counters.iter().peekable();
        let mut histograms = self.histograms.iter().peekable();
        loop {
            let counter_first = match (counters.peek(), histograms.peek()) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some((ck, _)), Some((hk, _))) => ck <= hk,
            };
            if counter_first {
                let (name, value) = counters.next().unwrap();
                let id = self.prom_id(name);
                let _ = writeln!(out, "# TYPE {id} counter");
                let _ = writeln!(out, "{id} {value}");
            } else {
                let (name, h) = histograms.next().unwrap();
                let id = self.prom_id(name);
                let _ = writeln!(out, "# TYPE {id} histogram");
                for (le, cum) in h.cumulative_buckets() {
                    let _ = writeln!(out, "{id}_bucket{{le=\"{le}\"}} {cum}");
                }
                let _ = writeln!(out, "{id}_bucket{{le=\"+Inf\"}} {}", h.count());
                let _ = writeln!(out, "{id}_sum {}", h.sum());
                let _ = writeln!(out, "{id}_count {}", h.count());
            }
        }
        out
    }

    /// The registry as one JSON object:
    /// `{"counters":{...},"histograms":{name:{count,sum,min,max,mean}}}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            escape_json(&mut s, name);
            let _ = write!(s, "\":{value}");
        }
        s.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            escape_json(&mut s, name);
            let _ = write!(
                s,
                "\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3}}}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean()
            );
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.inc("mfs.moves_committed", 1);
        m.inc("mfs.moves_committed", 2);
        assert_eq!(m.counter("mfs.moves_committed"), 3);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 110.0 / 6.0).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 0);
        assert!(h.quantile(1.0) >= 64, "100 lives in the [64,128) bucket");
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Metrics::new();
        a.inc("c", 1);
        a.observe("h", 4);
        let mut b = Metrics::new();
        b.inc("c", 2);
        b.inc("d", 5);
        b.observe("h", 8);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("d"), 5);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 12);
    }

    #[test]
    fn reports_render() {
        let mut m = Metrics::new();
        m.inc("runs", 2);
        m.observe("ns", 1500);
        let text = m.render_text();
        assert!(text.contains("runs"));
        assert!(text.contains("histograms:"));
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"runs\":2"));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn empty_report_says_so() {
        assert!(Metrics::new().render_text().contains("no metrics"));
    }

    #[test]
    fn prometheus_rendering_sanitises_names_at_registration() {
        let mut m = Metrics::new();
        m.inc("serve.http.200", 3);
        m.observe("serve.request.wall_ns", 1000);
        m.observe("serve.request.wall_ns", 3000);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE serve_http_200 counter\nserve_http_200 3\n"));
        assert!(text.contains("# TYPE serve_request_wall_ns histogram\n"));
        // 1000 has 10 significant bits (bucket le 1023), 3000 has 12
        // (le 4095); the bucket samples are cumulative.
        assert!(text.contains("serve_request_wall_ns_bucket{le=\"1023\"} 1\n"));
        assert!(text.contains("serve_request_wall_ns_bucket{le=\"4095\"} 2\n"));
        assert!(text.contains("serve_request_wall_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("serve_request_wall_ns_sum 4000\n"));
        assert!(text.contains("serve_request_wall_ns_count 2\n"));
        assert!(Metrics::new().render_prometheus().is_empty());
    }

    #[test]
    fn prometheus_output_is_sorted_and_deterministic() {
        // Register names in shuffled order; the exposition must come
        // out sorted by family name, identically across renders and
        // across a merge that replays the same observations.
        let mut m = Metrics::new();
        for name in ["z.last", "a.first", "m.middle", "serve.http.200"] {
            m.inc(name, 1);
        }
        m.observe("z.hist", 5);
        m.observe("a.hist", 7);
        let text = m.render_prometheus();
        let families: Vec<&str> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .map(|l| l.split(' ').next().unwrap())
            .collect();
        let mut sorted = families.clone();
        sorted.sort_unstable();
        assert_eq!(families, sorted, "{text}");
        assert_eq!(text, m.render_prometheus(), "repeat renders are identical");
        let mut replay = Metrics::new();
        replay.merge(&m);
        assert_eq!(text, replay.render_prometheus(), "merge preserves output");
    }

    #[test]
    fn cumulative_buckets_cover_every_sample() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 1, 7, 8, u64::MAX] {
            h.observe(v);
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.first(), Some(&(0, 1)), "zeros land in le=0");
        assert_eq!(
            buckets.last(),
            Some(&(u64::MAX, 6)),
            "the final cumulative count equals count()"
        );
        assert!(
            buckets
                .windows(2)
                .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1),
            "bounds strictly increase, counts are monotone: {buckets:?}"
        );
        assert!(Histogram::new().cumulative_buckets().is_empty());
    }
}
