//! Chrome `trace_event` export: flame-style profiles from phase spans.
//!
//! The output is the JSON object format understood by `about://tracing`
//! and [Perfetto](https://ui.perfetto.dev): a `traceEvents` array of
//! complete (`"ph":"X"`) events with microsecond timestamps. Load the
//! file in Perfetto to see the pipeline's phases as a flame chart.

use std::fmt::Write as _;

use crate::event::{escape_json, TraceEvent};

/// Builds a Chrome-trace JSON document from the [`TraceEvent::PhaseSpan`]
/// events in `events` (other events are ignored). Nested spans nest in
/// the flame chart because child spans start later and end earlier on
/// the same thread track.
pub fn chrome_trace<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for event in events {
        let TraceEvent::PhaseSpan {
            phase,
            start_ns,
            dur_ns,
        } = event
        else {
            continue;
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"");
        escape_json(&mut out, phase);
        // ts/dur are microseconds; fractions keep ns precision.
        let _ = write!(
            out,
            "\",\"cat\":\"hls\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":1}}",
            *start_ns as f64 / 1000.0,
            *dur_ns as f64 / 1000.0
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_only_phase_spans() {
        let events = [
            TraceEvent::PhaseSpan {
                phase: "mfs.frames".into(),
                start_ns: 1000,
                dur_ns: 2500,
            },
            TraceEvent::EnergyEvaluated {
                op: 1,
                pos: (1, 1),
                v: 3,
            },
            TraceEvent::PhaseSpan {
                phase: "mfs.move_loop".into(),
                start_ns: 4000,
                dur_ns: 500,
            },
        ];
        let json = chrome_trace(events.iter());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"mfs.frames\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.500"));
        assert!(!json.contains("energy"));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        assert_eq!(
            chrome_trace(std::iter::empty()),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }
}
