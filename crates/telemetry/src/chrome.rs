//! Chrome `trace_event` export: flame-style profiles from phase spans.
//!
//! The output is the JSON object format understood by `about://tracing`
//! and [Perfetto](https://ui.perfetto.dev): a `traceEvents` array of
//! complete (`"ph":"X"`) events with microsecond timestamps, preceded
//! by name/sort metadata (`"ph":"M"`) so the process and track are
//! labelled, and interleaved with counter-track samples (`"ph":"C"`)
//! carrying the running scheduler work totals. Load the file in
//! Perfetto to see the pipeline's phases as a flame chart with an
//! energy-evaluation counter track alongside.

use std::fmt::Write as _;

use crate::event::{escape_json, TraceEvent};

/// The fixed pid/tid the exporter attributes everything to: the
/// pipeline is single-threaded per run, so one labelled track suffices.
const PID: u32 = 1;
const TID: u32 = 1;

/// Builds a Chrome-trace JSON document from `events`.
///
/// [`TraceEvent::PhaseSpan`]s become complete slices. The per-move
/// events (frames, energy evaluations, commits, reschedules) are folded
/// into running totals and emitted as one counter-track sample per
/// closed span, timestamped at the span's end — the moment the totals
/// were observed. Metadata events name the process and thread and pin
/// the track's sort order, so the profile loads cleanly in Perfetto.
pub fn chrome_trace<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{PID},\"args\":{{\"name\":\"mfhls\"}}}},\
         {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{TID},\"args\":{{\"name\":\"pipeline\"}}}},\
         {{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{TID},\"args\":{{\"sort_index\":0}}}}"
    );
    let (mut frames, mut evals, mut moves, mut reschedules) = (0u64, 0u64, 0u64, 0u64);
    for event in events {
        match event {
            TraceEvent::FrameComputed { .. } => frames += 1,
            TraceEvent::EnergyEvaluated { .. } => evals += 1,
            TraceEvent::MoveCommitted { .. } => moves += 1,
            TraceEvent::LocalReschedule { .. } => reschedules += 1,
            TraceEvent::PhaseSpan {
                phase,
                start_ns,
                dur_ns,
            } => {
                out.push_str(",{\"name\":\"");
                escape_json(&mut out, phase);
                // ts/dur are microseconds; fractions keep ns precision.
                let _ = write!(
                    out,
                    "\",\"cat\":\"hls\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{PID},\"tid\":{TID}}}",
                    *start_ns as f64 / 1000.0,
                    *dur_ns as f64 / 1000.0
                );
                let _ = write!(
                    out,
                    ",{{\"name\":\"scheduler work\",\"cat\":\"hls\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":{PID},\
                     \"args\":{{\"frames_computed\":{frames},\"energy_evals\":{evals},\
                     \"moves_committed\":{moves},\"local_reschedules\":{reschedules}}}}}",
                    (*start_ns + *dur_ns) as f64 / 1000.0
                );
            }
            TraceEvent::HttpRequest { .. } => {}
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_spans_counters_and_metadata() {
        let events = [
            TraceEvent::EnergyEvaluated {
                op: 1,
                pos: (1, 1),
                v: 3,
            },
            TraceEvent::PhaseSpan {
                phase: "mfs.frames".into(),
                start_ns: 1000,
                dur_ns: 2500,
            },
            TraceEvent::MoveCommitted {
                op: 1,
                from: None,
                to: (1, 1),
                v: 3,
                system_v: None,
            },
            TraceEvent::PhaseSpan {
                phase: "mfs.move_loop".into(),
                start_ns: 4000,
                dur_ns: 500,
            },
        ];
        let json = chrome_trace(events.iter());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"mfs.frames\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.500"));
        // Name/sort metadata for Perfetto.
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"sort_index\":0"));
        // One counter sample per closed span, with running totals: the
        // first span has seen one evaluation, the second also one move.
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 2);
        assert!(json.contains("\"energy_evals\":1,\"moves_committed\":0"));
        assert!(json.contains("\"energy_evals\":1,\"moves_committed\":1"));
        // Counter samples land at each span's end time.
        assert!(json.contains("\"ph\":\"C\",\"ts\":3.500"));
        assert!(json.contains("\"ph\":\"C\",\"ts\":4.500"));
    }

    #[test]
    fn empty_trace_is_valid_json_with_metadata_only() {
        let json = chrome_trace(std::iter::empty());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(!json.contains("\"ph\":\"X\""));
        assert!(!json.contains("\"ph\":\"C\""));
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 3);
    }
}
